//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning crates.

use proptest::prelude::*;
use raja::policy::{ParExec, SeqExec, SimGpuExec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exclusive scan under every policy equals the sequential fold.
    #[test]
    fn scan_matches_reference(data in prop::collection::vec(-1e6f64..1e6, 0..2000)) {
        let n = data.len();
        let mut reference = vec![0.0; n];
        let mut acc = 0.0;
        for (r, &v) in reference.iter_mut().zip(&data) {
            *r = acc;
            acc += v;
        }
        let mut out = vec![0.0; n];
        raja::scan::exclusive_scan::<ParExec>(0..n, &mut out, |i| data[i]);
        for (a, b) in out.iter().zip(&reference) {
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()));
        }
        let mut out = vec![0.0; n];
        raja::scan::exclusive_scan::<SimGpuExec<64>>(0..n, &mut out, |i| data[i]);
        for (a, b) in out.iter().zip(&reference) {
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()));
        }
    }

    /// Sorting produces an ordered permutation under every policy.
    #[test]
    fn sort_is_an_ordered_permutation(data in prop::collection::vec(-1e9f64..1e9, 0..1500)) {
        let mut expected = data.clone();
        expected.sort_unstable_by(f64::total_cmp);
        for policy in 0..3 {
            let mut v = data.clone();
            match policy {
                0 => raja::sort::sort::<SeqExec>(&mut v),
                1 => raja::sort::sort::<ParExec>(&mut v),
                _ => raja::sort::sort::<SimGpuExec<128>>(&mut v),
            }
            prop_assert_eq!(&v, &expected, "policy {}", policy);
        }
    }

    /// sort_pairs keeps every (key, value) pair intact.
    #[test]
    fn sort_pairs_preserves_pairing(data in prop::collection::vec(-1e6f64..1e6, 1..800)) {
        let n = data.len();
        let mut keys = data.clone();
        let mut vals: Vec<i32> = (0..n as i32).collect();
        raja::sort::sort_pairs::<SimGpuExec<64>>(&mut keys, &mut vals);
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        for (k, v) in keys.iter().zip(&vals) {
            prop_assert_eq!(data[*v as usize], *k);
        }
    }

    /// Reductions are order-insensitive up to FP tolerance.
    #[test]
    fn reduce_sum_policy_equivalence(data in prop::collection::vec(-1e3f64..1e3, 0..3000)) {
        let n = data.len();
        let seq = raja::reduce::reduce_sum::<SeqExec, f64>(0..n, |i| data[i]);
        let par = raja::reduce::reduce_sum::<ParExec, f64>(0..n, |i| data[i]);
        let gpu = raja::reduce::reduce_sum::<SimGpuExec<32>, f64>(0..n, |i| data[i]);
        prop_assert!((seq - par).abs() <= 1e-7 * (1.0 + seq.abs()));
        prop_assert!((seq - gpu).abs() <= 1e-7 * (1.0 + seq.abs()));
    }

    /// Permuted layouts are bijections onto the buffer.
    #[test]
    fn layouts_are_bijections(
        e0 in 1usize..12, e1 in 1usize..12, e2 in 1usize..12, perm_idx in 0usize..6,
    ) {
        let perms = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let layout = raja::views::Layout::permuted([e0, e1, e2], perms[perm_idx]);
        let mut seen = vec![false; e0 * e1 * e2];
        for i in 0..e0 {
            for j in 0..e1 {
                for k in 0..e2 {
                    let lin = layout.index([i as isize, j as isize, k as isize]);
                    prop_assert!(!seen[lin]);
                    seen[lin] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// TMA breakdowns live on the 4-simplex for arbitrary signatures.
    #[test]
    fn tma_fractions_form_a_simplex(
        flops in 0.0f64..1e9,
        bytes_read in 0.0f64..1e9,
        bytes_written in 0.0f64..1e9,
        reuse in 0.0f64..0.99,
        icache in 0.0f64..0.9,
        atomics in 0.0f64..1e6,
        eff in 0.01f64..1.2,
    ) {
        let mut sig = perfmodel::ExecSignature::streaming("prop", 1_000_000);
        sig.flops = flops;
        sig.bytes_read = bytes_read;
        sig.bytes_written = bytes_written;
        sig.cache_reuse = reuse;
        sig.icache_pressure = icache;
        sig.atomics = atomics;
        sig.flop_efficiency = eff;
        for id in [perfmodel::MachineId::SprDdr, perfmodel::MachineId::SprHbm] {
            let m = perfmodel::Machine::get(id);
            let t = perfmodel::tma_breakdown(&m, &sig);
            prop_assert!((t.sum() - 1.0).abs() < 1e-9, "{:?}", t);
            for v in t.tuple() {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{:?}", t);
            }
        }
    }

    /// Predicted time decomposes into nonnegative parts and never beats
    /// its own bottleneck terms.
    #[test]
    fn predicted_time_is_consistent(
        flops in 1.0f64..1e12,
        bytes in 1.0f64..1e12,
        launches in 0.0f64..200.0,
    ) {
        let mut sig = perfmodel::ExecSignature::streaming("prop", 32_000_000);
        sig.flops = flops;
        sig.bytes_read = bytes;
        sig.kernel_launches = launches;
        for id in perfmodel::MachineId::all() {
            let m = perfmodel::Machine::get(id);
            let t = perfmodel::predict_time(&m, &sig);
            prop_assert!(t.total_s > 0.0);
            prop_assert!(t.total_s + 1e-15 >= t.mem_s.max(t.flop_s).max(t.issue_s));
            prop_assert!(t.launch_s >= 0.0 && t.mpi_s >= 0.0);
        }
    }

    /// More bandwidth never hurts a kernel (HBM ≥ some fraction of DDR).
    #[test]
    fn bandwidth_upgrades_never_catastrophically_regress(
        flops in 0.0f64..1e10,
        bytes in 1.0f64..1e10,
        reuse in 0.0f64..0.9,
    ) {
        let mut sig = perfmodel::ExecSignature::streaming("prop", 32_000_000);
        sig.flops = flops;
        sig.bytes_read = bytes;
        sig.cache_reuse = reuse;
        let ddr = perfmodel::Machine::get(perfmodel::MachineId::SprDdr);
        let hbm = perfmodel::Machine::get(perfmodel::MachineId::SprHbm);
        let s = perfmodel::speedup(&ddr, &hbm, &sig);
        // HBM has slightly lower sustained FLOPS (0.7 vs 0.8 TF), so pure
        // compute kernels may dip to ~0.87 — never further.
        prop_assert!(s > 0.8, "HBM speedup {s}");
    }

    /// Ward clustering: merge heights are monotone and fcluster respects
    /// the threshold semantics for random point sets.
    #[test]
    fn ward_heights_monotone(points in prop::collection::vec(
        prop::collection::vec(0.0f64..10.0, 3..4), 2..25,
    )) {
        let l = hierclust::linkage(&points, hierclust::Linkage::Ward);
        for w in l.merges.windows(2) {
            prop_assert!(w[1].distance >= w[0].distance - 1e-9);
        }
        prop_assert_eq!(l.fcluster(-1.0).len(), points.len());
        prop_assert_eq!(l.num_clusters(f64::INFINITY), 1);
    }

    /// Checksums are permutation-sensitive but deterministic.
    #[test]
    fn checksum_is_deterministic(data in prop::collection::vec(-1e3f64..1e3, 1..500)) {
        let a = kernels::common::checksum(&data);
        let b = kernels::common::checksum(&data);
        prop_assert_eq!(a, b);
    }
}

/// Thicket groupby partitions profiles exactly (non-proptest: structured
/// fixture).
#[test]
fn thicket_groupby_partitions() {
    let mk = |variant: &str| {
        let mut globals = std::collections::BTreeMap::new();
        globals.insert("variant".to_string(), serde_json::json!(variant));
        thicket::ProfileData {
            globals,
            records: vec![(vec!["k".into()], std::collections::BTreeMap::new())],
        }
    };
    let tk = thicket::Thicket::from_profiles(&[mk("a"), mk("b"), mk("a"), mk("c")]);
    let groups = tk.groupby("variant");
    let total: usize = groups.iter().map(|(_, g)| g.profiles.len()).sum();
    assert_eq!(total, 4, "groupby partitions every profile");
    assert_eq!(groups.len(), 3);
}
