//! End-to-end integration: the full paper pipeline across crates —
//! run kernels → Caliper profiles → Thicket composition → clustering →
//! the headline conclusions.

use rajaperf::prelude::*;
use suite::simulate::{self, ClusterAnalysis};

#[test]
fn suite_run_to_thicket_pipeline() {
    let dir = std::env::temp_dir().join("rajaperf_e2e_pipeline");
    let _ = std::fs::remove_dir_all(&dir);

    // Run a slice of the suite under three variants, one profile each.
    let base = RunParams {
        selection: Selection::Kernels(vec![
            "Stream_TRIAD".into(),
            "Basic_DAXPY".into(),
            "Lcals_HYDRO_1D".into(),
            "Apps_PRESSURE".into(),
        ]),
        explicit_size: Some(5_000),
        explicit_reps: Some(2),
        caliper_spec: Some(format!("spot(output={}/run.cali.json)", dir.display())),
        ..RunParams::default()
    };
    let variants = [VariantId::BaseSeq, VariantId::RajaSeq, VariantId::RajaPar];
    let reports = suite::run_variants(&base, &variants);
    assert_eq!(reports.len(), 3);
    assert!(suite::checksum_report(&reports).all_pass());

    // Every run produced a profile file; Thicket composes them.
    let paths: Vec<_> = reports.iter().flat_map(|r| r.outputs.clone()).collect();
    assert_eq!(paths.len(), 3);
    let profiles: Vec<thicket::ProfileData> = paths
        .iter()
        .map(|p| thicket::ProfileData::read_file(p).unwrap())
        .collect();
    let tk = thicket::Thicket::from_profiles(&profiles);
    assert_eq!(tk.profiles.len(), 3);

    // Group by variant metadata — one group per variant, as in the paper's
    // composition workflow.
    let groups = tk.groupby("variant");
    assert_eq!(groups.len(), 3);
    for (name, sub) in &groups {
        assert_eq!(sub.profiles.len(), 1, "variant {name}");
        let nid = sub.node_by_name("Stream_TRIAD").expect("TRIAD node");
        let vals = sub.node_values("Time/Rep", nid);
        assert_eq!(vals.len(), 1);
        assert!(vals[0].1 > 0.0);
    }

    // Statsframe aggregation across the three runs.
    let mut tk = tk;
    let col = tk.stats("Time/Rep", thicket::Stat::Mean);
    let nid = tk.node_by_name("Stream_TRIAD").unwrap();
    assert!(tk.stat_value(&col, nid).unwrap() > 0.0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clustering_reproduces_the_papers_structure() {
    let ca = ClusterAnalysis::run(4);
    assert_eq!(ca.num_clusters(), 4, "the paper identifies four clusters");

    // One cluster is strongly memory bound (paper: 0.8812), one moderately
    // (0.5279), one retiring/frontend (0.7169 retiring), one core bound
    // (0.5358 core).
    let means = ca.cluster_tma_means();
    let max_mem = means.iter().map(|m| m[4]).fold(f64::MIN, f64::max);
    assert!(max_mem > 0.8, "most memory-bound cluster mean {max_mem}");
    let max_core = means.iter().map(|m| m[3]).fold(f64::MIN, f64::max);
    assert!(max_core > 0.35, "core-bound cluster mean {max_core}");
    let max_ret = means.iter().map(|m| m[2]).fold(f64::MIN, f64::max);
    assert!(max_ret > 0.7, "retiring cluster mean {max_ret}");

    // Speedup ordering between the memory clusters follows memory
    // boundness on every bandwidth-upgraded machine.
    let mem_order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..4).collect();
        idx.sort_by(|&a, &b| means[b][4].total_cmp(&means[a][4]));
        idx
    };
    for machine in [MachineId::SprHbm, MachineId::EpycMi250x] {
        let sp = ca.cluster_speedup_means(machine);
        assert!(
            sp[mem_order[0]] > sp[mem_order[3]],
            "{machine:?}: most memory bound ({}) must beat least memory bound ({})",
            sp[mem_order[0]],
            sp[mem_order[3]]
        );
    }
}

#[test]
fn simulated_profiles_feed_thicket_per_machine() {
    let dir = std::env::temp_dir().join("rajaperf_e2e_sim");
    let _ = std::fs::remove_dir_all(&dir);
    let paths = simulate::write_simulated_profiles(&dir).unwrap();
    assert_eq!(paths.len(), 4, "one profile per machine");
    let profiles: Vec<thicket::ProfileData> = paths
        .iter()
        .map(|p| thicket::ProfileData::read_file(p).unwrap())
        .collect();
    let tk = thicket::Thicket::from_profiles(&profiles);
    let by_machine = tk.groupby("machine");
    assert_eq!(by_machine.len(), 4);
    // The CPU machines carry TMA columns, the GPU machines roofline ones.
    for (name, sub) in by_machine {
        let nid = sub.node_by_name("Stream_TRIAD").unwrap();
        let pid = sub.profiles[0];
        match name.as_str() {
            "SPR-DDR" | "SPR-HBM" => {
                assert!(sub.value("tma.memory_bound", nid, pid).unwrap() > 0.5);
                assert!(sub.value("roofline.L1.gips", nid, pid).is_none());
            }
            _ => {
                assert!(sub.value("roofline.HBM.gips", nid, pid).unwrap() > 0.0);
                assert!(sub.value("tma.memory_bound", nid, pid).is_none());
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn headline_result_memory_bound_kernels_gain_most_from_hbm() {
    // The paper's abstract: "the most memory bound kernels show the most
    // performance gains on architectures with high-bandwidth memory".
    // Verify at kernel granularity: rank-correlate memory-boundness with
    // HBM speedup across the comparison kernels.
    let sims = simulate::simulate_comparison();
    let mut pairs: Vec<(f64, f64)> = sims
        .iter()
        .map(|s| (s.memory_bound_ddr(), s.speedup[&MachineId::SprHbm]))
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let third = pairs.len() / 3;
    let low_mean: f64 = pairs[..third].iter().map(|p| p.1).sum::<f64>() / third as f64;
    let high_mean: f64 =
        pairs[pairs.len() - third..].iter().map(|p| p.1).sum::<f64>() / third as f64;
    assert!(
        high_mean > 1.4 * low_mean,
        "top-third memory-bound kernels gain {high_mean:.2}x vs bottom third {low_mean:.2}x"
    );
}

#[test]
fn raja_variants_match_base_variants_across_the_whole_suite() {
    // Cross-crate correctness sweep: every kernel, RAJA_Seq vs Base_Seq at
    // a reduced size.
    let tuning = Tuning::default();
    for kernel in kernels::registry() {
        let info = kernel.info();
        let n = (info.default_size / 50).max(1500);
        let base = kernel.execute(VariantId::BaseSeq, n, 1, &tuning);
        let raja = kernel.execute(VariantId::RajaSeq, n, 1, &tuning);
        assert!(
            kernels::common::close(base.checksum, raja.checksum, 1e-8),
            "{}: base {} vs raja {}",
            info.name,
            base.checksum,
            raja.checksum
        );
    }
}
