//! Tier-1 tests for `rajaperfd` under concurrent load: request isolation,
//! content-addressed cache-hit correctness (byte-identical replies, no
//! kernel re-execution), bounded-queue admission control, and graceful
//! shutdown draining.

use rajaperfd::{protocol::Request, Daemon, DaemonConfig};
use serde_json::Value;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

/// A fresh daemon on its own socket + store under a unique temp dir.
fn start_daemon(tag: &str, queue_capacity: usize, workers: usize) -> (Daemon, PathBuf) {
    let root = std::env::temp_dir().join(format!("rajaperfd_it_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let config = DaemonConfig {
        socket: root.join("d.sock"),
        store_dir: root.join("store"),
        queue_capacity,
        workers,
    };
    let daemon = Daemon::start(config).expect("daemon starts");
    (daemon, root)
}

fn run_request(id: &str, argv: &[&str]) -> Request {
    Request::Run {
        id: id.to_string(),
        argv: argv.iter().map(|s| s.to_string()).collect(),
    }
}

fn shutdown_and_wait(daemon: Daemon, root: &PathBuf) {
    let socket = daemon.socket().to_path_buf();
    let resp = rajaperfd::submit(&socket, &Request::Shutdown { id: "end".into() })
        .expect("shutdown request reaches daemon");
    assert_eq!(resp.exit_code, 0, "shutdown acknowledges cleanly");
    daemon.wait().expect("daemon drains and exits");
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn concurrent_requests_are_isolated() {
    let (daemon, root) = start_daemon("isolation", 8, 3);
    let socket = daemon.socket().to_path_buf();

    // Four clients at once: two healthy runs, one that panics, one that
    // hangs until the watchdog cuts it loose. The failures must come back
    // as *typed* errors on their own connections while the healthy runs
    // complete normally.
    let mut handles = Vec::new();
    for (id, argv) in [
        ("ok-daxpy", vec!["--kernels", "Basic_DAXPY", "--size", "1000", "--reps", "2"]),
        ("ok-triad", vec!["--kernels", "Stream_TRIAD", "--size", "1000", "--reps", "2"]),
        ("bad-panic", vec!["--kernels", "Fixture_PANIC", "--size", "64", "--reps", "1"]),
        (
            "bad-hang",
            vec!["--kernels", "Fixture_HANG", "--size", "64", "--reps", "1", "--timeout", "0.75"],
        ),
    ] {
        let socket = socket.clone();
        let req = run_request(id, &argv);
        handles.push(std::thread::spawn(move || {
            (id, rajaperfd::submit(&socket, &req).expect("request completes"))
        }));
    }
    for handle in handles {
        let (id, resp) = handle.join().expect("client thread");
        match id {
            "ok-daxpy" | "ok-triad" => {
                assert_eq!(resp.exit_code, 0, "{id}: {:?}", resp.error());
                assert!(resp.error().is_none(), "{id} must not error");
                assert_eq!(resp.progress_count(), 1, "{id} runs its one kernel");
                let report = resp.report().expect("healthy run has a report");
                assert_eq!(report["all_passed"].as_bool(), Some(true), "{id}");
            }
            "bad-panic" | "bad-hang" => {
                assert_eq!(resp.exit_code, 5, "{id} exits kernel_failures");
                let (code, message) = resp.error().expect("failure is a typed error");
                assert_eq!(code, "kernel_failures", "{id}");
                assert!(
                    message.contains("Fixture_"),
                    "{id} error names the kernel: {message}"
                );
                let report = resp.report().expect("failed run still reports");
                assert_eq!(report["all_passed"].as_bool(), Some(false), "{id}");
            }
            other => unreachable!("{other}"),
        }
    }
    shutdown_and_wait(daemon, &root);
}

#[test]
fn identical_request_is_served_from_the_store() {
    let (daemon, root) = start_daemon("cache", 8, 2);
    let socket = daemon.socket().to_path_buf();
    let argv = ["--kernels", "Basic_DAXPY,Stream_TRIAD", "--size", "1000", "--reps", "2"];

    let first = rajaperfd::submit(&socket, &run_request("c1", &argv)).unwrap();
    assert_eq!(first.exit_code, 0);
    assert!(!first.cached(), "first request executes");
    assert_eq!(first.progress_count(), 2, "both kernels execute");
    let store_key = first
        .find("result")
        .and_then(|e| e.get("store_key"))
        .and_then(Value::as_str)
        .expect("clean result is stored")
        .to_string();
    let object = root
        .join("store")
        .join("objects")
        .join(&store_key[..2])
        .join(format!("{store_key}.json"));
    assert!(object.exists(), "stored object persists at {}", object.display());

    // Same campaign, different request id: a pure store hit. No kernel
    // re-executes (zero progress events) and the report is byte-identical
    // to the one measured the first time.
    let second = rajaperfd::submit(&socket, &run_request("c2", &argv)).unwrap();
    assert_eq!(second.exit_code, 0);
    assert!(second.cached(), "second request is served from the store");
    assert_eq!(second.progress_count(), 0, "no kernel re-executes on a hit");
    assert_eq!(
        second.report().map(Value::to_string),
        first.report().map(Value::to_string),
        "cached report is byte-identical"
    );

    // The daemon's own counters agree.
    let stats = rajaperfd::submit(&socket, &Request::Stats { id: "s".into() }).unwrap();
    let store = &stats.find("stats").expect("stats event")["store"];
    assert_eq!(store["hits"].as_i64(), Some(1));
    assert_eq!(store["stores"].as_i64(), Some(1));

    shutdown_and_wait(daemon, &root);
}

#[test]
fn full_queue_rejects_with_a_typed_error() {
    // One worker, queue of one: occupy the worker with a watchdog-bounded
    // hang, queue one request behind it, and the next must be rejected
    // immediately with `queue_full` — admission control, not a stall.
    let (daemon, root) = start_daemon("queuefull", 1, 1);
    let socket = daemon.socket().to_path_buf();

    let (started_tx, started_rx) = mpsc::channel();
    let hog = {
        let socket = socket.clone();
        let req = run_request(
            "hog",
            &["--kernels", "Fixture_HANG", "--size", "64", "--reps", "1", "--timeout", "1.5"],
        );
        std::thread::spawn(move || {
            rajaperfd::submit_with(&socket, &req, &mut |e: &Value| {
                if e.get("event").and_then(Value::as_str) == Some("started") {
                    let _ = started_tx.send(());
                }
            })
            .expect("hog completes")
        })
    };
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("worker picked up the hog request");

    let (queued_tx, queued_rx) = mpsc::channel();
    let queued = {
        let socket = socket.clone();
        let req = run_request("queued", &["--kernels", "Basic_DAXPY", "--size", "500"]);
        std::thread::spawn(move || {
            rajaperfd::submit_with(&socket, &req, &mut |e: &Value| {
                if e.get("event").and_then(Value::as_str) == Some("accepted") {
                    let _ = queued_tx.send(());
                }
            })
            .expect("queued request completes")
        })
    };
    queued_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("second request admitted to the queue");

    let rejected = rajaperfd::submit(
        &socket,
        &run_request("rejected", &["--kernels", "Stream_TRIAD", "--size", "500"]),
    )
    .unwrap();
    assert_eq!(rejected.exit_code, 6, "queue-full maps to unavailable");
    let (code, _) = rejected.error().expect("rejection is typed");
    assert_eq!(code, "queue_full");

    // The hog times out (typed kernel failure), the queued request then
    // runs to a clean finish: one request's hang is never its neighbor's
    // problem.
    let hog_resp = hog.join().unwrap();
    assert_eq!(hog_resp.exit_code, 5);
    assert_eq!(hog_resp.error().map(|(c, _)| c.to_string()), Some("kernel_failures".into()));
    let queued_resp = queued.join().unwrap();
    assert_eq!(queued_resp.exit_code, 0, "{:?}", queued_resp.error());

    shutdown_and_wait(daemon, &root);
}

#[test]
fn shutdown_drains_in_flight_and_queued_work() {
    let (daemon, root) = start_daemon("drain", 4, 1);
    let socket = daemon.socket().to_path_buf();

    let (started_tx, started_rx) = mpsc::channel();
    let inflight = {
        let socket = socket.clone();
        let req = run_request(
            "inflight",
            &["--kernels", "Fixture_HANG", "--size", "64", "--reps", "1", "--timeout", "1.0"],
        );
        std::thread::spawn(move || {
            rajaperfd::submit_with(&socket, &req, &mut |e: &Value| {
                if e.get("event").and_then(Value::as_str) == Some("started") {
                    let _ = started_tx.send(());
                }
            })
            .expect("in-flight request completes through shutdown")
        })
    };
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("request is in flight");

    // Queue one more behind it, then ask for shutdown while both are
    // outstanding: drain means both clients still get full responses.
    let queued = {
        let socket = socket.clone();
        let req = run_request("queued", &["--kernels", "Basic_DAXPY", "--size", "500"]);
        std::thread::spawn(move || rajaperfd::submit(&socket, &req).expect("queued completes"))
    };
    // Give the accept thread a moment to admit the queued request before
    // the shutdown line arrives on its own connection.
    std::thread::sleep(Duration::from_millis(200));

    let resp = rajaperfd::submit(&socket, &Request::Shutdown { id: "bye".into() }).unwrap();
    assert_eq!(resp.exit_code, 0);

    let inflight_resp = inflight.join().unwrap();
    assert_eq!(inflight_resp.exit_code, 5, "watchdog failure still reported");
    let queued_resp = queued.join().unwrap();
    assert_eq!(queued_resp.exit_code, 0, "{:?}", queued_resp.error());

    daemon.wait().expect("daemon exits after draining");
    let socket_gone = !socket.exists();
    assert!(socket_gone, "socket file is removed on exit");
    assert!(
        rajaperfd::submit(&socket, &Request::Ping { id: "p".into() }).is_err(),
        "daemon no longer serves after shutdown"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn analyze_streams_store_profiles_and_caches_the_result() {
    let (daemon, root) = start_daemon("analyze", 8, 2);
    let socket = daemon.socket().to_path_buf();

    // Two runs seed the store with two profile-bearing objects.
    for (id, kernel) in [("a-run1", "Basic_DAXPY"), ("a-run2", "Stream_TRIAD")] {
        let resp = rajaperfd::submit(
            &socket,
            &run_request(id, &["--kernels", kernel, "--size", "1000", "--reps", "2"]),
        )
        .unwrap();
        assert_eq!(resp.exit_code, 0, "{id}");
    }

    let analyze = |id: &str| {
        rajaperfd::submit(
            &socket,
            &Request::Analyze {
                id: id.to_string(),
                dir: "store".to_string(),
                metric: "avg#time.duration".to_string(),
            },
        )
        .unwrap()
    };
    let first = analyze("a-first");
    assert_eq!(first.exit_code, 0, "{:?}", first.error());
    assert!(!first.cached(), "first analysis computes");
    let report = first.report().expect("analysis reports");
    assert_eq!(report["profiles"].as_i64(), Some(2), "both stored profiles composed");
    assert!(report["table"].as_array().is_some_and(|t| !t.is_empty()));

    // Same corpus, same metric: replayed from the store, byte-identical.
    let second = analyze("a-second");
    assert_eq!(second.exit_code, 0);
    assert!(second.cached(), "repeat analysis is served from the store");
    assert_eq!(
        second.report().map(Value::to_string),
        first.report().map(Value::to_string),
        "cached analysis is byte-identical"
    );

    // Growing the corpus changes the key: a third run makes it a miss.
    let resp = rajaperfd::submit(
        &socket,
        &run_request("a-run3", &["--kernels", "Basic_MULADDSUB", "--size", "1000", "--reps", "2"]),
    )
    .unwrap();
    assert_eq!(resp.exit_code, 0);
    let third = analyze("a-third");
    assert!(!third.cached(), "a grown corpus recomputes");
    // Cached analyses live in the store's derived space, outside objects/,
    // so the corpus grew by exactly the one new run profile.
    let r3 = third.report().expect("recomputed report");
    assert_eq!(r3["profiles"].as_i64(), Some(3));
    assert_eq!(r3["skipped"].as_i64(), Some(0));

    shutdown_and_wait(daemon, &root);
}

#[test]
fn daemon_results_match_direct_execution() {
    // The daemon is a transport, not a different runner: the entries it
    // reports for a campaign must match run_suite's own output for the
    // same parameters (same kernels, sizes, reps, checksums).
    let (daemon, root) = start_daemon("parity", 4, 1);
    let socket = daemon.socket().to_path_buf();
    let argv: Vec<String> = ["--kernels", "Basic_DAXPY", "--size", "1000", "--reps", "3"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    let resp = rajaperfd::submit(
        &socket,
        &Request::Run { id: "parity".into(), argv: argv.clone() },
    )
    .unwrap();
    assert_eq!(resp.exit_code, 0);
    let entries = resp.report().unwrap()["entries"].clone();

    let params = suite::RunParams::parse(&argv).unwrap();
    let direct = suite::run_suite(&params);
    assert_eq!(entries.as_array().map(Vec::len), Some(direct.entries.len()));
    let served = &entries.as_array().unwrap()[0];
    let local = &direct.entries[0];
    assert_eq!(served["kernel"].as_str(), Some(local.kernel.as_str()));
    assert_eq!(served["size"].as_i64(), Some(local.problem_size as i64));
    assert_eq!(served["reps"].as_i64(), Some(local.reps as i64));
    assert_eq!(served["checksum"].as_f64(), Some(local.result.checksum));

    shutdown_and_wait(daemon, &root);
}
