//! Hand-computed spot checks of the analytic metrics (Fig. 1's inputs):
//! for representative kernels of every group, the per-rep byte and FLOP
//! counts are re-derived here independently from the loop definitions and
//! compared against `KernelBase::metrics`.

use kernels::AnalyticMetrics;

fn expect(name: &str, n: usize, want: AnalyticMetrics) {
    let k = kernels::find(name).unwrap_or_else(|| panic!("kernel {name}"));
    let got = k.metrics(n);
    assert_eq!(got.bytes_read, want.bytes_read, "{name} bytes_read");
    assert_eq!(got.bytes_written, want.bytes_written, "{name} bytes_written");
    assert_eq!(got.flops, want.flops, "{name} flops");
}

#[test]
fn stream_metrics() {
    let n = 1000usize;
    // TRIAD: a[i] = b[i] + alpha*c[i] — 2 reads, 1 write, 2 flops.
    expect(
        "Stream_TRIAD",
        n,
        AnalyticMetrics {
            bytes_read: 16_000.0,
            bytes_written: 8_000.0,
            flops: 2_000.0,
        },
    );
    // DOT: 2 reads, scalar out, 2 flops (mul + add).
    expect(
        "Stream_DOT",
        n,
        AnalyticMetrics {
            bytes_read: 16_000.0,
            bytes_written: 0.0,
            flops: 2_000.0,
        },
    );
}

#[test]
fn basic_metrics() {
    let n = 1000usize;
    // DAXPY: y += a*x — reads x and y, writes y, fma = 2 flops.
    expect(
        "Basic_DAXPY",
        n,
        AnalyticMetrics {
            bytes_read: 16_000.0,
            bytes_written: 8_000.0,
            flops: 2_000.0,
        },
    );
    // MULADDSUB: 2 reads, 3 writes, 3 flops.
    expect(
        "Basic_MULADDSUB",
        n,
        AnalyticMetrics {
            bytes_read: 16_000.0,
            bytes_written: 24_000.0,
            flops: 3_000.0,
        },
    );
    // PI_REDUCE: no array traffic, 6 flops per sample, scalar out.
    expect(
        "Basic_PI_REDUCE",
        n,
        AnalyticMetrics {
            bytes_read: 0.0,
            bytes_written: 8.0,
            flops: 6_000.0,
        },
    );
}

#[test]
fn algorithm_metrics() {
    let n = 1000usize;
    // MEMCPY: one read, one write, no flops.
    expect(
        "Algorithm_MEMCPY",
        n,
        AnalyticMetrics {
            bytes_read: 8_000.0,
            bytes_written: 8_000.0,
            flops: 0.0,
        },
    );
    // SCAN: read input, write prefix array, one add per element.
    expect(
        "Algorithm_SCAN",
        n,
        AnalyticMetrics {
            bytes_read: 8_000.0,
            bytes_written: 8_000.0,
            flops: 1_000.0,
        },
    );
}

#[test]
fn lcals_metrics() {
    let n = 1000usize;
    // HYDRO_1D: x[i] = q + y[i]*(r*z[i+10] + t*z[i+11]) — 3 stream reads
    // (y + two shifted z windows), 1 write, 5 flops.
    expect(
        "Lcals_HYDRO_1D",
        n,
        AnalyticMetrics {
            bytes_read: 24_000.0,
            bytes_written: 8_000.0,
            flops: 5_000.0,
        },
    );
    // FIRST_DIFF: y[i+1]-y[i]: 2 reads, 1 write, 1 flop.
    expect(
        "Lcals_FIRST_DIFF",
        n,
        AnalyticMetrics {
            bytes_read: 16_000.0,
            bytes_written: 8_000.0,
            flops: 1_000.0,
        },
    );
}

#[test]
fn polybench_metrics() {
    // GEMM with 3 N×N matrices in n slots: N = sqrt(n/3).
    let ne = 64usize;
    let n = 3 * ne * ne;
    expect(
        "Polybench_GEMM",
        n,
        AnalyticMetrics {
            bytes_read: 8.0 * 3.0 * (ne * ne) as f64,
            bytes_written: 8.0 * (ne * ne) as f64,
            flops: 2.0 * (ne * ne * ne) as f64 + 3.0 * (ne * ne) as f64,
        },
    );
    // ATAX: N = sqrt(n); A streamed twice, two vectors out, 4N² flops.
    let ne = 100usize;
    expect(
        "Polybench_ATAX",
        ne * ne,
        AnalyticMetrics {
            bytes_read: 8.0 * 2.0 * (ne * ne) as f64,
            bytes_written: 8.0 * 2.0 * ne as f64,
            flops: 4.0 * (ne * ne) as f64,
        },
    );
}

#[test]
fn apps_metrics() {
    let n = 1000usize;
    // FIR: unique traffic — input read once (+ window tail), output once;
    // 2 flops per tap.
    expect(
        "Apps_FIR",
        n,
        AnalyticMetrics {
            bytes_read: 8.0 * (n + kernels::apps::FIR_COEFFLEN) as f64,
            bytes_written: 8_000.0,
            flops: 2.0 * kernels::apps::FIR_COEFFLEN as f64 * n as f64,
        },
    );
}

#[test]
fn comm_metrics_scale_with_surface() {
    // HALO_PACKING traffic = 2×(pack read+write) over the 26-direction
    // surface; it must scale ~n^{2/3}, not n.
    let k = kernels::find("Comm_HALO_PACKING").unwrap();
    let m1 = k.metrics(3 * 8 * 8 * 8);
    let m2 = k.metrics(3 * 16 * 16 * 16);
    let ratio = (m2.bytes_read + m2.bytes_written) / (m1.bytes_read + m1.bytes_written);
    assert!(
        ratio > 3.0 && ratio < 5.0,
        "surface scaling expected (~4x for 8x volume), got {ratio}"
    );
}

#[test]
fn flops_per_byte_orders_the_kernel_spectrum() {
    // The derived metric of §II-B sorts the kernels the way Fig. 1 shows:
    // matmul ≫ FE apps ≫ streaming.
    let fpb = |name: &str| {
        let k = kernels::find(name).unwrap();
        k.metrics(k.info().default_size).flops_per_byte()
    };
    let gemm = fpb("Polybench_GEMM");
    let diffusion = fpb("Apps_DIFFUSION3DPA");
    let triad = fpb("Stream_TRIAD");
    let copy = fpb("Stream_COPY");
    assert!(gemm > diffusion, "gemm {gemm} vs diffusion {diffusion}");
    assert!(diffusion > triad, "diffusion {diffusion} vs triad {triad}");
    assert!(triad > copy, "triad {triad} vs copy {copy}");
    assert_eq!(copy, 0.0);
}
