//! Fast-path equivalence: the `gpusim` 1-D fast path must be functionally
//! indistinguishable from the generic block-structured path, for every
//! kernel in the registry, under both SimGpu variants.
//!
//! One `#[test]` on purpose: the comparison is only bitwise-meaningful at
//! pool width 1 (both paths then run a strictly in-order `0..n` sweep,
//! whereas at larger widths floating-point reduction order may differ), so
//! the test pins `RAYON_NUM_THREADS=1` before the pool is first touched.
//! Being a separate integration-test binary guarantees no other test has
//! initialized the pool already.

use kernels::{Tuning, VariantId};

#[test]
fn full_registry_checksums_match_and_sanitizer_still_fires() {
    // Must precede the first launch: the vendored rayon pool reads it once.
    std::env::set_var("RAYON_NUM_THREADS", "1");

    let tuning = Tuning::default();
    let mut compared = 0usize;
    for k in kernels::registry() {
        let info = k.info();
        let n = info.default_size.clamp(1, 4096);
        for &v in info.variants {
            if !matches!(v, VariantId::BaseSimGpu | VariantId::RajaSimGpu) {
                continue;
            }
            gpusim::force_generic_launch(false);
            let fast = k.execute(v, n, 1, &tuning).checksum;
            gpusim::force_generic_launch(true);
            let generic = k.execute(v, n, 1, &tuning).checksum;
            gpusim::force_generic_launch(false);
            assert_eq!(
                fast.to_bits(),
                generic.to_bits(),
                "{}/{}: fast-path checksum {fast} != generic-path checksum {generic}",
                info.name,
                v.name(),
            );
            compared += 1;
        }
    }
    assert!(
        compared >= 76,
        "expected at least one SimGpu comparison per registry kernel, got {compared}"
    );

    // The optimization must not have blinded the sanitizer: both racy
    // positive-control fixtures still fire (sanitized launches always take
    // the instrumented path regardless of the fast-path conditions).
    let racy = kernels::sanitize::sanitize_kernel(
        &kernels::sanitize::fixtures::RacySum,
        VariantId::RajaSimGpu,
        512,
        &tuning,
    )
    .expect("fixture supports RAJA_SimGpu");
    assert!(!racy.is_clean(), "Fixture_RACY_SUM must still be flagged");

    let barrier = kernels::sanitize::sanitize_kernel(
        &kernels::sanitize::fixtures::MissingBarrier,
        VariantId::BaseSimGpu,
        512,
        &tuning,
    )
    .expect("fixture supports Base_SimGpu");
    assert!(
        !barrier.is_clean(),
        "Fixture_MISSING_BARRIER must still be flagged"
    );
}
