//! Multi-thread smoke test: under a real 4-thread pool, the parallel and
//! simulated-GPU variants of the reduction/atomic feature kernels must still
//! produce checksums matching `Base_Seq`.
//!
//! This binary pins `RAYON_NUM_THREADS=4` before first pool use (the pool is
//! process-global and sized once), so every kernel here executes with real
//! work-stealing parallelism: `Par` variants run their loops across the
//! pool, and `SimGpu` variants run their blocks across it.

use kernels::{Feature, Tuning, VariantId};

#[test]
fn par_checksums_match_base_seq_for_reduction_and_atomic_kernels() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    assert_eq!(rayon::current_num_threads(), 4);
    let tuning = Tuning::default();
    let mut checked = 0;
    for kernel in kernels::registry() {
        let info = kernel.info();
        let featured = info
            .features
            .iter()
            .any(|f| matches!(f, Feature::Reduction | Feature::Atomic));
        if !featured || !info.variants.contains(&VariantId::BaseSeq) {
            continue;
        }
        let n = info.default_size.min(10_000);
        let reference = kernel.execute(VariantId::BaseSeq, n, 1, &tuning).checksum;
        for v in [
            VariantId::BasePar,
            VariantId::RajaPar,
            VariantId::BaseSimGpu,
            VariantId::RajaSimGpu,
        ] {
            if !info.variants.contains(&v) {
                continue;
            }
            let got = kernel.execute(v, n, 1, &tuning).checksum;
            assert!(
                kernels::common::close(got, reference, 1e-6),
                "{} {}: checksum {} diverged from Base_Seq {}",
                info.name,
                v.name(),
                got,
                reference
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 5,
        "expected several reduction/atomic kernels in the registry, found {checked}"
    );
}
