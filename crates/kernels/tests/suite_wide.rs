//! Suite-wide invariants: properties every one of the 76 kernels must
//! satisfy, checked by sweeping the registry.

use kernels::{KernelBase, PaperModel, Tuning, VariantId};

/// A fast per-kernel size for sweep tests.
fn quick_size(k: &dyn KernelBase) -> usize {
    (k.info().default_size / 100).max(1200)
}

#[test]
fn gpu_block_size_does_not_change_results() {
    // RAJAPerf's tunings change performance, never answers: the simulated
    // device must produce identical checksums for every block size.
    for kernel in kernels::registry() {
        let info = kernel.info();
        if !info.variants.contains(&VariantId::RajaSimGpu) {
            continue;
        }
        let n = quick_size(kernel.as_ref());
        let r64 = kernel.execute(VariantId::RajaSimGpu, n, 1, &Tuning { gpu_block_size: 64 });
        let r512 = kernel.execute(VariantId::RajaSimGpu, n, 1, &Tuning { gpu_block_size: 512 });
        assert!(
            kernels::common::close(r64.checksum, r512.checksum, 1e-9),
            "{}: block_64 {} vs block_512 {}",
            info.name,
            r64.checksum,
            r512.checksum
        );
    }
}

#[test]
fn metrics_grow_monotonically_with_problem_size() {
    for kernel in kernels::registry() {
        let info = kernel.info();
        let small = kernel.metrics(10_000);
        let large = kernel.metrics(80_000);
        let total_small = small.bytes_read + small.bytes_written + small.flops;
        let total_large = large.bytes_read + large.bytes_written + large.flops;
        assert!(
            total_large > total_small,
            "{}: metrics must grow with n ({total_small} vs {total_large})",
            info.name
        );
    }
}

#[test]
fn metrics_are_nonnegative_and_nonempty() {
    for kernel in kernels::registry() {
        let info = kernel.info();
        let m = kernel.metrics(info.default_size);
        assert!(m.bytes_read >= 0.0 && m.bytes_written >= 0.0 && m.flops >= 0.0);
        assert!(
            m.bytes_read + m.bytes_written + m.flops > 0.0,
            "{} does no accountable work",
            info.name
        );
    }
}

#[test]
fn signatures_are_well_formed() {
    for kernel in kernels::registry() {
        let info = kernel.info();
        let s = kernel.signature(100_000);
        assert!(
            (0.0..=1.0).contains(&s.cache_reuse),
            "{} cache_reuse {}",
            info.name,
            s.cache_reuse
        );
        assert!((0.0..=1.0).contains(&s.icache_pressure), "{}", info.name);
        assert!((0.0..=1.0).contains(&s.branch_mispredict_rate), "{}", info.name);
        assert!((0.0..=1.0).contains(&s.atomic_contention), "{}", info.name);
        assert!(s.gpu_coalescing > 0.0 && s.gpu_coalescing <= 1.0, "{}", info.name);
        assert!(s.flop_efficiency >= 0.0, "{}", info.name);
        assert!(s.uops() > 0.0, "{}", info.name);
        assert!(s.kernel_launches >= 1.0 || s.mpi_messages > 0.0, "{}", info.name);
        assert!(s.dram_bytes() <= s.bytes_total() + 1e-9, "{}", info.name);
    }
}

#[test]
fn device_variants_match_paper_model_coverage() {
    // Kernels Table I lists with CUDA or HIP implementations carry our
    // simulated-device variants, and vice versa.
    for kernel in kernels::registry() {
        let info = kernel.info();
        let has_device_model = info
            .paper_models
            .iter()
            .any(|m| matches!(m, PaperModel::Cuda | PaperModel::Hip));
        let has_device_variant = info.variants.contains(&VariantId::RajaSimGpu);
        assert_eq!(
            has_device_model, has_device_variant,
            "{}: paper device coverage vs variants mismatch",
            info.name
        );
    }
}

#[test]
fn all_six_variants_agree_for_every_kernel() {
    // The decisive cross-variant sweep at reduced sizes (Base_Seq is the
    // reference inside verify_variants).
    for kernel in kernels::registry() {
        let n = quick_size(kernel.as_ref());
        kernels::verify_variants(kernel.as_ref(), n, 1e-7);
    }
}

#[test]
fn execute_panics_on_unsupported_variant_message() {
    // check_variant must identify the kernel and variant in its panic.
    let result = std::panic::catch_unwind(|| {
        // Construct a kernel info with restricted variants via the check
        // helper directly.
        let info = kernels::find("Stream_TRIAD").unwrap().info();
        let mut restricted = info.clone();
        restricted.variants = kernels::SEQ_VARIANTS;
        kernels::check_variant(&restricted, VariantId::RajaSimGpu);
    });
    let err = result.expect_err("must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("Stream_TRIAD"), "{msg}");
    assert!(msg.contains("RAJA_SimGpu"), "{msg}");
}

#[test]
fn checksums_are_deterministic_across_process_lifetime() {
    // Data initialization is a pure hash: re-running a kernel reproduces
    // the exact checksum.
    let tuning = Tuning::default();
    for name in ["Stream_TRIAD", "Polybench_GEMM", "Apps_VOL3D", "Algorithm_SORT"] {
        let kernel = kernels::find(name).unwrap();
        let a = kernel.execute(VariantId::BaseSeq, 5000, 1, &tuning).checksum;
        let b = kernel.execute(VariantId::BaseSeq, 5000, 1, &tuning).checksum;
        assert_eq!(a, b, "{name}");
    }
}
