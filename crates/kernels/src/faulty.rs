//! Intentionally-failing kernels: positive controls for the suite's
//! fault-tolerance layer (per-kernel isolation, watchdog, retry).
//!
//! Same role [`crate::sanitize::fixtures`] plays for the sanitizer: they
//! implement [`KernelBase`] like real kernels but are deliberately excluded
//! from [`crate::registry`], so the suite only runs them when a test (or a
//! fault-injection exercise) asks for them by name.
//!
//! * [`Panicky`] (`Fixture_PANIC`) — panics unconditionally mid-execution:
//!   the non-transient crash the isolation layer must contain without
//!   retrying.
//! * [`Flaky`] (`Fixture_FLAKY`) — evaluates the `fixture.flaky` simfault
//!   failpoint each execution and fails only when it fires (message keeps
//!   the `simfault:` prefix, so the failure classifies as *transient* and
//!   retry-with-backoff applies). With the failpoint disarmed it is a
//!   well-behaved DAXPY-shaped kernel.
//! * [`Hang`] (`Fixture_HANG`) — spins in short sleeps for [`HANG_TOTAL`]:
//!   the stuck node the watchdog timeout must cut loose.

use crate::common;
use crate::{
    check_variant, time_reps, AnalyticMetrics, Feature, Group, KernelBase, KernelInfo, PaperModel,
    RunResult, Tuning, VariantId,
};
use perfmodel::Complexity;

const FIXTURE_VARIANTS: &[VariantId] = &[VariantId::BaseSeq, VariantId::BaseSimGpu];

/// How long [`Hang`] stays stuck (well past any test watchdog budget, short
/// enough that a detached hung thread drains quickly after the suite exits).
pub const HANG_TOTAL: std::time::Duration = std::time::Duration::from_secs(5);

fn fixture_info(name: &'static str) -> KernelInfo {
    KernelInfo {
        name,
        group: Group::Basic,
        features: &[Feature::Forall],
        complexity: Complexity::N,
        default_size: 1 << 12,
        default_reps: 1,
        paper_models: &[PaperModel::Cuda],
        variants: FIXTURE_VARIANTS,
    }
}

/// The DAXPY-shaped work every fixture does when it is not failing, so a
/// passing run produces a real checksum like any registry kernel.
fn daxpy_run(variant: VariantId, n: usize, reps: usize, tuning: &Tuning, seed: u64) -> RunResult {
    let x = common::init_unit(n, seed);
    let mut y = vec![0.0f64; n];
    let time = time_reps(reps, || {
        let p = gpusim::DevicePtr::new(&mut y);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        let body = |i: usize| unsafe { p.write(i, p.read(i) + 2.5 * x[i]) };
        match variant {
            VariantId::BaseSeq => (0..n).for_each(body),
            VariantId::BaseSimGpu => gpusim::launch_1d(n, tuning.gpu_block_size, body),
            _ => unreachable!("fixture variants are checked above"),
        }
    });
    RunResult {
        checksum: common::checksum(&y),
        time,
        reps,
        metrics: AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 2.0 * n as f64,
        },
    }
}

/// `Fixture_PANIC`: unconditionally panics mid-execution (no `simfault:`
/// prefix — a genuine, non-retryable kernel crash).
pub struct Panicky;

impl KernelBase for Panicky {
    fn info(&self) -> KernelInfo {
        fixture_info("Fixture_PANIC")
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 2.0 * n as f64,
        }
    }

    fn execute(&self, variant: VariantId, n: usize, _reps: usize, _tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        panic!("Fixture_PANIC crashed deliberately at n={n}");
    }
}

/// `Fixture_FLAKY`: fails only while the `fixture.flaky` failpoint is armed
/// and fires; otherwise a normal kernel. An `err`-mode injection surfaces
/// as a `simfault:`-prefixed panic (the transient shape the runner's retry
/// policy accepts), so `fixture.flaky=err:p,seed=s` gives a kernel that
/// deterministically fails, then succeeds on some retry.
pub struct Flaky;

impl KernelBase for Flaky {
    fn info(&self) -> KernelInfo {
        fixture_info("Fixture_FLAKY")
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 2.0 * n as f64,
        }
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        if let Err(e) = simfault::fail_point("fixture.flaky") {
            panic!("simfault: {e}");
        }
        daxpy_run(variant, n, reps, tuning, 13)
    }
}

/// `Fixture_HANG`: sleeps for [`HANG_TOTAL`] in short increments — a stuck
/// node from the watchdog's point of view. (Short increments so a detached
/// watchdog-abandoned thread re-checks nothing but also holds no locks.)
pub struct Hang;

impl KernelBase for Hang {
    fn info(&self) -> KernelInfo {
        fixture_info("Fixture_HANG")
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 2.0 * n as f64,
        }
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        // Deliberately real wall-clock: this fixture must hang for actual
        // time so the watchdog fires, not for virtual checker time.
        #[allow(clippy::disallowed_methods)]
        let slept_from = std::time::Instant::now();
        while slept_from.elapsed() < HANG_TOTAL {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        daxpy_run(variant, n, reps, tuning, 17)
    }
}

/// All faulty fixtures, boxed like registry kernels.
pub fn all() -> Vec<Box<dyn KernelBase>> {
    vec![Box::new(Panicky), Box::new(Flaky), Box::new(Hang)]
}

/// Look up a faulty fixture by kernel name.
pub fn find(name: &str) -> Option<Box<dyn KernelBase>> {
    all().into_iter().find(|k| k.info().name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_not_in_the_registry() {
        for k in all() {
            let name = k.info().name;
            assert!(
                crate::find(name).is_none(),
                "{name} must stay out of the registry"
            );
        }
    }

    #[test]
    fn panicky_panics_without_simfault_prefix() {
        let err = std::panic::catch_unwind(|| {
            Panicky.execute(VariantId::BaseSeq, 64, 1, &Tuning::default());
        })
        .expect_err("Fixture_PANIC must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("Fixture_PANIC"), "{msg}");
        assert!(!msg.starts_with("simfault:"), "genuine crash, not transient");
    }

    #[test]
    fn flaky_is_well_behaved_when_disarmed_and_matches_reference() {
        // No simfault config installed: Flaky (and Hang's post-sleep work)
        // must produce the deterministic DAXPY checksum.
        let a = Flaky.execute(VariantId::BaseSeq, 256, 1, &Tuning::default());
        let b = Flaky.execute(VariantId::BaseSimGpu, 256, 1, &Tuning::default());
        assert!((a.checksum - b.checksum).abs() < 1e-10);
    }
}
