//! Shared helpers: deterministic data initialization and checksums.
//!
//! RAJAPerf initializes kernel arrays with reproducible pseudo-random data
//! and validates variants by comparing weighted checksums of their outputs.
//! We do the same: initialization is a pure hash of `(index, seed)` so every
//! variant (and every run) sees identical inputs, and the checksum weights
//! elements by position so permutation errors are caught.

/// SplitMix64 finalizer: a high-quality 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Deterministic value in `[0, 1)` for `(index, seed)`.
#[inline]
pub fn hash_unit(i: usize, seed: u64) -> f64 {
    (mix64(i as u64 ^ seed.rotate_left(17)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Allocate and fill a vector with deterministic values in `[lo, hi)`.
pub fn init_data(n: usize, seed: u64, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|i| lo + (hi - lo) * hash_unit(i, seed)).collect()
}

/// Unit-range data (the common case).
pub fn init_unit(n: usize, seed: u64) -> Vec<f64> {
    init_data(n, seed, 0.0, 1.0)
}

/// Signed data in `[-1, 1)`.
pub fn init_signed(n: usize, seed: u64) -> Vec<f64> {
    init_data(n, seed, -1.0, 1.0)
}

/// Deterministic integer data in `[0, m)`.
pub fn init_ints(n: usize, seed: u64, m: usize) -> Vec<i32> {
    (0..n)
        .map(|i| (mix64(i as u64 ^ seed.rotate_left(29)) % m as u64) as i32)
        .collect()
}

/// Position-weighted checksum: catches both value and placement errors
/// while staying order-tolerant in its computation (pure function of the
/// final array contents).
pub fn checksum(data: &[f64]) -> f64 {
    data.iter()
        .enumerate()
        .map(|(i, &v)| v * (1.0 + (i % 31) as f64 / 31.0))
        .sum()
}

/// Unweighted checksum for outputs whose element placement is the result
/// itself (sorted arrays).
pub fn checksum_unweighted(data: &[f64]) -> f64 {
    data.iter().sum()
}

/// Relative closeness check for cross-variant checksum comparison (parallel
/// reductions reassociate FP addition).
pub fn close(a: f64, b: f64, rel: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1e-300);
    (a - b).abs() / scale < rel
}

/// Side length of the cube with at most `n` cells (RAJAPerf sizes 3-D
/// kernels as `cbrt(problem_size)` per dimension).
pub fn cube_edge(n: usize) -> usize {
    (n as f64).cbrt().floor() as usize
}

/// Side length of the square with at most `n` cells.
pub fn square_edge(n: usize) -> usize {
    (n as f64).sqrt().floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic() {
        assert_eq!(init_unit(100, 7), init_unit(100, 7));
        assert_ne!(init_unit(100, 7), init_unit(100, 8));
    }

    #[test]
    fn init_respects_bounds() {
        for &v in &init_data(1000, 3, -2.0, 5.0) {
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn init_ints_in_range() {
        for &v in &init_ints(1000, 1, 17) {
            assert!((0..17).contains(&v));
        }
    }

    #[test]
    fn checksum_detects_swaps() {
        let mut a = init_unit(64, 1);
        let c1 = checksum(&a);
        a.swap(0, 40);
        let c2 = checksum(&a);
        assert_ne!(c1, c2, "position weighting catches permutations");
    }

    #[test]
    fn close_tolerates_reassociation_noise() {
        assert!(close(1.0, 1.0 + 1e-12, 1e-10));
        assert!(!close(1.0, 1.01, 1e-10));
        assert!(close(0.0, 0.0, 1e-15));
    }

    #[test]
    fn edges() {
        assert_eq!(cube_edge(1000), 10);
        assert_eq!(cube_edge(999), 9);
        assert_eq!(square_edge(100), 10);
    }

    #[test]
    fn hash_unit_spread() {
        // The generator should cover the unit interval reasonably.
        let vals = init_unit(10_000, 42);
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(vals.iter().cloned().fold(f64::MAX, f64::min) < 0.01);
        assert!(vals.iter().cloned().fold(f64::MIN, f64::max) > 0.99);
    }
}
