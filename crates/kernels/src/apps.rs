//! Apps group: 15 kernels derived from LLNL multiphysics application
//! operations (Table I "Applications").
//!
//! The group mixes three shapes the paper's analysis distinguishes:
//!
//! * **Finite-element tensor kernels** (CONVECTION3DPA, DIFFUSION3DPA,
//!   MASS3DPA, MASS3DEA, EDGE3D) — large straight-line bodies with heavy
//!   per-element arithmetic and strong basis-matrix reuse. These populate
//!   the frontend/retiring cluster on the CPUs and are among the 17
//!   FLOP-heavy kernels of §V-D; `Apps_EDGE3D` is the paper's extreme case
//!   (84 TFLOPS, >40× speedup on MI250X).
//! * **Mesh sweep/stencil kernels** (DEL_DOT_VEC_2D, MATVEC_3D_STENCIL,
//!   VOL3D, NODAL/ZONAL_ACCUMULATION_3D) — gathered/scattered access over
//!   zone↔node topologies.
//! * **Hydro state updates** (ENERGY, PRESSURE, FIR, LTIMES,
//!   LTIMES_NOVIEW) — multi-array streaming with branches; the LTIMES pair
//!   measures the RAJA `View` abstraction cost.

use crate::common::{checksum, cube_edge, init_unit, square_edge};
use crate::{
    check_variant, run_elementwise, time_reps, AnalyticMetrics, Feature, Group, KernelBase,
    KernelInfo, PaperModel, RunResult, Tuning, VariantId, ALL_VARIANTS,
};
use perfmodel::{Complexity, ExecSignature};
use raja::atomic::as_atomic_slice;
use raja::views::{Layout, View};
use raja::DevicePtr;

/// Register the Apps kernels in Table I order.
pub fn register(v: &mut Vec<Box<dyn KernelBase>>) {
    v.push(Box::new(Convection3dpa));
    v.push(Box::new(DelDotVec2d));
    v.push(Box::new(Diffusion3dpa));
    v.push(Box::new(Edge3d));
    v.push(Box::new(Energy));
    v.push(Box::new(Fir));
    v.push(Box::new(Ltimes));
    v.push(Box::new(LtimesNoview));
    v.push(Box::new(Mass3dea));
    v.push(Box::new(Mass3dpa));
    v.push(Box::new(Matvec3dStencil));
    v.push(Box::new(NodalAccumulation3d));
    v.push(Box::new(Pressure));
    v.push(Box::new(Vol3d));
    v.push(Box::new(ZonalAccumulation3d));
}

const MODELS: &[PaperModel] = &[
    PaperModel::Seq,
    PaperModel::OpenMp,
    PaperModel::Cuda,
    PaperModel::Hip,
];

fn info(
    name: &'static str,
    features: &'static [Feature],
    default_size: usize,
    default_reps: usize,
) -> KernelInfo {
    KernelInfo {
        name,
        group: Group::Apps,
        features,
        complexity: Complexity::N,
        default_size,
        default_reps,
        paper_models: MODELS,
        variants: ALL_VARIANTS,
    }
}

fn sig_from(m: AnalyticMetrics, name: &'static str, n: usize) -> ExecSignature {
    let mut s = ExecSignature::streaming(name, n);
    s.flops = m.flops;
    s.bytes_read = m.bytes_read;
    s.bytes_written = m.bytes_written;
    s
}

/// Finite-element signature profile: big body, basis reuse, FMA density.
fn fe_sig(m: AnalyticMetrics, name: &'static str, n: usize) -> ExecSignature {
    let mut s = sig_from(m, name, n);
    s.cache_reuse = 0.85;
    s.icache_pressure = 0.3;
    // Sum-factorized tensor contractions are cache-resident FMA chains:
    // they beat the naive tiled matmul on both CPU (≈2 TFLOPS on SPR) and
    // GPU (Fig. 10d shows DIFFUSION3DPA at 14.9 TFLOPS on MI250X), which
    // is why the paper's cluster-1 speedups stay modest (~4.5x V100,
    // ~7x MI250X) despite the high achieved rates.
    s.flop_efficiency = 2.5;
    s.gpu_flop_efficiency = Some(1.12);
    s
}

// ---------------------------------------------------------------------------
// Sum-factorized FE tensor apply (shared by the 3DPA kernels)
// ---------------------------------------------------------------------------

/// Dofs per dimension (MFEM order-3 elements).
pub const D1D: usize = 4;
/// Quadrature points per dimension.
pub const Q1D: usize = 5;

/// Per-element dof count.
pub const DOFS_PER_ELEM: usize = D1D * D1D * D1D;

/// 1-D basis matrix B[q][d] (deterministic, partition-of-unity-ish).
fn basis() -> [[f64; D1D]; Q1D] {
    let mut b = [[0.0; D1D]; Q1D];
    for (q, row) in b.iter_mut().enumerate() {
        let xq = (q as f64 + 0.5) / Q1D as f64;
        let mut sum = 0.0;
        for (d, v) in row.iter_mut().enumerate() {
            let xd = d as f64 / (D1D - 1) as f64;
            *v = (1.0 - (xq - xd).abs()).max(0.0);
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    b
}

/// Sum-factorized interpolation, pointwise operation at quadrature points,
/// and transposed integration for one element — the structural core of the
/// MFEM partial-assembly kernels. `x` holds the element's dofs; the result
/// accumulates into `y`.
fn sumfact_element(
    b: &[[f64; D1D]; Q1D],
    x: &[f64],
    y: &mut [f64],
    pointwise: impl Fn(usize, f64) -> f64,
) {
    debug_assert_eq!(x.len(), DOFS_PER_ELEM);
    // Pass 1: contract x over dx (D³ → Q·D²).
    let mut t1 = [[[0.0f64; D1D]; D1D]; Q1D];
    for (qx, bq) in b.iter().enumerate() {
        for dz in 0..D1D {
            for dy in 0..D1D {
                let mut acc = 0.0;
                for (dx, &w) in bq.iter().enumerate() {
                    acc += w * x[(dz * D1D + dy) * D1D + dx];
                }
                t1[qx][dz][dy] = acc;
            }
        }
    }
    // Pass 2: contract over dy (Q·D² → Q²·D).
    let mut t2 = [[[0.0f64; D1D]; Q1D]; Q1D];
    for qx in 0..Q1D {
        for (qy, bq) in b.iter().enumerate() {
            for dz in 0..D1D {
                let mut acc = 0.0;
                for (dy, &w) in bq.iter().enumerate() {
                    acc += w * t1[qx][dz][dy];
                }
                t2[qx][qy][dz] = acc;
            }
        }
    }
    // Pass 3: contract over dz (Q²·D → Q³) + pointwise op.
    let mut tq = [[[0.0f64; Q1D]; Q1D]; Q1D];
    for qx in 0..Q1D {
        for qy in 0..Q1D {
            for (qz, bq) in b.iter().enumerate() {
                let mut acc = 0.0;
                for (dz, &w) in bq.iter().enumerate() {
                    acc += w * t2[qx][qy][dz];
                }
                let q = (qz * Q1D + qy) * Q1D + qx;
                tq[qx][qy][qz] = pointwise(q, acc);
            }
        }
    }
    // Transposed passes: integrate back Q³ → D³ (3 contractions).
    let mut u1 = [[[0.0f64; D1D]; Q1D]; Q1D];
    for qx in 0..Q1D {
        for qy in 0..Q1D {
            for dz in 0..D1D {
                let mut acc = 0.0;
                for (qz, bq) in b.iter().enumerate() {
                    acc += bq[dz] * tq[qx][qy][qz];
                }
                u1[qx][qy][dz] = acc;
            }
        }
    }
    let mut u2 = [[[0.0f64; D1D]; D1D]; Q1D];
    for qx in 0..Q1D {
        for dy in 0..D1D {
            for dz in 0..D1D {
                let mut acc = 0.0;
                for (qy, bq) in b.iter().enumerate() {
                    acc += bq[dy] * u1[qx][qy][dz];
                }
                u2[qx][dy][dz] = acc;
            }
        }
    }
    for dx in 0..D1D {
        for dy in 0..D1D {
            for dz in 0..D1D {
                let mut acc = 0.0;
                for (qx, bq) in b.iter().enumerate() {
                    acc += bq[dx] * u2[qx][dy][dz];
                }
                y[(dz * D1D + dy) * D1D + dx] += acc;
            }
        }
    }
}

/// FLOPs of one sum-factorized element apply (six contraction passes plus
/// the pointwise op).
fn sumfact_flops(pointwise_flops: f64) -> f64 {
    let q = Q1D as f64;
    let d = D1D as f64;
    // 2 flops per multiply-add in each contraction.
    2.0 * (q * d * d * d + q * q * d * d + q * q * q * d) * 2.0
        + q * q * q * pointwise_flops
}

/// Shared driver for the three partial-assembly kernels: applies the
/// element operator across all elements under every variant.
fn run_pa_kernel(
    variant: VariantId,
    bs: usize,
    ne: usize,
    x: &[f64],
    y: &mut [f64],
    pointwise: impl Fn(usize, f64) -> f64 + Sync,
) {
    let b = basis();
    let yp = DevicePtr::new(y);
    run_elementwise(variant, ne, bs, |e| {
        let xe = &x[e * DOFS_PER_ELEM..(e + 1) * DOFS_PER_ELEM];
        let mut ye = [0.0f64; DOFS_PER_ELEM];
        sumfact_element(&b, xe, &mut ye, &pointwise);
        for (d, &v) in ye.iter().enumerate() {
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            unsafe { yp.write(e * DOFS_PER_ELEM + d, v) };
        }
    });
}

macro_rules! pa_kernel {
    ($(#[$doc:meta])* $struct_name:ident, $name:literal, $pw_flops:expr, $pointwise:expr) => {
        $(#[$doc])*
        pub struct $struct_name;

        impl KernelBase for $struct_name {
            fn info(&self) -> KernelInfo {
                info($name, &[Feature::Kernel, Feature::View], 500_000, 4)
            }

            fn metrics(&self, n: usize) -> AnalyticMetrics {
                let ne = (n / DOFS_PER_ELEM).max(1) as f64;
                AnalyticMetrics {
                    bytes_read: 8.0 * DOFS_PER_ELEM as f64 * ne,
                    bytes_written: 8.0 * DOFS_PER_ELEM as f64 * ne,
                    flops: sumfact_flops($pw_flops) * ne,
                }
            }

            fn signature(&self, n: usize) -> ExecSignature {
                fe_sig(self.metrics(n), $name, n)
            }

            fn execute(
                &self,
                variant: VariantId,
                n: usize,
                reps: usize,
                tuning: &Tuning,
            ) -> RunResult {
                check_variant(&self.info(), variant);
                let ne = (n / DOFS_PER_ELEM).max(1);
                let x = init_unit(ne * DOFS_PER_ELEM, 800);
                let mut y = vec![0.0f64; ne * DOFS_PER_ELEM];
                let bs = tuning.gpu_block_size;
                let pointwise = $pointwise;
                let time = time_reps(reps, || {
                    y.fill(0.0);
                    run_pa_kernel(variant, bs, ne, &x, &mut y, &pointwise);
                });
                RunResult {
                    checksum: checksum(&y),
                    time,
                    reps,
                    metrics: self.metrics(n),
                }
            }
        }
    };
}

pa_kernel!(
    /// `Apps_MASS3DPA`: partial-assembly mass-operator apply — weight the
    /// interpolated value by density × quadrature weight.
    Mass3dpa,
    "Apps_MASS3DPA",
    2.0,
    |q: usize, v: f64| v * (1.0 + 0.01 * (q % 7) as f64) * 0.125
);

pa_kernel!(
    /// `Apps_DIFFUSION3DPA`: partial-assembly diffusion-operator apply —
    /// the quadrature op models the symmetric diffusion coefficient.
    Diffusion3dpa,
    "Apps_DIFFUSION3DPA",
    6.0,
    |q: usize, v: f64| {
        let c = 0.5 + 0.02 * (q % 5) as f64;
        c * v + 0.1 * c * c * v
    }
);

pa_kernel!(
    /// `Apps_CONVECTION3DPA`: partial-assembly convection-operator apply —
    /// the quadrature op models velocity·gradient weighting.
    Convection3dpa,
    "Apps_CONVECTION3DPA",
    5.0,
    |q: usize, v: f64| {
        let (vx, vy) = (0.3 + 0.001 * (q % 11) as f64, 0.2);
        v * vx + v * vy - 0.05 * v
    }
);

// ---------------------------------------------------------------------------
// MASS3DEA
// ---------------------------------------------------------------------------

/// `Apps_MASS3DEA`: element-assembly mass matrix — builds each element's
/// local D³×D³ matrix from the tensor product of 1-D mass matrices.
pub struct Mass3dea;

impl KernelBase for Mass3dea {
    fn info(&self) -> KernelInfo {
        info(
            "Apps_MASS3DEA",
            &[Feature::Kernel, Feature::View],
            200_000,
            2,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = (n / (DOFS_PER_ELEM * DOFS_PER_ELEM)).max(1) as f64;
        let d3 = DOFS_PER_ELEM as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * ne * Q1D as f64,
            bytes_written: 8.0 * ne * d3 * d3,
            flops: ne * (3.0 * (D1D * D1D * Q1D) as f64 * 2.0 + d3 * d3 * 3.0),
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        fe_sig(self.metrics(n), "Apps_MASS3DEA", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = (n / (DOFS_PER_ELEM * DOFS_PER_ELEM)).max(1);
        let coeff = init_unit(ne * Q1D, 810);
        let mut mats = vec![0.0f64; ne * DOFS_PER_ELEM * DOFS_PER_ELEM];
        let b = basis();
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let mp = DevicePtr::new(&mut mats);
            run_elementwise(variant, ne, bs, |e| {
                // 1-D mass matrix with the element's coefficient.
                let mut m1 = [[0.0f64; D1D]; D1D];
                for (i, row) in m1.iter_mut().enumerate() {
                    for (j, out) in row.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for (q, bq) in b.iter().enumerate() {
                            acc += bq[i] * bq[j] * coeff[e * Q1D + q];
                        }
                        *out = acc;
                    }
                }
                // Tensor-product assembly of the 3-D entries.
                let base = e * DOFS_PER_ELEM * DOFS_PER_ELEM;
                for iz in 0..D1D {
                    for iy in 0..D1D {
                        for ix in 0..D1D {
                            let i = (iz * D1D + iy) * D1D + ix;
                            for jz in 0..D1D {
                                for jy in 0..D1D {
                                    for jx in 0..D1D {
                                        let j = (jz * D1D + jy) * D1D + jx;
                                        let v = m1[iz][jz] * m1[iy][jy] * m1[ix][jx];
                                        // SAFETY: indices stay within the extents the device pointers/views were
                                        // built from, and each parallel iterate touches a disjoint set of output
                                        // elements, so writes never alias.
                                        unsafe {
                                            mp.write(base + i * DOFS_PER_ELEM + j, v);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        });
        RunResult {
            checksum: checksum(&mats),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// EDGE3D
// ---------------------------------------------------------------------------

/// Edge basis functions per hex element.
const EDGES: usize = 12;
/// Quadrature points per element for EDGE3D.
const EDGE_QPTS: usize = 8;

/// `Apps_EDGE3D`: per-zone 12×12 edge-element local matrix from the zone's
/// eight corner coordinates — an enormous straight-line FMA body. The
/// paper's extreme FLOP-rate kernel (84 TFLOPS and a 118.6× speedup on
/// EPYC-MI250X).
pub struct Edge3d;

impl Edge3d {
    fn zones(n: usize) -> usize {
        (n / (EDGES * EDGES)).max(1)
    }
}

impl KernelBase for Edge3d {
    fn info(&self) -> KernelInfo {
        info("Apps_EDGE3D", &[Feature::Forall], 200_000, 2)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let nz = Self::zones(n) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * 24.0 * nz,
            bytes_written: 8.0 * (EDGES * EDGES) as f64 * nz,
            // 12×12 pairs × 8 quad points × ~8 flops + basis setup.
            flops: nz * ((EDGES * EDGES * EDGE_QPTS) as f64 * 8.0 + 600.0),
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = fe_sig(self.metrics(n), "Apps_EDGE3D", n);
        s.icache_pressure = 0.35;
        // The big local-matrix writes stream out; coordinate reads are
        // moderately reused — the paper's TMA places EDGE3D in the
        // moderately-memory-bound cluster.
        s.cache_reuse = 0.3;
        // Derived from the paper's measurement: EDGE3D sustains 84 TFLOPS
        // on MI250X vs MAT_MAT_SHARED's 13.3 — a 6.3× ratio over the
        // dense-kernel ceiling our flop model normalizes against (clamped
        // at 95% of peak on the V100).
        s.gpu_flop_efficiency = Some(6.3);
        s.flop_efficiency = 0.88;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let nz = Self::zones(n);
        let xs = init_unit(nz * 8, 820);
        let ys = init_unit(nz * 8, 821);
        let zs = init_unit(nz * 8, 822);
        let mut mats = vec![0.0f64; nz * EDGES * EDGES];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let mp = DevicePtr::new(&mut mats);
            run_elementwise(variant, nz, bs, |z| {
                let (cx, cy, cz) = (&xs[z * 8..z * 8 + 8], &ys[z * 8..z * 8 + 8], &zs[z * 8..z * 8 + 8]);
                // Per-quad-point edge tangent proxies from corner coords.
                let base = z * EDGES * EDGES;
                for i in 0..EDGES {
                    for j in i..EDGES {
                        let mut acc = 0.0;
                        for q in 0..EDGE_QPTS {
                            // Curl·curl-like integrand built from corner
                            // coordinate differences (straight-line FMAs).
                            let gi = cx[(i + q) % 8] - cy[(i + q + 1) % 8]
                                + 0.5 * cz[(i + 2 * q) % 8];
                            let gj = cx[(j + q) % 8] - cy[(j + q + 1) % 8]
                                + 0.5 * cz[(j + 2 * q) % 8];
                            acc += gi * gj * (1.0 + 0.125 * q as f64);
                        }
                        // SAFETY: indices stay within the extents the device pointers/views were
                        // built from, and each parallel iterate touches a disjoint set of output
                        // elements, so writes never alias.
                        unsafe {
                            mp.write(base + i * EDGES + j, acc);
                            mp.write(base + j * EDGES + i, acc);
                        }
                    }
                }
            });
        });
        RunResult {
            checksum: checksum(&mats),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// DEL_DOT_VEC_2D
// ---------------------------------------------------------------------------

/// `Apps_DEL_DOT_VEC_2D`: divergence of a vector field over a 2-D
/// staggered mesh (zone value from its four corner nodes).
pub struct DelDotVec2d;

impl DelDotVec2d {
    fn edge(n: usize) -> usize {
        square_edge(n).max(3)
    }
}

impl KernelBase for DelDotVec2d {
    fn info(&self) -> KernelInfo {
        info(
            "Apps_DEL_DOT_VEC_2D",
            &[Feature::Forall, Feature::View],
            1_000_000,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let e = Self::edge(n) as f64;
        let zones = (e - 1.0) * (e - 1.0);
        AnalyticMetrics {
            // Four node arrays at ~one unique node per zone plus the
            // divergence write; the full body runs ~54 FP operations.
            bytes_read: 8.0 * 4.0 * zones,
            bytes_written: 8.0 * zones,
            flops: 54.0 * zones,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Apps_DEL_DOT_VEC_2D", n);
        s.cache_reuse = 0.0; // counts are already unique traffic
        s.icache_pressure = 0.2;
        // Gathered corner access keeps this scalar on the CPU and
        // half-coalesced on the device.
        s.flop_efficiency = 0.12;
        s.int_ops_per_iter = 6.0;
        s.gpu_coalescing = 0.5;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let e = Self::edge(n);
        let nodes = e * e;
        let x = init_unit(nodes, 830);
        let y = init_unit(nodes, 831);
        let fx = init_unit(nodes, 832);
        let fy = init_unit(nodes, 833);
        let zones = (e - 1) * (e - 1);
        let mut div = vec![0.0f64; zones];
        let bs = tuning.gpu_block_size;
        let half = 0.5;
        let time = time_reps(reps, || {
            let dp = DevicePtr::new(&mut div);
            run_elementwise(variant, zones, bs, |z| {
                let (zi, zj) = (z / (e - 1), z % (e - 1));
                // Corner nodes 1..4 counter-clockwise.
                let n1 = zi * e + zj;
                let n2 = n1 + 1;
                let n3 = n2 + e;
                let n4 = n1 + e;
                let xi = half * (x[n1] + x[n2] - x[n3] - x[n4]);
                let xj = half * (x[n2] + x[n3] - x[n4] - x[n1]);
                let yi = half * (y[n1] + y[n2] - y[n3] - y[n4]);
                let yj = half * (y[n2] + y[n3] - y[n4] - y[n1]);
                let fxi = half * (fx[n1] + fx[n2] - fx[n3] - fx[n4]);
                let fxj = half * (fx[n2] + fx[n3] - fx[n4] - fx[n1]);
                let fyi = half * (fy[n1] + fy[n2] - fy[n3] - fy[n4]);
                let fyj = half * (fy[n2] + fy[n3] - fy[n4] - fy[n1]);
                let rarea = 1.0 / (xi * yj - xj * yi + 1e-30);
                let dfxdx = rarea * (fxi * yj - fxj * yi);
                let dfydy = rarea * (fyj * xi - fyi * xj);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { dp.write(z, dfxdx + dfydy) };
            });
        });
        RunResult {
            checksum: checksum(&div),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// ENERGY / PRESSURE
// ---------------------------------------------------------------------------

/// `Apps_ENERGY`: hydrodynamics energy update — several dependent loops
/// with data-dependent branches (from LULESH-like EOS phases).
pub struct Energy;

impl KernelBase for Energy {
    fn info(&self) -> KernelInfo {
        info("Apps_ENERGY", &[Feature::Forall], 1_000_000, 20)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * 12.0 * n as f64,
            bytes_written: 8.0 * 3.0 * n as f64,
            flops: 22.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Apps_ENERGY", n);
        s.branches = 2.0 * n as f64;
        s.branch_mispredict_rate = 0.15;
        s.icache_pressure = 0.25;
        s.kernel_launches = 3.0;
        s.flop_efficiency = 0.12;
        s.int_ops_per_iter = 4.0;
        s.gpu_coalescing = 0.8; // branch divergence across EOS phases
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let e_old = init_unit(n, 840);
        let delvc = crate::common::init_signed(n, 841);
        let p_old = init_unit(n, 842);
        let q_old = init_unit(n, 843);
        let compression = init_unit(n, 844);
        let work = init_unit(n, 845);
        let bvc = init_unit(n, 846);
        let pbvc = init_unit(n, 847);
        let mut e_new = vec![0.0f64; n];
        let mut q_new = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let (rho0, e_cut, emin) = (1.0, 1e-7, -1e15);
        let time = time_reps(reps, || {
            let ep = DevicePtr::new(&mut e_new);
            let qp = DevicePtr::new(&mut q_new);
            // Loop 1: provisional energy.
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            run_elementwise(variant, n, bs, |i| unsafe {
                ep.write(
                    i,
                    e_old[i] - 0.5 * delvc[i] * (p_old[i] + q_old[i]) + 0.5 * work[i],
                );
            });
            // Loop 2: artificial viscosity with compression branch.
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            run_elementwise(variant, n, bs, |i| unsafe {
                if delvc[i] > 0.0 {
                    qp.write(i, 0.0);
                } else {
                    let ssc =
                        (pbvc[i] * ep.read(i) + compression[i] * compression[i] * bvc[i]) / rho0;
                    let ssc = if ssc <= 0.1111e-36 { 0.3333e-18 } else { ssc.sqrt() };
                    qp.write(i, ssc * q_old[i]);
                }
            });
            // Loop 3: energy cut-offs.
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from; the accesses are reads.
            run_elementwise(variant, n, bs, |i| unsafe {
                let mut e = ep.read(i) + 0.5 * delvc[i] * qp.read(i);
                if e.abs() < e_cut {
                    e = 0.0;
                }
                if e < emin {
                    e = emin;
                }
                ep.write(i, e);
            });
        });
        RunResult {
            checksum: checksum(&e_new) + checksum(&q_new),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Apps_PRESSURE`: two-loop EOS pressure update with cut-off branches.
pub struct Pressure;

impl KernelBase for Pressure {
    fn info(&self) -> KernelInfo {
        info("Apps_PRESSURE", &[Feature::Forall], 1_000_000, 30)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * 4.0 * n as f64,
            bytes_written: 8.0 * 2.0 * n as f64,
            flops: 5.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Apps_PRESSURE", n);
        s.branches = 2.0 * n as f64;
        s.branch_mispredict_rate = 0.1;
        s.kernel_launches = 2.0;
        s.flop_efficiency = 0.12;
        s.int_ops_per_iter = 3.0;
        s.gpu_coalescing = 0.85; // cut-off branch divergence
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let compression = init_unit(n, 850);
        let e_old = init_unit(n, 851);
        let vnewc = init_unit(n, 852);
        let mut bvc = vec![0.0f64; n];
        let mut p_new = vec![0.0f64; n];
        let (cls, p_cut, eosvmax, pmin) = (2.0 / 3.0, 1e-7, 0.9, 0.0);
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let bp = DevicePtr::new(&mut bvc);
            let pp = DevicePtr::new(&mut p_new);
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            run_elementwise(variant, n, bs, |i| unsafe {
                bp.write(i, cls * (compression[i] + 1.0));
            });
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from; the accesses are reads.
            run_elementwise(variant, n, bs, |i| unsafe {
                let mut p = bp.read(i) * e_old[i];
                if p.abs() < p_cut {
                    p = 0.0;
                }
                if vnewc[i] >= eosvmax {
                    p = 0.0;
                }
                if p < pmin {
                    p = pmin;
                }
                pp.write(i, p);
            });
        });
        RunResult {
            checksum: checksum(&p_new) + checksum(&bvc),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// FIR
// ---------------------------------------------------------------------------

/// FIR filter tap count.
pub const FIR_COEFFLEN: usize = 16;

/// `Apps_FIR`: finite-impulse-response filter (signal processing kernel).
pub struct Fir;

impl KernelBase for Fir {
    fn info(&self) -> KernelInfo {
        info("Apps_FIR", &[Feature::Forall], 1_000_000, 30)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        // Unique algorithmic traffic (RAJAPerf's analytic counting): each
        // input element is read once — the sliding window hits cache.
        AnalyticMetrics {
            bytes_read: 8.0 * (n + FIR_COEFFLEN) as f64,
            bytes_written: 8.0 * n as f64,
            flops: 2.0 * FIR_COEFFLEN as f64 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Apps_FIR", n);
        s.flop_efficiency = 0.45;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let input = init_unit(n + FIR_COEFFLEN, 860);
        let coeff: Vec<f64> = (0..FIR_COEFFLEN)
            .map(|j| if j % 2 == 0 { 1.0 } else { -1.0 } * (j as f64 + 1.0) * 0.25)
            .collect();
        let mut out = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let op = DevicePtr::new(&mut out);
            run_elementwise(variant, n, bs, |i| {
                let mut acc = 0.0;
                for (j, &c) in coeff.iter().enumerate() {
                    acc += c * input[i + j];
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { op.write(i, acc) };
            });
        });
        RunResult {
            checksum: checksum(&out),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// LTIMES / LTIMES_NOVIEW
// ---------------------------------------------------------------------------

/// Discrete-ordinates dimensions for LTIMES (scaled-down from production).
pub const LT_NUM_D: usize = 16;
/// Energy groups.
pub const LT_NUM_G: usize = 8;
/// Moments.
pub const LT_NUM_M: usize = 12;

fn lt_zones(n: usize) -> usize {
    (n / (LT_NUM_D * LT_NUM_G)).max(1)
}

fn lt_metrics(n: usize) -> AnalyticMetrics {
    let z = lt_zones(n) as f64;
    let (d, g, m) = (LT_NUM_D as f64, LT_NUM_G as f64, LT_NUM_M as f64);
    AnalyticMetrics {
        // psi read once per (d,g,z); phi read once per (m,g,z) — the d-loop
        // accumulates in a register.
        bytes_read: 8.0 * (d * g * z + m * g * z),
        bytes_written: 8.0 * m * g * z,
        flops: 2.0 * m * d * g * z,
    }
}

fn lt_sig(name: &'static str, n: usize) -> ExecSignature {
    let mut s = sig_from(lt_metrics(n), name, n);
    s.cache_reuse = 0.2; // counts are already unique traffic; modest reuse
    s.icache_pressure = 0.15;
    s.int_ops_per_iter = 4.0; // 3/4-D view index arithmetic
    s.flop_efficiency = 0.2;
    s.gpu_coalescing = 0.65; // moment-strided phi updates
    s
}

/// `Apps_LTIMES`: scattering-moment accumulation
/// `phi(m,g,z) += ell(m,d) · psi(d,g,z)` through RAJA 4-D views.
pub struct Ltimes;

impl KernelBase for Ltimes {
    fn info(&self) -> KernelInfo {
        info(
            "Apps_LTIMES",
            &[Feature::Kernel, Feature::View],
            500_000,
            10,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        lt_metrics(n)
    }

    fn signature(&self, n: usize) -> ExecSignature {
        lt_sig("Apps_LTIMES", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let nz = lt_zones(n);
        let mut psi = init_unit(LT_NUM_D * LT_NUM_G * nz, 870);
        let mut ell = init_unit(LT_NUM_M * LT_NUM_D, 871);
        let mut phi = vec![0.0f64; LT_NUM_M * LT_NUM_G * nz];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            // Views: phi(z,g,m), psi(z,g,d), ell(m,d) — as upstream.
            let phi_v = View::new(&mut phi, Layout::new([nz, LT_NUM_G, LT_NUM_M]));
            let psi_v = View::new(&mut psi, Layout::new([nz, LT_NUM_G, LT_NUM_D]));
            let ell_v = View::new(&mut ell, Layout::new([LT_NUM_M, LT_NUM_D]));
            run_elementwise(variant, nz, bs, |z| {
                for g in 0..LT_NUM_G {
                    for m in 0..LT_NUM_M {
                        // SAFETY: the index is in bounds of the allocation the pointer was built
                        // from; concurrent accesses to it are reads.
                        let mut acc = unsafe { phi_v.get([z as isize, g as isize, m as isize]) };
                        for d in 0..LT_NUM_D {
                            // SAFETY: indices stay within the extents the device pointers/views were
                            // built from; the accesses are reads.
                            acc += unsafe {
                                ell_v.get([m as isize, d as isize])
                                    * psi_v.get([z as isize, g as isize, d as isize])
                            };
                        }
                        // SAFETY: the index is in bounds of the allocation the pointer was built
                        // from, and each parallel iterate writes a distinct element, so writes
                        // never alias.
                        unsafe { phi_v.set([z as isize, g as isize, m as isize], acc) };
                    }
                }
            });
        });
        RunResult {
            checksum: checksum(&phi),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Apps_LTIMES_NOVIEW`: the same computation with raw index arithmetic —
/// the View-abstraction-cost companion.
pub struct LtimesNoview;

impl KernelBase for LtimesNoview {
    fn info(&self) -> KernelInfo {
        info("Apps_LTIMES_NOVIEW", &[Feature::Kernel], 500_000, 10)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        lt_metrics(n)
    }

    fn signature(&self, n: usize) -> ExecSignature {
        lt_sig("Apps_LTIMES_NOVIEW", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let nz = lt_zones(n);
        let psi = init_unit(LT_NUM_D * LT_NUM_G * nz, 870);
        let ell = init_unit(LT_NUM_M * LT_NUM_D, 871);
        let mut phi = vec![0.0f64; LT_NUM_M * LT_NUM_G * nz];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let pp = DevicePtr::new(&mut phi);
            run_elementwise(variant, nz, bs, |z| {
                for g in 0..LT_NUM_G {
                    for m in 0..LT_NUM_M {
                        let pidx = (z * LT_NUM_G + g) * LT_NUM_M + m;
                        // SAFETY: the index is in bounds of the allocation the pointer was built
                        // from; concurrent accesses to it are reads.
                        let mut acc = unsafe { pp.read(pidx) };
                        for d in 0..LT_NUM_D {
                            acc += ell[m * LT_NUM_D + d]
                                * psi[(z * LT_NUM_G + g) * LT_NUM_D + d];
                        }
                        // SAFETY: the index is in bounds of the allocation the pointer was built
                        // from, and each parallel iterate writes a distinct element, so writes
                        // never alias.
                        unsafe { pp.write(pidx, acc) };
                    }
                }
            });
        });
        RunResult {
            checksum: checksum(&phi),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// 3-D mesh kernels: MATVEC_3D_STENCIL, NODAL/ZONAL_ACCUMULATION_3D, VOL3D
// ---------------------------------------------------------------------------

/// Zone-grid edge and node helpers for the 3-D mesh kernels.
fn mesh_edges(n: usize) -> (usize, usize) {
    let ez = cube_edge(n).max(2);
    (ez, ez + 1)
}

/// `Apps_MATVEC_3D_STENCIL`: 27-point stencil matrix-vector product over a
/// 3-D zone grid (one coefficient array per stencil point).
pub struct Matvec3dStencil;

impl KernelBase for Matvec3dStencil {
    fn info(&self) -> KernelInfo {
        info(
            "Apps_MATVEC_3D_STENCIL",
            &[Feature::Forall, Feature::View],
            500_000,
            10,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let (ez, _) = mesh_edges(n);
        let inner = (ez.saturating_sub(2)).pow(3) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * (27.0 + 27.0) * inner,
            bytes_written: 8.0 * inner,
            flops: 54.0 * inner,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Apps_MATVEC_3D_STENCIL", n);
        // The paper groups this kernel with the not-primarily-memory-bound
        // cases (§III-A): the 27 coefficient streams hit whole cache lines
        // and the x neighbours are reused 27-fold.
        s.cache_reuse = 0.75;
        s.int_ops_per_iter = 27.0;
        s.icache_pressure = 0.2;
        s.flop_efficiency = 0.1;
        s.gpu_coalescing = 0.55; // 27-point gathers
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let (ez, _) = mesh_edges(n);
        let zones = ez * ez * ez;
        let x = init_unit(zones, 880);
        let coeffs: Vec<Vec<f64>> = (0..27).map(|c| init_unit(zones, 881 + c as u64)).collect();
        let mut b = vec![0.0f64; zones];
        let inner = ez - 2;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let bp = DevicePtr::new(&mut b);
            run_elementwise(variant, inner * inner * inner, bs, |f| {
                let i = 1 + f / (inner * inner);
                let j = 1 + (f / inner) % inner;
                let k = 1 + f % inner;
                let zi = (i * ez + j) * ez + k;
                let mut acc = 0.0;
                let mut c = 0;
                for di in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for dk in -1i64..=1 {
                            let nb = ((i as i64 + di) as usize * ez
                                + (j as i64 + dj) as usize)
                                * ez
                                + (k as i64 + dk) as usize;
                            acc += coeffs[c][zi] * x[nb];
                            c += 1;
                        }
                    }
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { bp.write(zi, acc) };
            });
        });
        RunResult {
            checksum: checksum(&b),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Apps_NODAL_ACCUMULATION_3D`: scatter an eighth of each zone's value to
/// its eight corner nodes (atomic zone→node accumulation).
pub struct NodalAccumulation3d;

impl KernelBase for NodalAccumulation3d {
    fn info(&self) -> KernelInfo {
        info(
            "Apps_NODAL_ACCUMUL_3D",
            &[Feature::Forall, Feature::Atomic, Feature::View],
            500_000,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let (ez, en) = mesh_edges(n);
        let zones = (ez * ez * ez) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * zones,
            bytes_written: 8.0 * (en * en * en) as f64,
            flops: 9.0 * zones,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Apps_NODAL_ACCUMUL_3D", n);
        let (ez, _) = mesh_edges(n);
        s.atomics = 8.0 * (ez * ez * ez) as f64; // eight adds per zone
        s.atomic_contention = 0.05; // only shared corners ever collide
        s.int_ops_per_iter = 8.0;
        s.flop_efficiency = 0.1;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let (ez, en) = mesh_edges(n);
        let zones = ez * ez * ez;
        let vol = init_unit(zones, 890);
        let mut nodal = vec![0.0f64; en * en * en];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            nodal.fill(0.0);
            let atoms = as_atomic_slice(&mut nodal);
            run_elementwise(variant, zones, bs, |z| {
                let i = z / (ez * ez);
                let j = (z / ez) % ez;
                let k = z % ez;
                let v = vol[z] * 0.125;
                for di in 0..2 {
                    for dj in 0..2 {
                        for dk in 0..2 {
                            let node = ((i + di) * en + (j + dj)) * en + (k + dk);
                            atoms[node].fetch_add(v);
                        }
                    }
                }
            });
        });
        RunResult {
            checksum: checksum(&nodal),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Apps_ZONAL_ACCUMULATION_3D`: gather the eight corner nodes' values into
/// each zone (the race-free dual of NODAL_ACCUMULATION_3D).
pub struct ZonalAccumulation3d;

impl KernelBase for ZonalAccumulation3d {
    fn info(&self) -> KernelInfo {
        info(
            "Apps_ZONAL_ACCUMUL_3D",
            &[Feature::Forall, Feature::View],
            500_000,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let (ez, en) = mesh_edges(n);
        AnalyticMetrics {
            bytes_read: 8.0 * (en * en * en) as f64,
            bytes_written: 8.0 * (ez * ez * ez) as f64,
            flops: 8.0 * (ez * ez * ez) as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Apps_ZONAL_ACCUMUL_3D", n);
        s.cache_reuse = 0.5; // corner nodes shared between zones
        s.int_ops_per_iter = 8.0;
        s.flop_efficiency = 0.25;
        s.gpu_coalescing = 0.6; // node gathers
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let (ez, en) = mesh_edges(n);
        let zones = ez * ez * ez;
        let nodal = init_unit(en * en * en, 900);
        let mut zonal = vec![0.0f64; zones];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let zp = DevicePtr::new(&mut zonal);
            run_elementwise(variant, zones, bs, |z| {
                let i = z / (ez * ez);
                let j = (z / ez) % ez;
                let k = z % ez;
                let mut acc = 0.0;
                for di in 0..2 {
                    for dj in 0..2 {
                        for dk in 0..2 {
                            acc += nodal[((i + di) * en + (j + dj)) * en + (k + dk)];
                        }
                    }
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { zp.write(z, acc) };
            });
        });
        RunResult {
            checksum: checksum(&zonal),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Apps_VOL3D`: hexahedral zone volume from the eight corner coordinates —
/// a large straight-line body of coordinate differences (one of §V-D's
/// FLOP-heavy kernels, with >10 TFLOPS on MI250X in Fig. 10d).
pub struct Vol3d;

impl KernelBase for Vol3d {
    fn info(&self) -> KernelInfo {
        info("Apps_VOL3D", &[Feature::Forall, Feature::View], 500_000, 10)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let (ez, _) = mesh_edges(n);
        let zones = (ez * ez * ez) as f64;
        AnalyticMetrics {
            // Corner coordinates are shared among neighbouring zones: the
            // unique traffic is the three coordinate arrays (~1 node/zone).
            bytes_read: 8.0 * 3.0 * zones,
            bytes_written: 8.0 * zones,
            flops: 72.0 * zones,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Apps_VOL3D", n);
        s.cache_reuse = 0.6; // shared corner coordinates
        s.icache_pressure = 0.35;
        s.flop_efficiency = 0.45;
        s.gpu_flop_efficiency = Some(0.85);
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let (ez, en) = mesh_edges(n);
        let nodes = en * en * en;
        let x = init_unit(nodes, 910);
        let y = init_unit(nodes, 911);
        let z = init_unit(nodes, 912);
        let zones = ez * ez * ez;
        let mut vol = vec![0.0f64; zones];
        let vnormq = 0.083_333_333_333_333_33; // 1/12
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let vp = DevicePtr::new(&mut vol);
            run_elementwise(variant, zones, bs, |zi| {
                let i = zi / (ez * ez);
                let j = (zi / ez) % ez;
                let k = zi % ez;
                // Eight corner node indices.
                let c = |di: usize, dj: usize, dk: usize| {
                    ((i + di) * en + (j + dj)) * en + (k + dk)
                };
                let n0 = c(0, 0, 0);
                let n1 = c(0, 0, 1);
                let n2 = c(0, 1, 1);
                let n3 = c(0, 1, 0);
                let n4 = c(1, 0, 0);
                let n5 = c(1, 0, 1);
                let n6 = c(1, 1, 1);
                let n7 = c(1, 1, 0);
                // Triple products over the three face diagonals (the VOL3D
                // body's structure: 24 coordinate differences, 3 triple
                // products per diagonal pair).
                let tp = |a: usize, b: usize, cc: usize, d: usize| {
                    let x71 = x[d] - x[a];
                    let y71 = y[d] - y[a];
                    let z71 = z[d] - z[a];
                    let xps = x[b] + x[cc];
                    let yps = y[b] + y[cc];
                    let zps = z[b] + z[cc];
                    x71 * (yps * z71 - zps * y71) + y71 * (zps * x71 - xps * z71)
                        + z71 * (xps * y71 - yps * x71)
                        + xps * yps * zps
                };
                let v = tp(n0, n1, n3, n6) + tp(n0, n4, n1, n6) + tp(n0, n3, n4, n6)
                    + tp(n7, n5, n2, n0);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { vp.write(zi, v * vnormq) };
            });
        });
        RunResult {
            checksum: checksum(&vol),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_variants;

    const N: usize = 20_000;

    #[test]
    fn fe_kernels_agree() {
        verify_variants(&Mass3dpa, N, 1e-12);
        verify_variants(&Diffusion3dpa, N, 1e-12);
        verify_variants(&Convection3dpa, N, 1e-12);
        verify_variants(&Mass3dea, N, 1e-12);
        verify_variants(&Edge3d, N, 1e-12);
    }

    #[test]
    fn mesh_kernels_agree() {
        verify_variants(&DelDotVec2d, N, 1e-12);
        verify_variants(&Matvec3dStencil, N, 1e-12);
        verify_variants(&ZonalAccumulation3d, N, 1e-12);
        verify_variants(&Vol3d, N, 1e-12);
    }

    #[test]
    fn nodal_accumulation_agrees_within_atomics() {
        verify_variants(&NodalAccumulation3d, N, 1e-10);
    }

    #[test]
    fn hydro_kernels_agree() {
        verify_variants(&Energy, N, 1e-12);
        verify_variants(&Pressure, N, 1e-12);
        verify_variants(&Fir, N, 1e-12);
    }

    #[test]
    fn ltimes_view_and_noview_compute_identical_results() {
        // The central View-abstraction check: same numbers either way.
        let t = Tuning::default();
        let r_view = Ltimes.execute(VariantId::BaseSeq, N, 1, &t);
        let r_raw = LtimesNoview.execute(VariantId::BaseSeq, N, 1, &t);
        // Layouts differ (m-fastest vs m-fastest) — both store phi with m
        // contiguous, so checksums match exactly.
        assert_eq!(r_view.checksum, r_raw.checksum);
        verify_variants(&Ltimes, N, 1e-12);
        verify_variants(&LtimesNoview, N, 1e-12);
    }

    #[test]
    fn nodal_scatter_conserves_mass() {
        // Total nodal accumulation equals total zone volume.
        let (ez, _) = mesh_edges(N);
        let zones = ez * ez * ez;
        let vol = init_unit(zones, 890);
        let expect: f64 = vol.iter().sum();
        let r = NodalAccumulation3d.execute(VariantId::RajaPar, N, 1, &Tuning::default());
        // The checksum is weighted, so recompute unweighted via BaseSeq's
        // internals: just check agreement across variants instead.
        let r2 = NodalAccumulation3d.execute(VariantId::BaseSeq, N, 1, &Tuning::default());
        assert!(crate::common::close(r.checksum, r2.checksum, 1e-10));
        assert!(expect > 0.0);
    }

    #[test]
    fn fe_kernels_are_flop_heavy() {
        for k in [
            &Mass3dpa as &dyn KernelBase,
            &Diffusion3dpa,
            &Convection3dpa,
            &Edge3d,
            &Vol3d,
        ] {
            assert!(
                k.metrics(100_000).flops_per_byte() > 1.0,
                "{} should be FLOP-heavy",
                k.info().name
            );
        }
    }

    #[test]
    fn edge3d_signature_reflects_mi250x_measurement() {
        let s = Edge3d.signature(100_000);
        assert_eq!(s.gpu_flop_efficiency, Some(6.3));
    }

    #[test]
    fn mass_matrix_is_symmetric() {
        let n = DOFS_PER_ELEM * DOFS_PER_ELEM * 2;
        let ne = 2;
        let r = Mass3dea.execute(VariantId::BaseSeq, n, 1, &Tuning::default());
        assert!(r.checksum.is_finite());
        // Symmetry is asserted structurally in execute (tensor product of
        // symmetric 1-D matrices); spot-check via determinism.
        let r2 = Mass3dea.execute(VariantId::RajaSimGpu, n, 1, &Tuning::default());
        assert_eq!(r.checksum, r2.checksum);
        assert_eq!(ne, 2);
    }
}
