//! Stream group: the five McCalpin STREAM kernels (ADD, COPY, DOT, MUL,
//! TRIAD).
//!
//! These are the canonical bandwidth-ceiling kernels: one or two reads and
//! one write per element with at most two FLOPs. The paper uses
//! `Stream_TRIAD` as the achieved-bandwidth yardstick of Table II and the
//! yellow reference line of Fig. 9; the whole group lands in the most
//! memory-bound cluster (Cluster 2) of §IV.

use crate::common::{checksum, init_unit};
use crate::{
    check_variant, time_reps, AnalyticMetrics, Feature, Group, KernelBase, KernelInfo, PaperModel,
    RunResult, Tuning, VariantId, ALL_VARIANTS,
};
use perfmodel::{Complexity, ExecSignature};
use raja::policy::{ParExec, SeqExec};
use raja::DevicePtr;
use rayon::prelude::*;

/// Register the Stream kernels in Table I order.
pub fn register(v: &mut Vec<Box<dyn KernelBase>>) {
    v.push(Box::new(Add));
    v.push(Box::new(Copy));
    v.push(Box::new(Dot));
    v.push(Box::new(Mul));
    v.push(Box::new(Triad));
}

const STREAM_MODELS: &[PaperModel] = &[
    PaperModel::Seq,
    PaperModel::OpenMp,
    PaperModel::OmpTarget,
    PaperModel::Cuda,
    PaperModel::Hip,
    PaperModel::Sycl,
    PaperModel::Kokkos,
];

fn stream_info(name: &'static str, features: &'static [Feature]) -> KernelInfo {
    KernelInfo {
        name,
        group: Group::Stream,
        features,
        complexity: Complexity::N,
        default_size: 1_000_000,
        default_reps: 50,
        paper_models: STREAM_MODELS,
        variants: ALL_VARIANTS,
    }
}

fn stream_signature(base: ExecSignature) -> ExecSignature {
    ExecSignature {
        // Pure streaming: no reuse, tiny vectorizable body.
        cache_reuse: 0.0,
        icache_pressure: 0.02,
        flop_efficiency: 0.30,
        ..base
    }
}

/// `Stream_ADD`: `c[i] = a[i] + b[i]`.
pub struct Add;

impl Add {
    fn raja<P: raja::ExecPolicy>(c: &mut [f64], a: &[f64], b: &[f64]) {
        let cp = DevicePtr::new(c);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        raja::forall::<P>(0..a.len(), |i| unsafe { cp.write(i, a[i] + b[i]) });
    }
}

impl KernelBase for Add {
    fn info(&self) -> KernelInfo {
        stream_info("Stream_ADD", &[Feature::Forall])
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let m = self.metrics(n);
        let mut s = stream_signature(ExecSignature::streaming("Stream_ADD", n));
        s.flops = m.flops;
        s.bytes_read = m.bytes_read;
        s.bytes_written = m.bytes_written;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let a = init_unit(n, 101);
        let b = init_unit(n, 102);
        let mut c = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || match variant {
            VariantId::BaseSeq => {
                for i in 0..n {
                    c[i] = a[i] + b[i];
                }
            }
            VariantId::BasePar => {
                c.par_iter_mut()
                    .enumerate()
                    .for_each(|(i, ci)| *ci = a[i] + b[i]);
            }
            VariantId::BaseSimGpu => {
                let cp = DevicePtr::new(&mut c);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                gpusim::launch_1d(n, bs, |i| unsafe { cp.write(i, a[i] + b[i]) });
            }
            VariantId::RajaSeq => Self::raja::<SeqExec>(&mut c, &a, &b),
            VariantId::RajaPar => Self::raja::<ParExec>(&mut c, &a, &b),
            VariantId::RajaSimGpu => {
                crate::dispatch_gpu_block!(bs, P, { Self::raja::<P>(&mut c, &a, &b) })
            }
        });
        RunResult {
            checksum: checksum(&c),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Stream_COPY`: `c[i] = a[i]`.
pub struct Copy;

impl Copy {
    fn raja<P: raja::ExecPolicy>(c: &mut [f64], a: &[f64]) {
        let cp = DevicePtr::new(c);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        raja::forall::<P>(0..a.len(), |i| unsafe { cp.write(i, a[i]) });
    }
}

impl KernelBase for Copy {
    fn info(&self) -> KernelInfo {
        stream_info("Stream_COPY", &[Feature::Forall])
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let m = self.metrics(n);
        let mut s = stream_signature(ExecSignature::streaming("Stream_COPY", n));
        s.flops = m.flops;
        s.bytes_read = m.bytes_read;
        s.bytes_written = m.bytes_written;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let a = init_unit(n, 111);
        let mut c = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || match variant {
            VariantId::BaseSeq => {
                for i in 0..n {
                    c[i] = a[i];
                }
            }
            VariantId::BasePar => {
                c.par_iter_mut().enumerate().for_each(|(i, ci)| *ci = a[i]);
            }
            VariantId::BaseSimGpu => {
                let cp = DevicePtr::new(&mut c);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                gpusim::launch_1d(n, bs, |i| unsafe { cp.write(i, a[i]) });
            }
            VariantId::RajaSeq => Self::raja::<SeqExec>(&mut c, &a),
            VariantId::RajaPar => Self::raja::<ParExec>(&mut c, &a),
            VariantId::RajaSimGpu => {
                crate::dispatch_gpu_block!(bs, P, { Self::raja::<P>(&mut c, &a) })
            }
        });
        RunResult {
            checksum: checksum(&c),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Stream_DOT`: `dot += a[i] * b[i]` — the group's reduction kernel.
pub struct Dot;

impl KernelBase for Dot {
    fn info(&self) -> KernelInfo {
        stream_info("Stream_DOT", &[Feature::Forall, Feature::Reduction])
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 0.0,
            flops: 2.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let m = self.metrics(n);
        let mut s = stream_signature(ExecSignature::streaming("Stream_DOT", n));
        s.flops = m.flops;
        s.bytes_read = m.bytes_read;
        s.bytes_written = m.bytes_written;
        // The dependent accumulation chain limits retire before the read
        // stream saturates (this is the one Stream kernel the paper's
        // clustering separates from the pure-bandwidth four).
        s.flop_efficiency = 0.08;
        s.int_ops_per_iter = 8.0;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let a = init_unit(n, 121);
        let b = init_unit(n, 122);
        let mut dot = 0.0f64;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            dot = match variant {
                VariantId::BaseSeq => {
                    let mut acc = 0.0;
                    for i in 0..n {
                        acc += a[i] * b[i];
                    }
                    acc
                }
                VariantId::BasePar => (0..n).into_par_iter().map(|i| a[i] * b[i]).sum(),
                VariantId::BaseSimGpu => {
                    // Two-stage device reduction written directly.
                    let nblocks = n.div_ceil(bs).max(1);
                    let mut partials = vec![0.0f64; nblocks];
                    let pp = DevicePtr::new(&mut partials);
                    let cfg = gpusim::LaunchConfig::linear(n, bs);
                    gpusim::launch(&cfg, |block| {
                        let bx = block.block_idx.x;
                        let mut acc = 0.0;
                        block.threads(|t, _| {
                            let i = t.global_id_x();
                            if i < n {
                                acc += a[i] * b[i];
                            }
                        });
                        // SAFETY: the index is in bounds of the allocation the pointer was built
                        // from, and each parallel iterate writes a distinct element, so writes
                        // never alias.
                        unsafe { pp.write(bx, acc) };
                    });
                    partials.iter().sum()
                }
                VariantId::RajaSeq => raja::reduce::reduce_sum::<SeqExec, f64>(0..n, |i| a[i] * b[i]),
                VariantId::RajaPar => raja::reduce::reduce_sum::<ParExec, f64>(0..n, |i| a[i] * b[i]),
                VariantId::RajaSimGpu => crate::dispatch_gpu_block!(bs, P, {
                    raja::reduce::reduce_sum::<P, f64>(0..n, |i| a[i] * b[i])
                }),
            };
        });
        RunResult {
            checksum: dot,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Stream_MUL`: `b[i] = alpha * c[i]`.
pub struct Mul;

impl Mul {
    fn raja<P: raja::ExecPolicy>(b: &mut [f64], c: &[f64], alpha: f64) {
        let bp = DevicePtr::new(b);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        raja::forall::<P>(0..c.len(), |i| unsafe { bp.write(i, alpha * c[i]) });
    }
}

impl KernelBase for Mul {
    fn info(&self) -> KernelInfo {
        stream_info("Stream_MUL", &[Feature::Forall])
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let m = self.metrics(n);
        let mut s = stream_signature(ExecSignature::streaming("Stream_MUL", n));
        s.flops = m.flops;
        s.bytes_read = m.bytes_read;
        s.bytes_written = m.bytes_written;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let c = init_unit(n, 131);
        let mut b = vec![0.0f64; n];
        let alpha = 0.3;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || match variant {
            VariantId::BaseSeq => {
                for i in 0..n {
                    b[i] = alpha * c[i];
                }
            }
            VariantId::BasePar => {
                b.par_iter_mut()
                    .enumerate()
                    .for_each(|(i, bi)| *bi = alpha * c[i]);
            }
            VariantId::BaseSimGpu => {
                let bp = DevicePtr::new(&mut b);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                gpusim::launch_1d(n, bs, |i| unsafe { bp.write(i, alpha * c[i]) });
            }
            VariantId::RajaSeq => Self::raja::<SeqExec>(&mut b, &c, alpha),
            VariantId::RajaPar => Self::raja::<ParExec>(&mut b, &c, alpha),
            VariantId::RajaSimGpu => {
                crate::dispatch_gpu_block!(bs, P, { Self::raja::<P>(&mut b, &c, alpha) })
            }
        });
        RunResult {
            checksum: checksum(&b),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Stream_TRIAD`: `a[i] = b[i] + alpha * c[i]` — the paper's bandwidth
/// yardstick.
pub struct Triad;

impl Triad {
    fn raja<P: raja::ExecPolicy>(a: &mut [f64], b: &[f64], c: &[f64], alpha: f64) {
        let ap = DevicePtr::new(a);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        raja::forall::<P>(0..b.len(), |i| unsafe { ap.write(i, b[i] + alpha * c[i]) });
    }
}

impl KernelBase for Triad {
    fn info(&self) -> KernelInfo {
        stream_info("Stream_TRIAD", &[Feature::Forall])
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 2.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let m = self.metrics(n);
        let mut s = stream_signature(ExecSignature::streaming("Stream_TRIAD", n));
        s.flops = m.flops;
        s.bytes_read = m.bytes_read;
        s.bytes_written = m.bytes_written;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let b = init_unit(n, 141);
        let c = init_unit(n, 142);
        let mut a = vec![0.0f64; n];
        let alpha = 0.3;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || match variant {
            VariantId::BaseSeq => {
                for i in 0..n {
                    a[i] = b[i] + alpha * c[i];
                }
            }
            VariantId::BasePar => {
                a.par_iter_mut()
                    .enumerate()
                    .for_each(|(i, ai)| *ai = b[i] + alpha * c[i]);
            }
            VariantId::BaseSimGpu => {
                let ap = DevicePtr::new(&mut a);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                gpusim::launch_1d(n, bs, |i| unsafe { ap.write(i, b[i] + alpha * c[i]) });
            }
            VariantId::RajaSeq => Self::raja::<SeqExec>(&mut a, &b, &c, alpha),
            VariantId::RajaPar => Self::raja::<ParExec>(&mut a, &b, &c, alpha),
            VariantId::RajaSimGpu => {
                crate::dispatch_gpu_block!(bs, P, { Self::raja::<P>(&mut a, &b, &c, alpha) })
            }
        });
        RunResult {
            checksum: checksum(&a),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_variants;

    const N: usize = 4000;

    #[test]
    fn add_variants_agree() {
        verify_variants(&Add, N, 1e-12);
    }

    #[test]
    fn copy_variants_agree() {
        verify_variants(&Copy, N, 1e-12);
    }

    #[test]
    fn dot_variants_agree() {
        // Reductions reassociate; allow FP noise.
        verify_variants(&Dot, N, 1e-10);
    }

    #[test]
    fn mul_variants_agree() {
        verify_variants(&Mul, N, 1e-12);
    }

    #[test]
    fn triad_variants_agree() {
        verify_variants(&Triad, N, 1e-12);
    }

    #[test]
    fn triad_computes_the_right_values() {
        let r = Triad.execute(VariantId::BaseSeq, 16, 1, &Tuning::default());
        // Reference: recompute by hand.
        let b = init_unit(16, 141);
        let c = init_unit(16, 142);
        let expect: Vec<f64> = (0..16).map(|i| b[i] + 0.3 * c[i]).collect();
        assert!(crate::common::close(r.checksum, checksum(&expect), 1e-15));
    }

    #[test]
    fn dot_matches_analytic_value() {
        let n = 1000;
        let a = init_unit(n, 121);
        let b = init_unit(n, 122);
        let expect: f64 = (0..n).map(|i| a[i] * b[i]).sum();
        let r = Dot.execute(VariantId::RajaPar, n, 1, &Tuning::default());
        assert!(crate::common::close(r.checksum, expect, 1e-10));
    }

    #[test]
    fn metrics_match_stream_byte_counts() {
        let n = 100;
        assert_eq!(Triad.metrics(n).bytes_read, 1600.0);
        assert_eq!(Triad.metrics(n).bytes_written, 800.0);
        assert_eq!(Triad.metrics(n).flops, 200.0);
        assert_eq!(Copy.metrics(n).flops, 0.0);
        assert_eq!(Dot.metrics(n).bytes_written, 0.0);
    }

    #[test]
    fn reps_scale_time_not_checksum() {
        let t = Tuning::default();
        let r1 = Add.execute(VariantId::BaseSeq, N, 1, &t);
        let r3 = Add.execute(VariantId::BaseSeq, N, 3, &t);
        assert_eq!(r1.checksum, r3.checksum, "idempotent kernel");
        assert_eq!(r3.reps, 3);
    }

    #[test]
    fn gpu_block_size_tuning_changes_launch_geometry() {
        gpusim::reset_stats();
        let _ = Triad.execute(
            VariantId::RajaSimGpu,
            1024,
            1,
            &Tuning { gpu_block_size: 128 },
        );
        assert_eq!(gpusim::stats().blocks, 8);
        gpusim::reset_stats();
        let _ = Triad.execute(
            VariantId::RajaSimGpu,
            1024,
            1,
            &Tuning { gpu_block_size: 512 },
        );
        assert_eq!(gpusim::stats().blocks, 2);
    }
}
