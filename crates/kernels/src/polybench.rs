//! Polybench group: 13 kernels from the Polyhedral Benchmark suite
//! (Table I "Polybench"), used upstream to study polyhedral compiler
//! optimization.
//!
//! The group spans both extremes of the paper's analysis: the matrix-matrix
//! kernels (2MM, 3MM, GEMM, FLOYD_WARSHALL) are O(N^{3/2}) and land in the
//! core-bound cluster, gaining on GPUs but not on HBM; the matrix-vector
//! kernels (ATAX, GEMVER, GESUMMV, MVT) and the sweep kernel ADI are the
//! paper's exception list — memory-bound on the CPUs yet showing *no* GPU
//! speedup because their column-strided/sweep access defeats coalescing
//! (§V-B/C).
//!
//! Problem sizing follows RAJAPerf: `n` is the total array storage; matrix
//! edges are derived from it (e.g. GEMM holds 3 N×N matrices, so
//! N = √(n/3)).

use crate::common::{checksum, init_unit};
use crate::{
    check_variant, run_elementwise, time_reps, AnalyticMetrics, Feature, Group, KernelBase,
    KernelInfo, PaperModel, RunResult, Tuning, VariantId, ALL_VARIANTS,
};
use perfmodel::{Complexity, ExecSignature};
use raja::DevicePtr;

/// Register the Polybench kernels in Table I order.
pub fn register(v: &mut Vec<Box<dyn KernelBase>>) {
    v.push(Box::new(TwoMM));
    v.push(Box::new(ThreeMM));
    v.push(Box::new(Adi));
    v.push(Box::new(Atax));
    v.push(Box::new(Fdtd2d));
    v.push(Box::new(FloydWarshall));
    v.push(Box::new(Gemm));
    v.push(Box::new(Gemver));
    v.push(Box::new(Gesummv));
    v.push(Box::new(Heat3d));
    v.push(Box::new(Jacobi1d));
    v.push(Box::new(Jacobi2d));
    v.push(Box::new(Mvt));
}

const MODELS: &[PaperModel] = &[
    PaperModel::Seq,
    PaperModel::OpenMp,
    PaperModel::OmpTarget,
    PaperModel::Cuda,
    PaperModel::Hip,
    PaperModel::Sycl,
];

fn info(name: &'static str, complexity: Complexity, default_size: usize) -> KernelInfo {
    KernelInfo {
        name,
        group: Group::Polybench,
        features: &[Feature::Kernel, Feature::View],
        complexity,
        default_size,
        default_reps: 4,
        paper_models: MODELS,
        variants: ALL_VARIANTS,
    }
}

fn sig_from(m: AnalyticMetrics, name: &'static str, n: usize) -> ExecSignature {
    let mut s = ExecSignature::streaming(name, n);
    s.flops = m.flops;
    s.bytes_read = m.bytes_read;
    s.bytes_written = m.bytes_written;
    s
}

/// Matrix edge when the kernel stores `mats` square matrices in `n` slots.
fn edge(n: usize, mats: usize) -> usize {
    ((n / mats) as f64).sqrt().floor().max(4.0) as usize
}

/// Dense-matmul signature profile (2MM/3MM/GEMM): high tile reuse, FP-port
/// saturation, super-linear work.
fn matmul_sig(m: AnalyticMetrics, name: &'static str, n: usize) -> ExecSignature {
    let mut s = sig_from(m, name, n);
    s.complexity = Complexity::NSqrtN;
    s.cache_reuse = 0.92;
    s.flop_efficiency = 0.5; // untiled triple loop: below the MAT_MAT ceiling
    s.icache_pressure = 0.08;
    s
}

/// Matrix-vector signature profile (ATAX/GEMVER/MVT): transposed access —
/// poorly vectorized on the CPU, uncoalesced on the device.
fn matvec_transposed_sig(m: AnalyticMetrics, name: &'static str, n: usize) -> ExecSignature {
    let mut s = sig_from(m, name, n);
    s.cache_reuse = 0.45;
    // Column-strided FP accumulations cannot vectorize at all: FP-port
    // latency dominates (the paper's most core-bound cluster).
    s.flop_efficiency = 0.035;
    s.int_ops_per_iter = 2.0;
    // 8 useful bytes per 64-byte line on the column sweeps, compounded by
    // latency-bound dependent accumulations (each load feeds the next
    // FMA): effectively well under 1% of device bandwidth — the paper's
    // no-GPU-speedup exceptions on both the V100 and the MI250X.
    s.gpu_coalescing = 0.006;
    s
}

// ---------------------------------------------------------------------------
// 2MM / 3MM / GEMM — dense multiply family sharing one inner routine
// ---------------------------------------------------------------------------

/// Dense multiply `C += A·B` over every variant (row-parallel).
fn mm_accumulate(variant: VariantId, bs: usize, ne: usize, c: &mut [f64], a: &[f64], b: &[f64]) {
    let cp = DevicePtr::new(c);
    run_elementwise(variant, ne * ne, bs, |f| {
        let (i, j) = (f / ne, f % ne);
        let mut acc = 0.0;
        for k in 0..ne {
            acc += a[i * ne + k] * b[k * ne + j];
        }
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        unsafe { cp.write(i * ne + j, cp.read(i * ne + j) + acc) };
    });
}

/// `Polybench_2MM`: `D = α·A·B·C + β·D` (two chained multiplies).
pub struct TwoMM;

impl KernelBase for TwoMM {
    fn info(&self) -> KernelInfo {
        info("Polybench_2MM", Complexity::NSqrtN, 5 * 128 * 128)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = edge(n, 5) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * 5.0 * ne * ne,
            bytes_written: 8.0 * 2.0 * ne * ne,
            flops: 4.0 * ne * ne * ne + 2.0 * ne * ne,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        matmul_sig(self.metrics(n), "Polybench_2MM", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = edge(n, 5);
        let (alpha, beta) = (1.5, 1.2);
        let a = init_unit(ne * ne, 600);
        let b = init_unit(ne * ne, 601);
        let c = init_unit(ne * ne, 602);
        let d0 = init_unit(ne * ne, 603);
        let mut tmp = vec![0.0f64; ne * ne];
        let mut d = vec![0.0f64; ne * ne];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            tmp.fill(0.0);
            // tmp = alpha * A * B
            mm_accumulate(variant, bs, ne, &mut tmp, &a, &b);
            for v in tmp.iter_mut() {
                *v *= alpha;
            }
            // D = tmp * C + beta * D0
            d.iter_mut().zip(&d0).for_each(|(x, &y)| *x = beta * y);
            mm_accumulate(variant, bs, ne, &mut d, &tmp, &c);
        });
        RunResult {
            checksum: checksum(&d),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Polybench_3MM`: `G = (A·B)·(C·D)` (three multiplies).
pub struct ThreeMM;

impl KernelBase for ThreeMM {
    fn info(&self) -> KernelInfo {
        info("Polybench_3MM", Complexity::NSqrtN, 7 * 128 * 128)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = edge(n, 7) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * 6.0 * ne * ne,
            bytes_written: 8.0 * 3.0 * ne * ne,
            flops: 6.0 * ne * ne * ne,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        matmul_sig(self.metrics(n), "Polybench_3MM", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = edge(n, 7);
        let a = init_unit(ne * ne, 610);
        let b = init_unit(ne * ne, 611);
        let c = init_unit(ne * ne, 612);
        let d = init_unit(ne * ne, 613);
        let mut e = vec![0.0f64; ne * ne];
        let mut f = vec![0.0f64; ne * ne];
        let mut g = vec![0.0f64; ne * ne];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            e.fill(0.0);
            f.fill(0.0);
            g.fill(0.0);
            mm_accumulate(variant, bs, ne, &mut e, &a, &b);
            mm_accumulate(variant, bs, ne, &mut f, &c, &d);
            mm_accumulate(variant, bs, ne, &mut g, &e, &f);
        });
        RunResult {
            checksum: checksum(&g),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Polybench_GEMM`: `C = α·A·B + β·C`.
pub struct Gemm;

impl KernelBase for Gemm {
    fn info(&self) -> KernelInfo {
        info("Polybench_GEMM", Complexity::NSqrtN, 3 * 160 * 160)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = edge(n, 3) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * 3.0 * ne * ne,
            bytes_written: 8.0 * ne * ne,
            flops: 2.0 * ne * ne * ne + 3.0 * ne * ne,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        matmul_sig(self.metrics(n), "Polybench_GEMM", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = edge(n, 3);
        let (alpha, beta) = (1.5, 1.2);
        let a = init_unit(ne * ne, 620);
        let b = init_unit(ne * ne, 621);
        let c0 = init_unit(ne * ne, 622);
        let mut c = vec![0.0f64; ne * ne];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let cp = DevicePtr::new(&mut c);
            run_elementwise(variant, ne * ne, bs, |f| {
                let (i, j) = (f / ne, f % ne);
                let mut acc = beta * c0[i * ne + j];
                for k in 0..ne {
                    acc += alpha * a[i * ne + k] * b[k * ne + j];
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { cp.write(i * ne + j, acc) };
            });
        });
        RunResult {
            checksum: checksum(&c),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// ADI
// ---------------------------------------------------------------------------

/// Time steps for the iterative Polybench kernels.
const TSTEPS: usize = 2;

/// `Polybench_ADI`: alternating-direction-implicit sweeps — per-line
/// forward/backward recurrences, parallel only across lines. One of the
/// paper's "memory bound on the CPU but no GPU speedup" exceptions.
pub struct Adi;

impl Adi {
    fn edge(n: usize) -> usize {
        edge(n, 4)
    }
}

impl KernelBase for Adi {
    fn info(&self) -> KernelInfo {
        info("Polybench_ADI", Complexity::N, 4 * 256 * 256)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = Self::edge(n) as f64;
        let pts = TSTEPS as f64 * 2.0 * ne * (ne - 2.0);
        AnalyticMetrics {
            bytes_read: 8.0 * 6.0 * pts,
            bytes_written: 8.0 * 3.0 * pts,
            flops: 12.0 * pts,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Polybench_ADI", n);
        // Sweep recurrences: scalar chains on the CPU, wholly uncoalesced
        // column sweeps on the device.
        s.flop_efficiency = 0.12;
        s.gpu_coalescing = 0.03;
        s.kernel_launches = (TSTEPS * 4) as f64;
        s.int_ops_per_iter = 3.0;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = Self::edge(n);
        let mut u = init_unit(ne * ne, 630);
        let mut v = vec![0.0f64; ne * ne];
        let mut p = vec![0.0f64; ne * ne];
        let mut q = vec![0.0f64; ne * ne];
        let (a, b, c, d, e, f) = (0.11, 0.22, 0.33, 0.44, 0.55, 0.66);
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let up = DevicePtr::new(&mut u);
            let vp = DevicePtr::new(&mut v);
            let pp = DevicePtr::new(&mut p);
            let qp = DevicePtr::new(&mut q);
            for _t in 0..TSTEPS {
                // Column sweep: parallel over columns i, recurrence along j.
                run_elementwise(variant, ne - 2, bs, |ii| {
                    let i = ii + 1;
                    // SAFETY: indices stay within the extents the device pointers/views were
                    // built from, and each parallel iterate touches a disjoint set of output
                    // elements, so writes never alias.
                    unsafe {
                        vp.write(i, 1.0);
                        pp.write(i * ne, 0.0);
                        qp.write(i * ne, 1.0);
                        for j in 1..ne - 1 {
                            let pv = pp.read(i * ne + j - 1);
                            let qv = qp.read(i * ne + j - 1);
                            let denom = b - a * pv;
                            pp.write(i * ne + j, c / denom);
                            qp.write(
                                i * ne + j,
                                (-d * up.read((j) * ne + i - 1)
                                    + (1.0 + 2.0 * d) * up.read(j * ne + i)
                                    - f * up.read(j * ne + i + 1)
                                    - a * qv)
                                    / denom,
                            );
                        }
                        for j in (1..ne - 1).rev() {
                            let next = vp.read((j + 1) * ne + i);
                            vp.write(j * ne + i, pp.read(i * ne + j) * next + qp.read(i * ne + j));
                        }
                    }
                });
                // Row sweep: parallel over rows i, recurrence along j.
                run_elementwise(variant, ne - 2, bs, |ii| {
                    let i = ii + 1;
                    // SAFETY: indices stay within the extents the device pointers/views were
                    // built from, and each parallel iterate touches a disjoint set of output
                    // elements, so writes never alias.
                    unsafe {
                        up.write(i * ne, 1.0);
                        pp.write(i * ne, 0.0);
                        qp.write(i * ne, 1.0);
                        for j in 1..ne - 1 {
                            let pv = pp.read(i * ne + j - 1);
                            let qv = qp.read(i * ne + j - 1);
                            let denom = e - c * pv;
                            pp.write(i * ne + j, f / denom);
                            qp.write(
                                i * ne + j,
                                (-a * vp.read((i - 1) * ne + j)
                                    + (1.0 + 2.0 * a) * vp.read(i * ne + j)
                                    - c * vp.read((i + 1) * ne + j)
                                    - c * qv)
                                    / denom,
                            );
                        }
                        for j in (1..ne - 1).rev() {
                            let next = up.read(i * ne + j + 1);
                            up.write(i * ne + j, pp.read(i * ne + j) * next + qp.read(i * ne + j));
                        }
                    }
                });
            }
        });
        RunResult {
            checksum: checksum(&u) + checksum(&v),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// ATAX / GESUMMV / GEMVER / MVT — matrix-vector family
// ---------------------------------------------------------------------------

/// `Polybench_ATAX`: `y = Aᵀ(A·x)`.
pub struct Atax;

impl KernelBase for Atax {
    fn info(&self) -> KernelInfo {
        info("Polybench_ATAX", Complexity::N, 512 * 512)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = edge(n, 1) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * 2.0 * ne * ne,
            bytes_written: 8.0 * 2.0 * ne,
            flops: 4.0 * ne * ne,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        matvec_transposed_sig(self.metrics(n), "Polybench_ATAX", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = edge(n, 1);
        let a = init_unit(ne * ne, 640);
        let x = init_unit(ne, 641);
        let mut tmp = vec![0.0f64; ne];
        let mut y = vec![0.0f64; ne];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let tp = DevicePtr::new(&mut tmp);
            let yp = DevicePtr::new(&mut y);
            // tmp = A x (row-parallel)
            run_elementwise(variant, ne, bs, |i| {
                let mut acc = 0.0;
                for j in 0..ne {
                    acc += a[i * ne + j] * x[j];
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { tp.write(i, acc) };
            });
            // y = Aᵀ tmp (column-parallel: strided reads of A)
            run_elementwise(variant, ne, bs, |j| {
                let mut acc = 0.0;
                for i in 0..ne {
                    // SAFETY: the index is in bounds of the allocation the pointer was built
                    // from; concurrent accesses to it are reads.
                    acc += a[i * ne + j] * unsafe { tp.read(i) };
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { yp.write(j, acc) };
            });
        });
        RunResult {
            checksum: checksum(&y),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Polybench_GESUMMV`: `y = α·A·x + β·B·x` — the paper's flagship
/// memory-bound-on-DDR matrix-vector kernel.
pub struct Gesummv;

impl KernelBase for Gesummv {
    fn info(&self) -> KernelInfo {
        info("Polybench_GESUMMV", Complexity::N, 2 * 360 * 360)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = edge(n, 2) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * 2.0 * ne * ne,
            bytes_written: 8.0 * ne,
            flops: 4.0 * ne * ne + 3.0 * ne,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Polybench_GESUMMV", n);
        // Two full-matrix streams per matvec: bandwidth-starved on DDR.
        s.cache_reuse = 0.0;
        s.flop_efficiency = 0.25;
        // The paper finds GESUMMV gains slightly on HBM but not on either
        // GPU: the per-row dependent accumulations leave the device
        // bandwidth badly underutilized.
        s.gpu_coalescing = 0.045;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = edge(n, 2);
        let (alpha, beta) = (1.5, 1.2);
        let a = init_unit(ne * ne, 650);
        let b = init_unit(ne * ne, 651);
        let x = init_unit(ne, 652);
        let mut y = vec![0.0f64; ne];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let yp = DevicePtr::new(&mut y);
            run_elementwise(variant, ne, bs, |i| {
                let mut sa = 0.0;
                let mut sb = 0.0;
                for j in 0..ne {
                    sa += a[i * ne + j] * x[j];
                    sb += b[i * ne + j] * x[j];
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { yp.write(i, alpha * sa + beta * sb) };
            });
        });
        RunResult {
            checksum: checksum(&y),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Polybench_GEMVER`: rank-2 update then two matrix-vector products.
pub struct Gemver;

impl KernelBase for Gemver {
    fn info(&self) -> KernelInfo {
        info("Polybench_GEMVER", Complexity::N, 512 * 512)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = edge(n, 1) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * (3.0 * ne * ne + 6.0 * ne),
            bytes_written: 8.0 * (ne * ne + 3.0 * ne),
            flops: 8.0 * ne * ne + 2.0 * ne,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = matvec_transposed_sig(self.metrics(n), "Polybench_GEMVER", n);
        s.kernel_launches = 4.0;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = edge(n, 1);
        let (alpha, beta) = (1.5, 1.2);
        let a0 = init_unit(ne * ne, 660);
        let u1 = init_unit(ne, 661);
        let v1 = init_unit(ne, 662);
        let u2 = init_unit(ne, 663);
        let v2 = init_unit(ne, 664);
        let yv = init_unit(ne, 665);
        let z = init_unit(ne, 666);
        let mut a = vec![0.0f64; ne * ne];
        let mut x = vec![0.0f64; ne];
        let mut w = vec![0.0f64; ne];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            a.copy_from_slice(&a0);
            let ap = DevicePtr::new(&mut a);
            let xp = DevicePtr::new(&mut x);
            let wp = DevicePtr::new(&mut w);
            // A = A + u1 v1ᵀ + u2 v2ᵀ
            run_elementwise(variant, ne * ne, bs, |f| {
                let (i, j) = (f / ne, f % ne);
                // SAFETY: indices stay within the extents the device pointers/views were
                // built from, and each parallel iterate touches a disjoint set of output
                // elements, so writes never alias.
                unsafe {
                    ap.write(
                        i * ne + j,
                        ap.read(i * ne + j) + u1[i] * v1[j] + u2[i] * v2[j],
                    );
                }
            });
            // x = beta Aᵀ y + z  (column access)
            run_elementwise(variant, ne, bs, |i| {
                let mut acc = z[i];
                for j in 0..ne {
                    // SAFETY: the index is in bounds of the allocation the pointer was built
                    // from; concurrent accesses to it are reads.
                    acc += beta * unsafe { ap.read(j * ne + i) } * yv[j];
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { xp.write(i, acc) };
            });
            // w = alpha A x
            run_elementwise(variant, ne, bs, |i| {
                let mut acc = 0.0;
                for j in 0..ne {
                    // SAFETY: the index is in bounds of the allocation the pointer was built
                    // from; concurrent accesses to it are reads.
                    acc += alpha * unsafe { ap.read(i * ne + j) * xp.read(j) };
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { wp.write(i, acc) };
            });
        });
        RunResult {
            checksum: checksum(&w) + checksum(&x),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Polybench_MVT`: `x1 += A·y1; x2 += Aᵀ·y2`.
pub struct Mvt;

impl KernelBase for Mvt {
    fn info(&self) -> KernelInfo {
        info("Polybench_MVT", Complexity::N, 512 * 512)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = edge(n, 1) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * 2.0 * ne * ne,
            bytes_written: 8.0 * 2.0 * ne,
            flops: 4.0 * ne * ne,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        matvec_transposed_sig(self.metrics(n), "Polybench_MVT", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = edge(n, 1);
        let a = init_unit(ne * ne, 670);
        let y1 = init_unit(ne, 671);
        let y2 = init_unit(ne, 672);
        let mut x1 = init_unit(ne, 673);
        let mut x2 = init_unit(ne, 674);
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let p1 = DevicePtr::new(&mut x1);
            let p2 = DevicePtr::new(&mut x2);
            run_elementwise(variant, ne, bs, |i| {
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from; concurrent accesses to it are reads.
                let mut acc = unsafe { p1.read(i) };
                for j in 0..ne {
                    acc += a[i * ne + j] * y1[j];
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { p1.write(i, acc) };
            });
            run_elementwise(variant, ne, bs, |i| {
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from; concurrent accesses to it are reads.
                let mut acc = unsafe { p2.read(i) };
                for j in 0..ne {
                    acc += a[j * ne + i] * y2[j];
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { p2.write(i, acc) };
            });
        });
        RunResult {
            checksum: checksum(&x1) + checksum(&x2),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// FDTD_2D
// ---------------------------------------------------------------------------

/// `Polybench_FDTD_2D`: finite-difference time domain over a 2-D grid —
/// four sub-loops per time step.
pub struct Fdtd2d;

impl Fdtd2d {
    fn edge(n: usize) -> usize {
        edge(n, 3)
    }
}

impl KernelBase for Fdtd2d {
    fn info(&self) -> KernelInfo {
        info("Polybench_FDTD_2D", Complexity::N, 3 * 300 * 300)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = Self::edge(n) as f64;
        let pts = TSTEPS as f64 * ne * ne;
        AnalyticMetrics {
            bytes_read: 8.0 * 7.0 * pts,
            bytes_written: 8.0 * 3.0 * pts,
            flops: 11.0 * pts,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Polybench_FDTD_2D", n);
        s.cache_reuse = 0.3;
        s.kernel_launches = (TSTEPS * 4) as f64;
        s.flop_efficiency = 0.3;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = Self::edge(n);
        let mut ex = init_unit(ne * ne, 680);
        let mut ey = init_unit(ne * ne, 681);
        let mut hz = init_unit(ne * ne, 682);
        let fict = init_unit(TSTEPS, 683);
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let exp_ = DevicePtr::new(&mut ex);
            let eyp = DevicePtr::new(&mut ey);
            let hzp = DevicePtr::new(&mut hz);
            for t in 0..TSTEPS {
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                run_elementwise(variant, ne, bs, |j| unsafe { eyp.write(j, fict[t]) });
                run_elementwise(variant, (ne - 1) * ne, bs, |f| {
                    let (i, j) = (1 + f / ne, f % ne);
                    // SAFETY: indices stay within the extents the device pointers/views were
                    // built from, and each parallel iterate touches a disjoint set of output
                    // elements, so writes never alias.
                    unsafe {
                        eyp.write(
                            i * ne + j,
                            eyp.read(i * ne + j)
                                - 0.5 * (hzp.read(i * ne + j) - hzp.read((i - 1) * ne + j)),
                        );
                    }
                });
                run_elementwise(variant, ne * (ne - 1), bs, |f| {
                    let (i, j) = (f / (ne - 1), 1 + f % (ne - 1));
                    // SAFETY: indices stay within the extents the device pointers/views were
                    // built from, and each parallel iterate touches a disjoint set of output
                    // elements, so writes never alias.
                    unsafe {
                        exp_.write(
                            i * ne + j,
                            exp_.read(i * ne + j)
                                - 0.5 * (hzp.read(i * ne + j) - hzp.read(i * ne + j - 1)),
                        );
                    }
                });
                run_elementwise(variant, (ne - 1) * (ne - 1), bs, |f| {
                    let (i, j) = (f / (ne - 1), f % (ne - 1));
                    // SAFETY: indices stay within the extents the device pointers/views were
                    // built from, and each parallel iterate touches a disjoint set of output
                    // elements, so writes never alias.
                    unsafe {
                        hzp.write(
                            i * ne + j,
                            hzp.read(i * ne + j)
                                - 0.7
                                    * (exp_.read(i * ne + j + 1) - exp_.read(i * ne + j)
                                        + eyp.read((i + 1) * ne + j)
                                        - eyp.read(i * ne + j)),
                        );
                    }
                });
            }
        });
        RunResult {
            checksum: checksum(&hz),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// FLOYD_WARSHALL
// ---------------------------------------------------------------------------

/// `Polybench_FLOYD_WARSHALL`: all-pairs shortest paths; the outer `k`
/// loop is sequential (one device launch per `k`), the inner N² update is
/// parallel. Primarily memory bound (§V-D).
pub struct FloydWarshall;

impl FloydWarshall {
    fn edge(n: usize) -> usize {
        edge(n, 1)
    }
}

impl KernelBase for FloydWarshall {
    fn info(&self) -> KernelInfo {
        info("Polybench_FLOYD_WARSHALL", Complexity::NSqrtN, 256 * 256)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = Self::edge(n) as f64;
        AnalyticMetrics {
            bytes_read: 8.0 * 3.0 * ne * ne * ne,
            bytes_written: 8.0 * ne * ne * ne,
            flops: ne * ne * ne, // the add; min is a compare
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let ne = Self::edge(n) as f64;
        let mut s = sig_from(self.metrics(n), "Polybench_FLOYD_WARSHALL", n);
        s.complexity = Complexity::NSqrtN;
        s.cache_reuse = 0.55; // row k and column k stay hot
        s.branches = ne * ne * ne;
        s.branch_mispredict_rate = 0.1;
        s.kernel_launches = ne; // one launch per k
        s.flop_efficiency = 0.08;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = Self::edge(n);
        let init: Vec<f64> = init_unit(ne * ne, 690).iter().map(|v| v * 100.0).collect();
        let mut paths = vec![0.0f64; ne * ne];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            paths.copy_from_slice(&init);
            let pp = DevicePtr::new(&mut paths);
            for k in 0..ne {
                run_elementwise(variant, ne * ne, bs, |f| {
                    let (i, j) = (f / ne, f % ne);
                    // SAFETY: indices stay within the extents the device pointers/views were
                    // built from, and each parallel iterate touches a disjoint set of output
                    // elements, so writes never alias.
                    unsafe {
                        let via = pp.read(i * ne + k) + pp.read(k * ne + j);
                        if via < pp.read(i * ne + j) {
                            pp.write(i * ne + j, via);
                        }
                    }
                });
            }
        });
        RunResult {
            checksum: checksum(&paths),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// HEAT_3D / JACOBI_1D / JACOBI_2D
// ---------------------------------------------------------------------------

/// `Polybench_HEAT_3D`: 3-D heat equation, second-order stencil,
/// ping-pong buffers.
pub struct Heat3d;

impl Heat3d {
    fn edge(n: usize) -> usize {
        ((n / 2) as f64).cbrt().floor().max(4.0) as usize
    }
}

impl KernelBase for Heat3d {
    fn info(&self) -> KernelInfo {
        info("Polybench_HEAT_3D", Complexity::N, 2 * 48 * 48 * 48)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let e = Self::edge(n) as f64;
        let pts = (TSTEPS * 2) as f64 * (e - 2.0).powi(3);
        AnalyticMetrics {
            bytes_read: 8.0 * 7.0 * pts,
            bytes_written: 8.0 * pts,
            flops: 15.0 * pts,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Polybench_HEAT_3D", n);
        s.cache_reuse = 0.45; // plane reuse
        s.kernel_launches = (TSTEPS * 2) as f64;
        s.flop_efficiency = 0.3;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let e = Self::edge(n);
        let mut a = init_unit(e * e * e, 700);
        let mut b = vec![0.0f64; e * e * e];
        let bs = tuning.gpu_block_size;
        let inner = e - 2;
        let idx = |i: usize, j: usize, k: usize| (i * e + j) * e + k;
        let stencil = |src: &DevicePtr<f64>, dst: &DevicePtr<f64>, f: usize| {
            let i = 1 + f / (inner * inner);
            let j = 1 + (f / inner) % inner;
            let k = 1 + f % inner;
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            unsafe {
                let c = src.read(idx(i, j, k));
                let v = 0.125 * (src.read(idx(i + 1, j, k)) - 2.0 * c + src.read(idx(i - 1, j, k)))
                    + 0.125 * (src.read(idx(i, j + 1, k)) - 2.0 * c + src.read(idx(i, j - 1, k)))
                    + 0.125 * (src.read(idx(i, j, k + 1)) - 2.0 * c + src.read(idx(i, j, k - 1)))
                    + c;
                dst.write(idx(i, j, k), v);
            }
        };
        let time = time_reps(reps, || {
            let ap = DevicePtr::new(&mut a);
            let bp = DevicePtr::new(&mut b);
            for _t in 0..TSTEPS {
                run_elementwise(variant, inner * inner * inner, bs, |f| stencil(&ap, &bp, f));
                run_elementwise(variant, inner * inner * inner, bs, |f| stencil(&bp, &ap, f));
            }
        });
        RunResult {
            checksum: checksum(&a),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Polybench_JACOBI_1D`: 3-point 1-D Jacobi relaxation, ping-pong.
pub struct Jacobi1d;

impl KernelBase for Jacobi1d {
    fn info(&self) -> KernelInfo {
        info("Polybench_JACOBI_1D", Complexity::N, 1_000_000)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let e = (n / 2) as f64;
        let pts = (TSTEPS * 2) as f64 * (e - 2.0);
        AnalyticMetrics {
            bytes_read: 8.0 * 3.0 * pts,
            bytes_written: 8.0 * pts,
            flops: 3.0 * pts,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Polybench_JACOBI_1D", n);
        s.cache_reuse = 0.4;
        s.kernel_launches = (TSTEPS * 2) as f64;
        s.flop_efficiency = 0.3;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let e = n / 2;
        let mut a = init_unit(e, 710);
        let mut b = vec![0.0f64; e];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let ap = DevicePtr::new(&mut a);
            let bp = DevicePtr::new(&mut b);
            for _t in 0..TSTEPS {
                // SAFETY: indices stay within the extents the device pointers/views were
                // built from, and each parallel iterate touches a disjoint set of output
                // elements, so writes never alias.
                run_elementwise(variant, e - 2, bs, |f| unsafe {
                    let i = f + 1;
                    bp.write(
                        i,
                        0.33333 * (ap.read(i - 1) + ap.read(i) + ap.read(i + 1)),
                    );
                });
                // SAFETY: indices stay within the extents the device pointers/views were
                // built from, and each parallel iterate touches a disjoint set of output
                // elements, so writes never alias.
                run_elementwise(variant, e - 2, bs, |f| unsafe {
                    let i = f + 1;
                    ap.write(
                        i,
                        0.33333 * (bp.read(i - 1) + bp.read(i) + bp.read(i + 1)),
                    );
                });
            }
        });
        RunResult {
            checksum: checksum(&a),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Polybench_JACOBI_2D`: 5-point 2-D Jacobi relaxation, ping-pong.
pub struct Jacobi2d;

impl Jacobi2d {
    fn edge(n: usize) -> usize {
        edge(n, 2)
    }
}

impl KernelBase for Jacobi2d {
    fn info(&self) -> KernelInfo {
        info("Polybench_JACOBI_2D", Complexity::N, 2 * 360 * 360)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let e = Self::edge(n) as f64;
        let pts = (TSTEPS * 2) as f64 * (e - 2.0) * (e - 2.0);
        AnalyticMetrics {
            bytes_read: 8.0 * 5.0 * pts,
            bytes_written: 8.0 * pts,
            flops: 5.0 * pts,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Polybench_JACOBI_2D", n);
        s.cache_reuse = 0.4;
        s.kernel_launches = (TSTEPS * 2) as f64;
        s.flop_efficiency = 0.3;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let e = Self::edge(n);
        let mut a = init_unit(e * e, 720);
        let mut b = vec![0.0f64; e * e];
        let bs = tuning.gpu_block_size;
        let inner = e - 2;
        let step = |src: &DevicePtr<f64>, dst: &DevicePtr<f64>, f: usize| {
            let (i, j) = (1 + f / inner, 1 + f % inner);
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            unsafe {
                dst.write(
                    i * e + j,
                    0.2 * (src.read(i * e + j)
                        + src.read(i * e + j - 1)
                        + src.read(i * e + j + 1)
                        + src.read((i - 1) * e + j)
                        + src.read((i + 1) * e + j)),
                );
            }
        };
        let time = time_reps(reps, || {
            let ap = DevicePtr::new(&mut a);
            let bp = DevicePtr::new(&mut b);
            for _t in 0..TSTEPS {
                run_elementwise(variant, inner * inner, bs, |f| step(&ap, &bp, f));
                run_elementwise(variant, inner * inner, bs, |f| step(&bp, &ap, f));
            }
        });
        RunResult {
            checksum: checksum(&a),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_variants;

    // Small sizes keep the O(N^{3/2}) kernels fast under test.
    const N_MM: usize = 5 * 48 * 48;
    const N_MV: usize = 96 * 96;

    #[test]
    fn matmul_family_agrees() {
        verify_variants(&TwoMM, N_MM, 1e-10);
        verify_variants(&ThreeMM, 7 * 40 * 40, 1e-10);
        verify_variants(&Gemm, 3 * 48 * 48, 1e-10);
    }

    #[test]
    fn matvec_family_agrees() {
        verify_variants(&Atax, N_MV, 1e-10);
        verify_variants(&Gesummv, 2 * 64 * 64, 1e-10);
        verify_variants(&Gemver, N_MV, 1e-10);
        verify_variants(&Mvt, N_MV, 1e-10);
    }

    #[test]
    fn sweep_and_stencil_kernels_agree() {
        verify_variants(&Adi, 4 * 32 * 32, 1e-10);
        verify_variants(&Fdtd2d, 3 * 40 * 40, 1e-10);
        verify_variants(&FloydWarshall, 48 * 48, 1e-10);
        verify_variants(&Heat3d, 2 * 12 * 12 * 12, 1e-10);
        verify_variants(&Jacobi1d, 4000, 1e-10);
        verify_variants(&Jacobi2d, 2 * 48 * 48, 1e-10);
    }

    #[test]
    fn floyd_warshall_shrinks_paths() {
        let n = 32 * 32;
        let before: f64 = init_unit(32 * 32, 690).iter().map(|v| v * 100.0).sum();
        let r = FloydWarshall.execute(VariantId::BaseSeq, n, 1, &Tuning::default());
        // All-pairs relaxation can only decrease the (positively weighted)
        // path matrix.
        assert!(r.checksum < before * 2.0, "checksum is weighted; sanity only");
        let r2 = FloydWarshall.execute(VariantId::RajaSimGpu, n, 1, &Tuning::default());
        assert_eq!(r.checksum, r2.checksum, "min/add is exact");
    }

    #[test]
    fn gemm_matches_reference_values() {
        let ne = 8;
        let n = 3 * ne * ne;
        let r1 = Gemm.execute(VariantId::BaseSeq, n, 1, &Tuning::default());
        let r2 = Gemm.execute(VariantId::RajaPar, n, 1, &Tuning::default());
        assert_eq!(r1.checksum, r2.checksum);
    }

    #[test]
    fn matmul_flops_dominate_bytes() {
        let m = Gemm.metrics(3 * 256 * 256);
        assert!(m.flops_per_byte() > 10.0);
        let m = Gesummv.metrics(2 * 256 * 256);
        assert!(m.flops_per_byte() < 1.0, "matvec stays bandwidth-lean");
    }

    #[test]
    fn exception_kernels_have_poor_gpu_coalescing() {
        for k in [
            &Atax as &dyn KernelBase,
            &Gemver,
            &Gesummv,
            &Mvt,
            &Adi,
        ] {
            let s = k.signature(10_000);
            assert!(
                s.gpu_coalescing < 0.1,
                "{} should model uncoalesced access",
                k.info().name
            );
        }
    }
}
