//! Algorithm group: kernels exercising specific parallel constructs —
//! atomics, histograms, memory operations, reductions, scans, and sorts
//! (Table I "Algorithms").
//!
//! These are the kernels whose *construct*, not arithmetic, defines the
//! bottleneck: the paper's §III-A uses `SCAN` as the flagship
//! memory-bound-on-DDR example and `REDUCE_SUM` as the example whose
//! bottleneck is not bandwidth.

use crate::common::{checksum, checksum_unweighted, init_signed, init_unit};
use crate::{
    check_variant, run_elementwise, time_reps, AnalyticMetrics, Feature, Group, KernelBase,
    KernelInfo, PaperModel, RunResult, Tuning, VariantId, ALL_VARIANTS,
};
use perfmodel::{Complexity, ExecSignature};
use raja::atomic::as_atomic_slice;
use raja::policy::{ParExec, SeqExec};
use raja::DevicePtr;
use rayon::prelude::*;

/// Register the Algorithm kernels in Table I order.
pub fn register(v: &mut Vec<Box<dyn KernelBase>>) {
    v.push(Box::new(Atomic));
    v.push(Box::new(Histogram));
    v.push(Box::new(Memcpy));
    v.push(Box::new(Memset));
    v.push(Box::new(ReduceSum));
    v.push(Box::new(Scan));
    v.push(Box::new(Sort));
    v.push(Box::new(SortPairs));
}

const MODELS: &[PaperModel] = &[
    PaperModel::Seq,
    PaperModel::OpenMp,
    PaperModel::OmpTarget,
    PaperModel::Cuda,
    PaperModel::Hip,
    PaperModel::Sycl,
];

fn info(
    name: &'static str,
    features: &'static [Feature],
    complexity: Complexity,
    default_reps: usize,
) -> KernelInfo {
    KernelInfo {
        name,
        group: Group::Algorithm,
        features,
        complexity,
        default_size: 1_000_000,
        default_reps,
        paper_models: MODELS,
        variants: ALL_VARIANTS,
    }
}

fn sig_from(m: AnalyticMetrics, name: &'static str, n: usize) -> ExecSignature {
    let mut s = ExecSignature::streaming(name, n);
    s.flops = m.flops;
    s.bytes_read = m.bytes_read;
    s.bytes_written = m.bytes_written;
    s
}

// ---------------------------------------------------------------------------
// ATOMIC
// ---------------------------------------------------------------------------

/// Replication factor for `Algorithm_ATOMIC` (upstream spreads the counter
/// over a small array to expose contention levels).
pub const ATOMIC_REPLICATION: usize = 4096;

/// `Algorithm_ATOMIC`: every iteration atomically accumulates into a slot
/// of a small replicated counter array.
pub struct Atomic;

impl KernelBase for Atomic {
    fn info(&self) -> KernelInfo {
        info(
            "Algorithm_ATOMIC",
            &[Feature::Forall, Feature::Atomic],
            Complexity::N,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 0.0,
            bytes_written: 8.0 * ATOMIC_REPLICATION.min(n) as f64,
            flops: n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Algorithm_ATOMIC", n);
        s.atomics = n as f64;
        // 4096-way replication spreads the contention thin.
        s.atomic_contention = 0.1;
        s.flop_efficiency = 0.05;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let repl = ATOMIC_REPLICATION.min(n);
        let mut counters = vec![0.0f64; repl];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            counters.fill(0.0);
            let atoms = as_atomic_slice(&mut counters);
            run_elementwise(variant, n, bs, |i| {
                atoms[i % repl].fetch_add(1.0);
            });
        });
        RunResult {
            checksum: checksum_unweighted(&counters),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// HISTOGRAM
// ---------------------------------------------------------------------------

/// Bin count for `Algorithm_HISTOGRAM`.
pub const HISTOGRAM_BINS: usize = 100;

/// `Algorithm_HISTOGRAM`: atomic binning of a data-dependent index stream.
pub struct Histogram;

impl KernelBase for Histogram {
    fn info(&self) -> KernelInfo {
        info(
            "Algorithm_HISTOGRAM",
            &[Feature::Forall, Feature::Atomic],
            Complexity::N,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 4.0 * n as f64,
            bytes_written: 8.0 * HISTOGRAM_BINS as f64,
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Algorithm_HISTOGRAM", n);
        s.atomics = n as f64;
        s.atomic_contention = 0.3; // 100 bins: moderate collisions
        s.int_ops_per_iter = 2.0;
        s.flop_efficiency = 0.05;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let bins = crate::common::init_ints(n, 510, HISTOGRAM_BINS);
        let mut counts = vec![0.0f64; HISTOGRAM_BINS];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            counts.fill(0.0);
            let atoms = as_atomic_slice(&mut counts);
            run_elementwise(variant, n, bs, |i| {
                atoms[bins[i] as usize].fetch_add(1.0);
            });
        });
        RunResult {
            checksum: checksum(&counts),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// MEMCPY / MEMSET
// ---------------------------------------------------------------------------

/// `Algorithm_MEMCPY`: bulk copy, `y[i] = x[i]`.
pub struct Memcpy;

impl KernelBase for Memcpy {
    fn info(&self) -> KernelInfo {
        info("Algorithm_MEMCPY", &[Feature::Forall], Complexity::N, 50)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Algorithm_MEMCPY", n);
        s.flop_efficiency = 0.3;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let x = init_unit(n, 520);
        let mut y = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || match variant {
            // The Base_Seq upstream literally calls memcpy.
            VariantId::BaseSeq => y.copy_from_slice(&x),
            _ => {
                let yp = DevicePtr::new(&mut y);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                run_elementwise(variant, n, bs, |i| unsafe { yp.write(i, x[i]) });
            }
        });
        RunResult {
            checksum: checksum(&y),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Algorithm_MEMSET`: bulk fill, `x[i] = value`. One of the kernels that
/// gains on the V100 but not on SPR-HBM (§V-B).
pub struct Memset;

impl KernelBase for Memset {
    fn info(&self) -> KernelInfo {
        info("Algorithm_MEMSET", &[Feature::Forall], Complexity::N, 50)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 0.0,
            bytes_written: 8.0 * n as f64,
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Algorithm_MEMSET", n);
        s.flop_efficiency = 0.35;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let mut x = vec![0.0f64; n];
        let value = 0.123;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || match variant {
            VariantId::BaseSeq => x.fill(value),
            _ => {
                let xp = DevicePtr::new(&mut x);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                run_elementwise(variant, n, bs, |i| unsafe { xp.write(i, value) });
            }
        });
        RunResult {
            checksum: checksum(&x),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// REDUCE_SUM
// ---------------------------------------------------------------------------

/// `Algorithm_REDUCE_SUM`: plain sum reduction — the paper's example of a
/// kernel whose bottleneck is *not* primarily memory bandwidth (§III-A).
pub struct ReduceSum;

impl KernelBase for ReduceSum {
    fn info(&self) -> KernelInfo {
        info(
            "Algorithm_REDUCE_SUM",
            &[Feature::Forall, Feature::Reduction],
            Complexity::N,
            30,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * n as f64,
            bytes_written: 8.0,
            flops: n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Algorithm_REDUCE_SUM", n);
        // The serial accumulation chain limits retire before bandwidth
        // saturates (single-stream add dependency).
        s.int_ops_per_iter = 3.0;
        s.flop_efficiency = 0.12;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let x = init_signed(n, 530);
        let mut sum = 0.0f64;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            sum = match variant {
                VariantId::BaseSeq => x.iter().sum(),
                VariantId::BasePar => x.par_iter().sum(),
                VariantId::RajaSeq => raja::reduce::reduce_sum::<SeqExec, f64>(0..n, |i| x[i]),
                VariantId::RajaPar => raja::reduce::reduce_sum::<ParExec, f64>(0..n, |i| x[i]),
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, {
                        raja::reduce::reduce_sum::<P, f64>(0..n, |i| x[i])
                    })
                }
            };
        });
        RunResult {
            checksum: sum,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// SCAN
// ---------------------------------------------------------------------------

/// `Algorithm_SCAN`: exclusive prefix sum — the paper's flagship
/// memory-bandwidth-bound kernel on SPR-DDR (§III-A).
pub struct Scan;

impl KernelBase for Scan {
    fn info(&self) -> KernelInfo {
        info(
            "Algorithm_SCAN",
            &[Feature::Forall, Feature::Scan],
            Complexity::N,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Algorithm_SCAN", n);
        s.kernel_launches = 3.0; // blocked scan phases
        s.flop_efficiency = 0.3;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let x = init_unit(n, 540);
        let mut y = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || match variant {
            VariantId::BaseSeq => {
                let mut acc = 0.0;
                for i in 0..n {
                    y[i] = acc;
                    acc += x[i];
                }
            }
            VariantId::BasePar | VariantId::RajaPar => {
                raja::scan::exclusive_scan::<ParExec>(0..n, &mut y, |i| x[i]);
            }
            VariantId::RajaSeq => {
                raja::scan::exclusive_scan::<SeqExec>(0..n, &mut y, |i| x[i]);
            }
            VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                crate::dispatch_gpu_block!(bs, P, {
                    raja::scan::exclusive_scan::<P>(0..n, &mut y, |i| x[i]);
                })
            }
        });
        RunResult {
            checksum: checksum(&y),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// SORT / SORTPAIRS
// ---------------------------------------------------------------------------

/// `Algorithm_SORT`: ascending sort of a real array (O(n lg n)).
pub struct Sort;

impl KernelBase for Sort {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            default_size: 100_000,
            ..info(
                "Algorithm_SORT",
                &[Feature::Sort],
                Complexity::NLogN,
                10,
            )
        }
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let passes = (n as f64).max(2.0).log2();
        AnalyticMetrics {
            bytes_read: 8.0 * n as f64 * passes,
            bytes_written: 8.0 * n as f64 * passes,
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Algorithm_SORT", n);
        s.complexity = Complexity::NLogN;
        s.branches = s.iterations * (n as f64).max(2.0).log2();
        s.branch_mispredict_rate = 0.2;
        s.int_ops_per_iter = 6.0;
        s.kernel_launches = 8.0; // radix passes on the device
        s.cache_reuse = 0.4;
        s.flop_efficiency = 0.02;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let orig = init_signed(n, 550);
        let mut x = orig.clone();
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            x.copy_from_slice(&orig);
            match variant {
                VariantId::BaseSeq => x.sort_unstable_by(f64::total_cmp),
                VariantId::BasePar => x.par_sort_unstable_by(f64::total_cmp),
                VariantId::RajaSeq => raja::sort::sort::<SeqExec>(&mut x),
                VariantId::RajaPar => raja::sort::sort::<ParExec>(&mut x),
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, { raja::sort::sort::<P>(&mut x) })
                }
            }
        });
        RunResult {
            checksum: checksum(&x),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Algorithm_SORTPAIRS`: key/value sort (O(n lg n)).
pub struct SortPairs;

impl KernelBase for SortPairs {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            default_size: 100_000,
            ..info(
                "Algorithm_SORTPAIRS",
                &[Feature::Sort],
                Complexity::NLogN,
                10,
            )
        }
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let passes = (n as f64).max(2.0).log2();
        AnalyticMetrics {
            bytes_read: 12.0 * n as f64 * passes,
            bytes_written: 12.0 * n as f64 * passes,
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = Sort.signature(n);
        s.name = "Algorithm_SORTPAIRS".to_string();
        s.bytes_read = self.metrics(n).bytes_read;
        s.bytes_written = self.metrics(n).bytes_written;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let keys_orig = init_signed(n, 560);
        let vals_orig: Vec<i32> = (0..n as i32).collect();
        let mut keys = keys_orig.clone();
        let mut vals = vals_orig.clone();
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            keys.copy_from_slice(&keys_orig);
            vals.copy_from_slice(&vals_orig);
            match variant {
                VariantId::BaseSeq => {
                    // Direct pair sort: sort an index permutation.
                    let mut perm: Vec<usize> = (0..n).collect();
                    perm.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]));
                    let k2: Vec<f64> = perm.iter().map(|&i| keys[i]).collect();
                    let v2: Vec<i32> = perm.iter().map(|&i| vals[i]).collect();
                    keys.copy_from_slice(&k2);
                    vals.copy_from_slice(&v2);
                }
                VariantId::BasePar | VariantId::RajaPar => {
                    raja::sort::sort_pairs::<ParExec>(&mut keys, &mut vals)
                }
                VariantId::RajaSeq => raja::sort::sort_pairs::<SeqExec>(&mut keys, &mut vals),
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, {
                        raja::sort::sort_pairs::<P>(&mut keys, &mut vals)
                    })
                }
            }
        });
        let vsum: f64 = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| v as f64 * (1.0 + (i % 31) as f64 / 31.0))
            .sum();
        RunResult {
            checksum: checksum(&keys) + vsum,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_variants;

    const N: usize = 4000;

    #[test]
    fn atomic_and_histogram_agree() {
        verify_variants(&Atomic, N, 1e-10);
        verify_variants(&Histogram, N, 1e-10);
    }

    #[test]
    fn memcpy_memset_agree() {
        verify_variants(&Memcpy, N, 1e-12);
        verify_variants(&Memset, N, 1e-12);
    }

    #[test]
    fn reduce_sum_agrees() {
        verify_variants(&ReduceSum, N, 1e-10);
    }

    #[test]
    fn scan_agrees() {
        verify_variants(&Scan, N, 1e-10);
    }

    #[test]
    fn sorts_agree() {
        verify_variants(&Sort, N, 1e-10);
        verify_variants(&SortPairs, N, 1e-10);
    }

    #[test]
    fn atomic_counts_every_iteration() {
        let r = Atomic.execute(VariantId::RajaPar, 10_000, 1, &Tuning::default());
        assert_eq!(r.checksum, 10_000.0);
    }

    #[test]
    fn histogram_conserves_counts() {
        let r = Histogram.execute(VariantId::BaseSimGpu, 10_000, 1, &Tuning::default());
        // Weighted checksum, so just verify it is deterministic vs BaseSeq.
        let r2 = Histogram.execute(VariantId::BaseSeq, 10_000, 1, &Tuning::default());
        assert!(crate::common::close(r.checksum, r2.checksum, 1e-12));
    }

    #[test]
    fn scan_output_is_prefix_sum() {
        let n = 1000;
        let x = init_unit(n, 540);
        let mut expect = vec![0.0; n];
        let mut acc = 0.0;
        for i in 0..n {
            expect[i] = acc;
            acc += x[i];
        }
        let r = Scan.execute(VariantId::RajaSimGpu, n, 1, &Tuning::default());
        assert!(crate::common::close(r.checksum, checksum(&expect), 1e-12));
    }

    #[test]
    fn sort_complexity_annotation() {
        assert_eq!(Sort.info().complexity, Complexity::NLogN);
        assert_eq!(SortPairs.info().complexity, Complexity::NLogN);
    }
}
