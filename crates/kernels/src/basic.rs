//! Basic group: 19 small kernels that challenge compiler optimization
//! (Table I "Basic Patterns").
//!
//! These cover the suite's breadth of RAJA features: plain `forall` maps
//! (DAXPY, INIT3, MULADDSUB), atomics (DAXPY_ATOMIC, PI_ATOMIC), data
//! views (INIT_VIEW1D*, ARRAY_OF_PTRS), scans (INDEXLIST*), reductions
//! (PI_REDUCE, REDUCE3_INT, REDUCE_STRUCT, TRAP_INT, MULTI_REDUCE), nested
//! loops (NESTED_INIT), and the shared-memory tiled matrix multiply
//! (MAT_MAT_SHARED) that serves as the paper's FLOPS yardstick in Table II.

use crate::common::{checksum, cube_edge, init_signed, init_unit, square_edge};
use crate::{
    check_variant, time_reps, AnalyticMetrics, Feature, Group, KernelBase, KernelInfo, PaperModel,
    RunResult, Tuning, VariantId, ALL_VARIANTS,
};
use perfmodel::{Complexity, ExecSignature};
use raja::atomic::{as_atomic_slice, AtomicF64};
use raja::policy::{ParExec, SeqExec};
use raja::views::{Layout, MultiView, View};
use raja::DevicePtr;
use rayon::prelude::*;

/// Register the Basic kernels in Table I order.
pub fn register(v: &mut Vec<Box<dyn KernelBase>>) {
    v.push(Box::new(ArrayOfPtrs));
    v.push(Box::new(Copy8));
    v.push(Box::new(Daxpy));
    v.push(Box::new(DaxpyAtomic));
    v.push(Box::new(IfQuad));
    v.push(Box::new(IndexList));
    v.push(Box::new(IndexList3Loop));
    v.push(Box::new(Init3));
    v.push(Box::new(InitView1d));
    v.push(Box::new(InitView1dOffset));
    v.push(Box::new(MatMatShared));
    v.push(Box::new(MulAddSub));
    v.push(Box::new(MultiReduce));
    v.push(Box::new(NestedInit));
    v.push(Box::new(PiAtomic));
    v.push(Box::new(PiReduce));
    v.push(Box::new(Reduce3Int));
    v.push(Box::new(ReduceStruct));
    v.push(Box::new(TrapInt));
}

const FULL: &[PaperModel] = &[
    PaperModel::Seq,
    PaperModel::OpenMp,
    PaperModel::OmpTarget,
    PaperModel::Cuda,
    PaperModel::Hip,
    PaperModel::Sycl,
];

fn info(
    name: &'static str,
    features: &'static [Feature],
    default_size: usize,
    default_reps: usize,
) -> KernelInfo {
    KernelInfo {
        name,
        group: Group::Basic,
        features,
        complexity: Complexity::N,
        default_size,
        default_reps,
        paper_models: FULL,
        variants: ALL_VARIANTS,
    }
}

fn sig_from(metrics: AnalyticMetrics, name: &'static str, n: usize) -> ExecSignature {
    let mut s = ExecSignature::streaming(name, n);
    s.flops = metrics.flops;
    s.bytes_read = metrics.bytes_read;
    s.bytes_written = metrics.bytes_written;
    s
}

// ---------------------------------------------------------------------------
// ARRAY_OF_PTRS
// ---------------------------------------------------------------------------

/// Number of independent buffers in `ARRAY_OF_PTRS`.
pub const NUM_PTRS: usize = 8;

/// `Basic_ARRAY_OF_PTRS`: sum across an array of separately-allocated
/// buffers — `out[i] = Σ_a ptrs[a][i]` (exercises RAJA `MultiView`).
pub struct ArrayOfPtrs;

impl KernelBase for ArrayOfPtrs {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_ARRAY_OF_PTRS",
            &[Feature::Forall, Feature::View],
            1_000_000,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: (NUM_PTRS as f64) * 8.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: (NUM_PTRS - 1) as f64 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_ARRAY_OF_PTRS", n);
        s.int_ops_per_iter = NUM_PTRS as f64; // pointer chases
        s.flop_efficiency = 0.2;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let mut bufs: Vec<Vec<f64>> = (0..NUM_PTRS)
            .map(|a| init_unit(n, 200 + a as u64))
            .collect();
        let mut out = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let mut it = bufs.iter_mut();
            let mv: MultiView<f64, NUM_PTRS> = MultiView::new(std::array::from_fn(|_| {
                it.next().expect("NUM_PTRS buffers").as_mut_slice()
            }));
            let op = DevicePtr::new(&mut out);
            crate::run_elementwise(variant, n, bs, |i| {
                let mut acc = 0.0;
                for a in 0..NUM_PTRS {
                    // SAFETY: the index is in bounds of the allocation the pointer was built
                    // from; concurrent accesses to it are reads.
                    acc += unsafe { mv.get(a, i) };
                }
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { op.write(i, acc) };
            });
        });
        RunResult {
            checksum: checksum(&out),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// COPY8
// ---------------------------------------------------------------------------

/// `Basic_COPY8`: eight independent array copies in one loop — stresses
/// load/store ports and register pressure.
pub struct Copy8;

impl KernelBase for Copy8 {
    fn info(&self) -> KernelInfo {
        info("Basic_COPY8", &[Feature::Forall], 1_000_000, 20)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 64.0 * n as f64,
            bytes_written: 64.0 * n as f64,
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_COPY8", n);
        s.int_ops_per_iter = 8.0;
        s.flop_efficiency = 0.25;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let xs: [Vec<f64>; 8] = std::array::from_fn(|a| init_unit(n, 210 + a as u64));
        let mut ys: Vec<Vec<f64>> = (0..8).map(|_| vec![0.0; n]).collect();
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let mut it = ys.iter_mut();
            let yv: MultiView<f64, 8> = MultiView::new(std::array::from_fn(|_| {
                it.next().expect("8 buffers").as_mut_slice()
            }));
            crate::run_elementwise(variant, n, bs, |i| {
                for (a, x) in xs.iter().enumerate() {
                    // SAFETY: the index is in bounds of the allocation the pointer was built
                    // from, and each parallel iterate writes a distinct element, so writes
                    // never alias.
                    unsafe { yv.set(a, i, x[i]) };
                }
            });
        });
        let cs = ys.iter().map(|y| checksum(y)).sum();
        RunResult {
            checksum: cs,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// DAXPY / DAXPY_ATOMIC
// ---------------------------------------------------------------------------

/// `Basic_DAXPY`: `y[i] += a * x[i]`.
pub struct Daxpy;

impl KernelBase for Daxpy {
    fn info(&self) -> KernelInfo {
        info("Basic_DAXPY", &[Feature::Forall], 1_000_000, 50)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 2.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_DAXPY", n);
        s.flop_efficiency = 0.3;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let x = init_unit(n, 220);
        let mut y = init_unit(n, 221);
        let a = 0.5;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let yp = DevicePtr::new(&mut y);
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            crate::run_elementwise(variant, n, bs, |i| unsafe {
                yp.write(i, yp.read(i) + a * x[i])
            });
        });
        RunResult {
            checksum: checksum(&y),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Basic_DAXPY_ATOMIC`: DAXPY performed through atomic adds (measures the
/// cost of uncontended atomics vs plain stores).
pub struct DaxpyAtomic;

impl KernelBase for DaxpyAtomic {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_DAXPY_ATOMIC",
            &[Feature::Forall, Feature::Atomic],
            1_000_000,
            50,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        Daxpy.metrics(n)
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_DAXPY_ATOMIC", n);
        s.atomics = n as f64;
        s.atomic_contention = 0.0; // every element owns its own address
        s.flop_efficiency = 0.1;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let x = init_unit(n, 230);
        let mut y = init_unit(n, 231);
        let a = 0.5;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let atoms = as_atomic_slice(&mut y);
            crate::run_elementwise(variant, n, bs, |i| {
                atoms[i].fetch_add(a * x[i]);
            });
        });
        RunResult {
            checksum: checksum(&y),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// IF_QUAD
// ---------------------------------------------------------------------------

/// `Basic_IF_QUAD`: quadratic-root computation guarded by a data-dependent
/// branch on the discriminant.
pub struct IfQuad;

impl KernelBase for IfQuad {
    fn info(&self) -> KernelInfo {
        info("Basic_IF_QUAD", &[Feature::Forall], 1_000_000, 30)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 24.0 * n as f64,
            bytes_written: 16.0 * n as f64,
            // ~11 flops on the taken path (counting sqrt as 1).
            flops: 11.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_IF_QUAD", n);
        s.branches = n as f64;
        s.branch_mispredict_rate = 0.25; // data-dependent discriminant sign
        s.flop_efficiency = 0.15;
        s.gpu_coalescing = 0.7; // warp divergence on the discriminant
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let a: Vec<f64> = init_unit(n, 240).iter().map(|v| v + 0.1).collect();
        let b = init_signed(n, 241);
        let c = init_signed(n, 242);
        let mut x1 = vec![0.0f64; n];
        let mut x2 = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let p1 = DevicePtr::new(&mut x1);
            let p2 = DevicePtr::new(&mut x2);
            crate::run_elementwise(variant, n, bs, |i| {
                let s = b[i] * b[i] - 4.0 * a[i] * c[i];
                if s >= 0.0 {
                    let s = s.sqrt();
                    let den = 0.5 / a[i];
                    // SAFETY: indices stay within the extents the device pointers/views were
                    // built from, and each parallel iterate touches a disjoint set of output
                    // elements, so writes never alias.
                    unsafe {
                        p1.write(i, (-b[i] + s) * den);
                        p2.write(i, (-b[i] - s) * den);
                    }
                } else {
                    // SAFETY: indices stay within the extents the device pointers/views were
                    // built from, and each parallel iterate touches a disjoint set of output
                    // elements, so writes never alias.
                    unsafe {
                        p1.write(i, 0.0);
                        p2.write(i, 0.0);
                    }
                }
            });
        });
        RunResult {
            checksum: checksum(&x1) + checksum(&x2),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// INDEXLIST / INDEXLIST_3LOOP
// ---------------------------------------------------------------------------

fn indexlist_scan_based<P>(x: &[f64], list: &mut [i32]) -> usize
where
    P: raja::scan::ScanPolicy,
{
    let n = x.len();
    let mut pos = vec![0.0f64; n];
    let total =
        raja::scan::exclusive_scan::<P>(0..n, &mut pos, |i| if x[i] < 0.0 { 1.0 } else { 0.0 });
    let lp = DevicePtr::new(list);
    raja::forall::<P>(0..n, |i| {
        if x[i] < 0.0 {
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            unsafe { lp.write(pos[i] as usize, i as i32) };
        }
    });
    total as usize
}

/// `Basic_INDEXLIST`: build the list of indices whose value is negative.
/// The sequential variants use the natural dependent counter; the parallel
/// and device variants use the scan-based construction (as RAJAPerf's GPU
/// variants do).
pub struct IndexList;

impl KernelBase for IndexList {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_INDEXLIST",
            &[Feature::Forall, Feature::Scan],
            1_000_000,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * n as f64,
            bytes_written: 2.0 * n as f64, // ~half the indices written as i32
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_INDEXLIST", n);
        s.branches = n as f64;
        s.branch_mispredict_rate = 0.3;
        s.kernel_launches = 5.0; // scan (3) + flags + gather
        s.flop_efficiency = 0.05;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let x = init_signed(n, 250);
        let mut list = vec![0i32; n];
        let mut count = 0usize;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            count = match variant {
                VariantId::BaseSeq | VariantId::RajaSeq => {
                    // Natural dependent-counter formulation.
                    let mut cnt = 0usize;
                    for (i, &v) in x.iter().enumerate() {
                        if v < 0.0 {
                            list[cnt] = i as i32;
                            cnt += 1;
                        }
                    }
                    cnt
                }
                VariantId::BasePar | VariantId::RajaPar => {
                    indexlist_scan_based::<ParExec>(&x, &mut list)
                }
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, { indexlist_scan_based::<P>(&x, &mut list) })
                }
            };
        });
        let cs: f64 = list[..count].iter().map(|&v| v as f64).sum::<f64>() + count as f64;
        RunResult {
            checksum: cs,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Basic_INDEXLIST_3LOOP`: the same list built with three explicit loops —
/// flag, exclusive scan, gather.
pub struct IndexList3Loop;

impl KernelBase for IndexList3Loop {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_INDEXLIST_3LOOP",
            &[Feature::Forall, Feature::Scan],
            1_000_000,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 24.0 * n as f64, // x + flag/scan traffic
            bytes_written: 10.0 * n as f64,
            flops: n as f64, // scan additions
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_INDEXLIST_3LOOP", n);
        s.branches = n as f64;
        s.branch_mispredict_rate = 0.3;
        s.kernel_launches = 5.0;
        s.flop_efficiency = 0.05;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let x = init_signed(n, 260);
        let mut list = vec![0i32; n];
        let mut count = 0usize;
        let bs = tuning.gpu_block_size;

        fn three_loop<P>(x: &[f64], list: &mut [i32]) -> usize
        where
            P: raja::scan::ScanPolicy,
        {
            let n = x.len();
            // Loop 1: flags.
            let mut flags = vec![0.0f64; n];
            let fp = DevicePtr::new(&mut flags);
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            raja::forall::<P>(0..n, |i| unsafe {
                fp.write(i, if x[i] < 0.0 { 1.0 } else { 0.0 })
            });
            // Loop 2: exclusive scan of the flags.
            let mut pos = vec![0.0f64; n];
            let total = raja::scan::exclusive_scan::<P>(0..n, &mut pos, |i| flags[i]);
            // Loop 3: gather.
            let lp = DevicePtr::new(list);
            raja::forall::<P>(0..n, |i| {
                if flags[i] != 0.0 {
                    // SAFETY: the index is in bounds of the allocation the pointer was built
                    // from, and each parallel iterate writes a distinct element, so writes
                    // never alias.
                    unsafe { lp.write(pos[i] as usize, i as i32) };
                }
            });
            total as usize
        }

        let time = time_reps(reps, || {
            count = match variant {
                VariantId::BaseSeq | VariantId::RajaSeq => three_loop::<SeqExec>(&x, &mut list),
                VariantId::BasePar | VariantId::RajaPar => three_loop::<ParExec>(&x, &mut list),
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, { three_loop::<P>(&x, &mut list) })
                }
            };
        });
        let cs: f64 = list[..count].iter().map(|&v| v as f64).sum::<f64>() + count as f64;
        RunResult {
            checksum: cs,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// INIT3 / MULADDSUB
// ---------------------------------------------------------------------------

/// `Basic_INIT3`: three outputs initialized from two inputs.
pub struct Init3;

impl KernelBase for Init3 {
    fn info(&self) -> KernelInfo {
        info("Basic_INIT3", &[Feature::Forall], 1_000_000, 50)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 24.0 * n as f64,
            flops: 2.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_INIT3", n);
        s.flop_efficiency = 0.3;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let in1 = init_unit(n, 270);
        let in2 = init_unit(n, 271);
        let mut o1 = vec![0.0f64; n];
        let mut o2 = vec![0.0f64; n];
        let mut o3 = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let (p1, p2, p3) = (
                DevicePtr::new(&mut o1),
                DevicePtr::new(&mut o2),
                DevicePtr::new(&mut o3),
            );
            crate::run_elementwise(variant, n, bs, |i| {
                let v = -in1[i] - in2[i];
                // SAFETY: indices stay within the extents the device pointers/views were
                // built from, and each parallel iterate touches a disjoint set of output
                // elements, so writes never alias.
                unsafe {
                    p1.write(i, v);
                    p2.write(i, v);
                    p3.write(i, v);
                }
            });
        });
        RunResult {
            checksum: checksum(&o1) + checksum(&o2) + checksum(&o3),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Basic_MULADDSUB`: `out1 = in1*in2; out2 = in1+in2; out3 = in1-in2`.
pub struct MulAddSub;

impl KernelBase for MulAddSub {
    fn info(&self) -> KernelInfo {
        info("Basic_MULADDSUB", &[Feature::Forall], 1_000_000, 50)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 24.0 * n as f64,
            flops: 3.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_MULADDSUB", n);
        s.flop_efficiency = 0.3;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let in1 = init_unit(n, 280);
        let in2 = init_unit(n, 281);
        let mut o1 = vec![0.0f64; n];
        let mut o2 = vec![0.0f64; n];
        let mut o3 = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let (p1, p2, p3) = (
                DevicePtr::new(&mut o1),
                DevicePtr::new(&mut o2),
                DevicePtr::new(&mut o3),
            );
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            crate::run_elementwise(variant, n, bs, |i| unsafe {
                p1.write(i, in1[i] * in2[i]);
                p2.write(i, in1[i] + in2[i]);
                p3.write(i, in1[i] - in2[i]);
            });
        });
        RunResult {
            checksum: checksum(&o1) + checksum(&o2) + checksum(&o3),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// INIT_VIEW1D / INIT_VIEW1D_OFFSET
// ---------------------------------------------------------------------------

/// `Basic_INIT_VIEW1D`: initialize through a 1-D RAJA view.
pub struct InitView1d;

impl KernelBase for InitView1d {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_INIT_VIEW1D",
            &[Feature::Forall, Feature::View],
            1_000_000,
            50,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 0.0,
            bytes_written: 8.0 * n as f64,
            flops: n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_INIT_VIEW1D", n);
        // Write-only streaming with trivial compute: the paper finds these
        // retiring-bound ("no specific bottleneck") on both CPU systems.
        s.flop_efficiency = 0.35;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        const V: f64 = 0.00000123;
        let mut a = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let view = View::new(&mut a, Layout::new([n]));
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            crate::run_elementwise(variant, n, bs, |i| unsafe {
                view.set([i as isize], (i + 1) as f64 * V);
            });
        });
        RunResult {
            checksum: checksum(&a),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Basic_INIT_VIEW1D_OFFSET`: the same initialization through an
/// offset-layout view indexed `1..=n`.
pub struct InitView1dOffset;

impl KernelBase for InitView1dOffset {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_INIT_VIEW1D_OFFSET",
            &[Feature::Forall, Feature::View],
            1_000_000,
            50,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        InitView1d.metrics(n)
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_INIT_VIEW1D_OFFSET", n);
        s.flop_efficiency = 0.35;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        const V: f64 = 0.00000123;
        let mut a = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let view = View::new(&mut a, Layout::offset([1], [n as isize + 1]));
            // Iteration space 1..=n, exactly as the offset variant upstream.
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            let body = |i: usize| unsafe {
                view.set([i as isize], i as f64 * V);
            };
            match variant {
                VariantId::BaseSeq => (1..=n).for_each(body),
                VariantId::BasePar => (1..=n).into_par_iter().for_each(body),
                VariantId::BaseSimGpu => {
                    gpusim::launch_1d(n, bs, |i| body(i + 1));
                }
                VariantId::RajaSeq => raja::forall::<SeqExec>(1..n + 1, body),
                VariantId::RajaPar => raja::forall::<ParExec>(1..n + 1, body),
                VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, { raja::forall::<P>(1..n + 1, body) })
                }
            }
        });
        RunResult {
            checksum: checksum(&a),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// MAT_MAT_SHARED
// ---------------------------------------------------------------------------

/// Tile edge for the shared-memory matrix multiply.
pub const TILE: usize = 16;

/// `Basic_MAT_MAT_SHARED`: tiled dense matrix multiply with per-block
/// shared-memory staging — the FLOPS-ceiling kernel of Table II. The
/// problem size `n` is the matrix storage; the matrix edge is `√n`.
pub struct MatMatShared;

impl MatMatShared {
    fn edge(n: usize) -> usize {
        square_edge(n).max(TILE)
    }

    /// Host tiled multiply (cache-blocked; the CPU analogue of the
    /// shared-memory algorithm).
    fn host_tiled<P: raja::ExecPolicy>(c: &mut [f64], a: &[f64], b: &[f64], ne: usize) {
        let cp = DevicePtr::new(c);
        let tiles = ne.div_ceil(TILE);
        raja::forall_2d::<P>(0..tiles, 0..tiles, |ti, tj| {
            let (i0, j0) = (ti * TILE, tj * TILE);
            for kt in 0..tiles {
                let k0 = kt * TILE;
                for i in i0..(i0 + TILE).min(ne) {
                    for j in j0..(j0 + TILE).min(ne) {
                        let mut acc = 0.0;
                        for k in k0..(k0 + TILE).min(ne) {
                            acc += a[i * ne + k] * b[k * ne + j];
                        }
                        // SAFETY: the index is in bounds of the allocation the pointer was built
                        // from, and each parallel iterate writes a distinct element, so writes
                        // never alias.
                        unsafe { cp.write(i * ne + j, cp.read(i * ne + j) + acc) };
                    }
                }
            }
        });
    }

    /// Device shared-memory tile algorithm: stage A/B tiles into shared
    /// memory, barrier, multiply-accumulate, barrier — exactly the CUDA
    /// MAT_MAT_SHARED structure.
    fn device_shared(c: &mut [f64], a: &[f64], b: &[f64], ne: usize) {
        let tiles = ne.div_ceil(TILE);
        let cfg = gpusim::LaunchConfig::grid_block(
            gpusim::Dim3::d2(tiles, tiles),
            gpusim::Dim3::d2(TILE, TILE),
        )
        .with_shared_f64(3 * TILE * TILE);
        let cp = DevicePtr::new(c);
        gpusim::launch(&cfg, |block| {
            let (tj, ti) = (block.block_idx.x, block.block_idx.y);
            let (i0, j0) = (ti * TILE, tj * TILE);
            // Accumulator tile lives in shared-memory slot 2.
            block.threads(|t, shared| {
                let idx = t.thread_idx.y * TILE + t.thread_idx.x;
                shared[2 * TILE * TILE + idx] = 0.0;
            });
            for kt in 0..ne.div_ceil(TILE) {
                let k0 = kt * TILE;
                // Phase: stage A and B tiles.
                block.threads(|t, shared| {
                    let (ty, tx) = (t.thread_idx.y, t.thread_idx.x);
                    let (gi, gk) = (i0 + ty, k0 + tx);
                    shared[ty * TILE + tx] = if gi < ne && gk < ne {
                        a[gi * ne + gk]
                    } else {
                        0.0
                    };
                    let (gk2, gj) = (k0 + ty, j0 + tx);
                    shared[TILE * TILE + ty * TILE + tx] = if gk2 < ne && gj < ne {
                        b[gk2 * ne + gj]
                    } else {
                        0.0
                    };
                });
                // Phase: multiply-accumulate from the staged tiles.
                block.threads(|t, shared| {
                    let (ty, tx) = (t.thread_idx.y, t.thread_idx.x);
                    let mut acc = shared[2 * TILE * TILE + ty * TILE + tx];
                    for k in 0..TILE {
                        acc += shared[ty * TILE + k] * shared[TILE * TILE + k * TILE + tx];
                    }
                    shared[2 * TILE * TILE + ty * TILE + tx] = acc;
                });
            }
            // Phase: write back.
            block.threads(|t, shared| {
                let (ty, tx) = (t.thread_idx.y, t.thread_idx.x);
                let (gi, gj) = (i0 + ty, j0 + tx);
                if gi < ne && gj < ne {
                    // SAFETY: the index is in bounds of the allocation the pointer was built
                    // from, and each parallel iterate writes a distinct element, so writes
                    // never alias.
                    unsafe { cp.write(gi * ne + gj, shared[2 * TILE * TILE + ty * TILE + tx]) };
                }
            });
        });
    }
}

impl KernelBase for MatMatShared {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            complexity: Complexity::NSqrtN,
            ..info(
                "Basic_MAT_MAT_SHARED",
                &[Feature::Kernel, Feature::View],
                1 << 16, // 256×256 matrices by default
                4,
            )
        }
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let ne = Self::edge(n) as f64;
        AnalyticMetrics {
            bytes_read: 16.0 * ne * ne,
            bytes_written: 8.0 * ne * ne,
            flops: 2.0 * ne * ne * ne,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_MAT_MAT_SHARED", n);
        s.complexity = Complexity::NSqrtN;
        s.cache_reuse = 0.95; // tiles stay resident
        s.flop_efficiency = 1.0; // this kernel *defines* the achieved ceiling
        s.icache_pressure = 0.1;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, _tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let ne = Self::edge(n);
        let a = init_unit(ne * ne, 290);
        let b = init_unit(ne * ne, 291);
        let mut c = vec![0.0f64; ne * ne];
        let time = time_reps(reps, || {
            c.fill(0.0);
            match variant {
                VariantId::BaseSeq => {
                    for i in 0..ne {
                        for j in 0..ne {
                            let mut acc = 0.0;
                            for k in 0..ne {
                                acc += a[i * ne + k] * b[k * ne + j];
                            }
                            c[i * ne + j] = acc;
                        }
                    }
                }
                VariantId::BasePar => {
                    c.par_chunks_mut(ne).enumerate().for_each(|(i, row)| {
                        for (j, cij) in row.iter_mut().enumerate() {
                            let mut acc = 0.0;
                            for k in 0..ne {
                                acc += a[i * ne + k] * b[k * ne + j];
                            }
                            *cij = acc;
                        }
                    });
                }
                VariantId::BaseSimGpu => Self::device_shared(&mut c, &a, &b, ne),
                VariantId::RajaSeq => Self::host_tiled::<SeqExec>(&mut c, &a, &b, ne),
                VariantId::RajaPar => Self::host_tiled::<ParExec>(&mut c, &a, &b, ne),
                // The RAJA device path uses the same shared-tile algorithm
                // (upstream it goes through RAJA teams, which our layer
                // represents with the device kernel directly).
                VariantId::RajaSimGpu => Self::device_shared(&mut c, &a, &b, ne),
            }
        });
        RunResult {
            checksum: checksum(&c),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// MULTI_REDUCE
// ---------------------------------------------------------------------------

/// Bin count for `MULTI_REDUCE`.
pub const MULTI_REDUCE_BINS: usize = 10;

/// `Basic_MULTI_REDUCE`: sum values into one of several bins selected per
/// element (a small-histogram reduction).
pub struct MultiReduce;

impl KernelBase for MultiReduce {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_MULTI_REDUCE",
            &[Feature::Forall, Feature::Reduction, Feature::Atomic],
            1_000_000,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 12.0 * n as f64, // data f64 + bin i32
            bytes_written: 8.0 * MULTI_REDUCE_BINS as f64,
            flops: n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_MULTI_REDUCE", n);
        s.atomics = n as f64;
        s.atomic_contention = 0.6; // ten bins: heavy collisions
        s.int_ops_per_iter = 2.0;
        s.flop_efficiency = 0.08;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let data = init_unit(n, 300);
        let bins = crate::common::init_ints(n, 301, MULTI_REDUCE_BINS);
        let mut sums = vec![0.0f64; MULTI_REDUCE_BINS];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            sums.fill(0.0);
            match variant {
                VariantId::BaseSeq | VariantId::RajaSeq => {
                    for i in 0..n {
                        sums[bins[i] as usize] += data[i];
                    }
                }
                _ => {
                    let atoms = as_atomic_slice(&mut sums);
                    let body = |i: usize| {
                        atoms[bins[i] as usize].fetch_add(data[i]);
                    };
                    match variant {
                        VariantId::BasePar => (0..n).into_par_iter().for_each(body),
                        VariantId::RajaPar => raja::forall::<ParExec>(0..n, body),
                        VariantId::BaseSimGpu => gpusim::launch_1d(n, bs, body),
                        VariantId::RajaSimGpu => {
                            crate::dispatch_gpu_block!(bs, P, { raja::forall::<P>(0..n, body) })
                        }
                        _ => unreachable!(),
                    }
                }
            }
        });
        RunResult {
            checksum: checksum(&sums),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// NESTED_INIT
// ---------------------------------------------------------------------------

/// `Basic_NESTED_INIT`: `array[i][j][k] = i*j*k` over a cube — the nested
/// `RAJA::kernel` exercise. Another "no specific bottleneck" kernel (§V-B).
pub struct NestedInit;

impl KernelBase for NestedInit {
    fn info(&self) -> KernelInfo {
        info("Basic_NESTED_INIT", &[Feature::Kernel], 1_000_000, 30)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let e = cube_edge(n) as f64;
        AnalyticMetrics {
            bytes_read: 0.0,
            bytes_written: 8.0 * e * e * e,
            flops: 2.0 * e * e * e,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_NESTED_INIT", n);
        s.flop_efficiency = 0.35;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let e = cube_edge(n);
        let mut a = vec![0.0f64; e * e * e];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let ap = DevicePtr::new(&mut a);
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            let body3 = |i: usize, j: usize, k: usize| unsafe {
                ap.write((i * e + j) * e + k, (i * j * k) as f64);
            };
            match variant {
                VariantId::BaseSeq => {
                    for i in 0..e {
                        for j in 0..e {
                            for k in 0..e {
                                body3(i, j, k);
                            }
                        }
                    }
                }
                VariantId::BasePar => (0..e).into_par_iter().for_each(|i| {
                    for j in 0..e {
                        for k in 0..e {
                            body3(i, j, k);
                        }
                    }
                }),
                VariantId::BaseSimGpu => {
                    let cfg = gpusim::LaunchConfig::grid_block(
                        gpusim::Dim3::d3(e.div_ceil(bs), e, e),
                        gpusim::Dim3::d1(bs),
                    );
                    gpusim::launch(&cfg, |block| {
                        let (i, j) = (block.block_idx.z, block.block_idx.y);
                        block.threads(|t, _| {
                            let k = t.global_id_x();
                            if k < e {
                                body3(i, j, k);
                            }
                        });
                    });
                }
                VariantId::RajaSeq => raja::forall_3d::<SeqExec>(0..e, 0..e, 0..e, body3),
                VariantId::RajaPar => raja::forall_3d::<ParExec>(0..e, 0..e, 0..e, body3),
                VariantId::RajaSimGpu => crate::dispatch_gpu_block!(bs, P, {
                    raja::forall_3d::<P>(0..e, 0..e, 0..e, body3)
                }),
            }
        });
        RunResult {
            checksum: checksum(&a),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// PI_ATOMIC / PI_REDUCE / TRAP_INT
// ---------------------------------------------------------------------------

/// `Basic_PI_ATOMIC`: π by midpoint quadrature with every contribution
/// atomically added to a single accumulator — the pathological atomic
/// kernel the paper singles out (§V-B/D: extremely retiring-bound, no GPU
/// speedup).
pub struct PiAtomic;

impl KernelBase for PiAtomic {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_PI_ATOMIC",
            &[Feature::Forall, Feature::Atomic],
            1_000_000,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 0.0,
            bytes_written: 8.0,
            flops: 6.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_PI_ATOMIC", n);
        s.atomics = n as f64; // every iteration hits ONE address
        s.flop_efficiency = 0.05;
        s.gpu_flop_efficiency = Some(0.02);
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let dx = 1.0 / n as f64;
        let mut pi = 0.0f64;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let acc = AtomicF64::new(0.0);
            crate::run_elementwise(variant, n, bs, |i| {
                let x = (i as f64 + 0.5) * dx;
                acc.fetch_add(dx / (1.0 + x * x));
            });
            pi = 4.0 * acc.load();
        });
        RunResult {
            checksum: pi,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Basic_PI_REDUCE`: the same quadrature via a proper reduction.
pub struct PiReduce;

impl KernelBase for PiReduce {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_PI_REDUCE",
            &[Feature::Forall, Feature::Reduction],
            1_000_000,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 0.0,
            bytes_written: 8.0,
            flops: 6.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_PI_REDUCE", n);
        // Compute-only reduction: FLOP-heavy per byte (one of the 17 in
        // §V-D) but the division chain saturates the FP divider — the
        // paper's core-bound cluster.
        s.flop_efficiency = 0.1;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let dx = 1.0 / n as f64;
        let mut pi = 0.0f64;
        let bs = tuning.gpu_block_size;
        let f = |i: usize| {
            let x = (i as f64 + 0.5) * dx;
            dx / (1.0 + x * x)
        };
        let time = time_reps(reps, || {
            let sum = match variant {
                VariantId::BaseSeq => (0..n).map(f).sum::<f64>(),
                VariantId::BasePar => (0..n).into_par_iter().map(f).sum::<f64>(),
                VariantId::RajaSeq => raja::reduce::reduce_sum::<SeqExec, f64>(0..n, f),
                VariantId::RajaPar => raja::reduce::reduce_sum::<ParExec, f64>(0..n, f),
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, {
                        raja::reduce::reduce_sum::<P, f64>(0..n, f)
                    })
                }
            };
            pi = 4.0 * sum;
        });
        RunResult {
            checksum: pi,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Basic_TRAP_INT`: trapezoid-rule integration of a polynomial (another of
/// §V-D's FLOP-heavy kernels).
pub struct TrapInt;

impl KernelBase for TrapInt {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_TRAP_INT",
            &[Feature::Forall, Feature::Reduction],
            1_000_000,
            20,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 0.0,
            bytes_written: 8.0,
            flops: 7.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_TRAP_INT", n);
        // Polynomial + division per point: divider-port bound (core bound).
        s.flop_efficiency = 0.1;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let (x0, x1) = (0.0f64, 1.0f64);
        let h = (x1 - x0) / n as f64;
        let mut total = 0.0f64;
        let bs = tuning.gpu_block_size;
        // Integrand: 3x² + 2x + 1 (exact integral over [0,1] is 3).
        let f = |i: usize| {
            let x = x0 + (i as f64 + 0.5) * h;
            (3.0 * x * x + 2.0 * x + 1.0) * h
        };
        let time = time_reps(reps, || {
            total = match variant {
                VariantId::BaseSeq => (0..n).map(f).sum::<f64>(),
                VariantId::BasePar => (0..n).into_par_iter().map(f).sum::<f64>(),
                VariantId::RajaSeq => raja::reduce::reduce_sum::<SeqExec, f64>(0..n, f),
                VariantId::RajaPar => raja::reduce::reduce_sum::<ParExec, f64>(0..n, f),
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, {
                        raja::reduce::reduce_sum::<P, f64>(0..n, f)
                    })
                }
            };
        });
        RunResult {
            checksum: total,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// REDUCE3_INT / REDUCE_STRUCT
// ---------------------------------------------------------------------------

/// `Basic_REDUCE3_INT`: sum, min and max of an integer array in one pass.
pub struct Reduce3Int;

impl KernelBase for Reduce3Int {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_REDUCE3_INT",
            &[Feature::Forall, Feature::Reduction],
            1_000_000,
            30,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 4.0 * n as f64,
            bytes_written: 12.0,
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_REDUCE3_INT", n);
        s.int_ops_per_iter = 3.0;
        // The paper notes reduction kernels like REDUCE_SUM are not
        // primarily memory-bandwidth limited: dependency chains bound
        // retire instead.
        s.flop_efficiency = 0.2;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let vals: Vec<i64> = crate::common::init_ints(n, 310, 2001)
            .into_iter()
            .map(|v| v as i64 - 1000)
            .collect();
        type T3 = (i64, i64, i64);
        let identity: T3 = (0, i64::MAX, i64::MIN);
        let combine = |a: T3, b: T3| (a.0 + b.0, a.1.min(b.1), a.2.max(b.2));
        let mut out = identity;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let map = |i: usize| (vals[i], vals[i], vals[i]);
            out = match variant {
                VariantId::BaseSeq => {
                    let mut acc = identity;
                    for i in 0..n {
                        acc = combine(acc, map(i));
                    }
                    acc
                }
                VariantId::BasePar => (0..n)
                    .into_par_iter()
                    .fold(|| identity, |acc, i| combine(acc, map(i)))
                    .reduce(|| identity, combine),
                VariantId::RajaSeq => {
                    raja::reduce::forall_reduce::<SeqExec, T3>(0..n, identity, map, combine)
                }
                VariantId::RajaPar => {
                    raja::reduce::forall_reduce::<ParExec, T3>(0..n, identity, map, combine)
                }
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, {
                        raja::reduce::forall_reduce::<P, T3>(0..n, identity, map, combine)
                    })
                }
            };
        });
        RunResult {
            checksum: out.0 as f64 + out.1 as f64 * 2.0 + out.2 as f64 * 3.0,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Basic_REDUCE_STRUCT`: centroid and bounds of a 2-D point set — six
/// simultaneous reductions over a struct-of-arrays layout.
pub struct ReduceStruct;

impl KernelBase for ReduceStruct {
    fn info(&self) -> KernelInfo {
        info(
            "Basic_REDUCE_STRUCT",
            &[Feature::Forall, Feature::Reduction],
            1_000_000,
            30,
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 48.0,
            flops: 2.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = sig_from(self.metrics(n), "Basic_REDUCE_STRUCT", n);
        s.flop_efficiency = 0.2;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let xs = init_unit(n, 320);
        let ys = init_unit(n, 321);
        type T6 = ((f64, f64), (f64, f64), (f64, f64)); // (sums, mins, maxs)
        let identity: T6 = (
            (0.0, 0.0),
            (f64::INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, f64::NEG_INFINITY),
        );
        let combine = |a: T6, b: T6| {
            (
                (a.0 .0 + b.0 .0, a.0 .1 + b.0 .1),
                (a.1 .0.min(b.1 .0), a.1 .1.min(b.1 .1)),
                (a.2 .0.max(b.2 .0), a.2 .1.max(b.2 .1)),
            )
        };
        let mut out = identity;
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let map = |i: usize| ((xs[i], ys[i]), (xs[i], ys[i]), (xs[i], ys[i]));
            out = match variant {
                VariantId::BaseSeq => {
                    let mut acc = identity;
                    for i in 0..n {
                        acc = combine(acc, map(i));
                    }
                    acc
                }
                VariantId::BasePar => (0..n)
                    .into_par_iter()
                    .fold(|| identity, |acc, i| combine(acc, map(i)))
                    .reduce(|| identity, combine),
                VariantId::RajaSeq => {
                    raja::reduce::forall_reduce::<SeqExec, T6>(0..n, identity, map, combine)
                }
                VariantId::RajaPar => {
                    raja::reduce::forall_reduce::<ParExec, T6>(0..n, identity, map, combine)
                }
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, {
                        raja::reduce::forall_reduce::<P, T6>(0..n, identity, map, combine)
                    })
                }
            };
        });
        let (sums, mins, maxs) = out;
        let xc = sums.0 / n as f64;
        let yc = sums.1 / n as f64;
        RunResult {
            checksum: xc + yc + mins.0 + mins.1 + maxs.0 + maxs.1,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_variants;

    const N: usize = 4000;

    #[test]
    fn elementwise_kernels_agree_exactly() {
        verify_variants(&ArrayOfPtrs, N, 1e-12);
        verify_variants(&Copy8, N, 1e-12);
        verify_variants(&Daxpy, N, 1e-12);
        verify_variants(&IfQuad, N, 1e-12);
        verify_variants(&Init3, N, 1e-12);
        verify_variants(&InitView1d, N, 1e-12);
        verify_variants(&InitView1dOffset, N, 1e-12);
        verify_variants(&MulAddSub, N, 1e-12);
        verify_variants(&NestedInit, N, 1e-12);
    }

    #[test]
    fn atomic_kernels_agree_within_reassociation() {
        verify_variants(&DaxpyAtomic, N, 1e-10);
        verify_variants(&MultiReduce, N, 1e-9);
        verify_variants(&PiAtomic, N, 1e-9);
    }

    #[test]
    fn reduction_kernels_agree() {
        verify_variants(&PiReduce, N, 1e-10);
        verify_variants(&Reduce3Int, N, 1e-12); // integer reductions are exact
        verify_variants(&ReduceStruct, N, 1e-10);
        verify_variants(&TrapInt, N, 1e-10);
    }

    #[test]
    fn indexlist_kernels_agree() {
        verify_variants(&IndexList, N, 1e-12);
        verify_variants(&IndexList3Loop, N, 1e-12);
    }

    #[test]
    fn matmul_variants_agree() {
        // 64×64 matrices: checksum differences come only from tiled
        // summation order.
        verify_variants(&MatMatShared, 64 * 64, 1e-9);
    }

    #[test]
    fn pi_kernels_approximate_pi() {
        let t = Tuning::default();
        let r = PiReduce.execute(VariantId::RajaPar, 100_000, 1, &t);
        assert!(
            (r.checksum - std::f64::consts::PI).abs() < 1e-8,
            "{}",
            r.checksum
        );
        let r = PiAtomic.execute(VariantId::RajaSimGpu, 100_000, 1, &t);
        assert!((r.checksum - std::f64::consts::PI).abs() < 1e-8);
    }

    #[test]
    fn trap_int_integrates_polynomial() {
        // ∫₀¹ 3x² + 2x + 1 dx = 3.
        let r = TrapInt.execute(VariantId::BasePar, 200_000, 1, &Tuning::default());
        assert!((r.checksum - 3.0).abs() < 1e-6, "{}", r.checksum);
    }

    #[test]
    fn indexlist_counts_negative_entries() {
        let n = 10_000;
        let x = init_signed(n, 250);
        let expect = x.iter().filter(|&&v| v < 0.0).count();
        let expect_sum: f64 = x
            .iter()
            .enumerate()
            .filter(|(_, &v)| v < 0.0)
            .map(|(i, _)| i as f64)
            .sum();
        let r = IndexList.execute(VariantId::RajaSimGpu, n, 1, &Tuning::default());
        assert_eq!(r.checksum, expect_sum + expect as f64);
    }

    #[test]
    fn matmul_device_matches_naive_reference() {
        let n = TILE * TILE * 4; // edge = 2*TILE
        let r_gpu = MatMatShared.execute(VariantId::BaseSimGpu, n, 1, &Tuning::default());
        let r_ref = MatMatShared.execute(VariantId::BaseSeq, n, 1, &Tuning::default());
        assert!(crate::common::close(r_gpu.checksum, r_ref.checksum, 1e-10));
    }

    #[test]
    fn reduce3_finds_extrema() {
        let n = 50_000;
        let vals: Vec<i64> = crate::common::init_ints(n, 310, 2001)
            .into_iter()
            .map(|v| v as i64 - 1000)
            .collect();
        let sum: i64 = vals.iter().sum();
        let min = *vals.iter().min().unwrap();
        let max = *vals.iter().max().unwrap();
        let r = Reduce3Int.execute(VariantId::RajaPar, n, 1, &Tuning::default());
        assert_eq!(r.checksum, sum as f64 + min as f64 * 2.0 + max as f64 * 3.0);
    }

    #[test]
    fn pi_atomic_signature_is_atomic_dominated() {
        let s = PiAtomic.signature(100_000);
        assert_eq!(s.atomics, 100_000.0);
        assert!(s.bytes_read == 0.0);
    }
}
