//! The RAJA Performance Suite kernels.
//!
//! All 76 kernels of the paper's Table I, organized into the seven groups
//! (§II-A): [`algorithm`], [`apps`], [`basic`], [`comm`], [`lcals`],
//! [`polybench`], and [`stream`]. Each kernel is a self-contained loop-based
//! computation providing:
//!
//! * multiple *variants* — Base (direct) and RAJA (through the portability
//!   layer) implementations for each back-end: sequential, host-parallel
//!   (the OpenMP stand-in), and simulated GPU (the CUDA/HIP stand-in);
//! * exact analytic metrics per repetition (§II-B): bytes read, bytes
//!   written, FLOPs — the inputs to Fig. 1 and the performance models;
//! * an [`ExecSignature`] deriving the microarchitectural descriptors the
//!   TMA/roofline models need from the kernel's structure;
//! * a *checksum* so every variant can be validated against the reference
//!   sequential implementation.
//!
//! The [`registry`] lists every kernel with its Table I annotations
//! (programming models, features, complexity).

// The suite's kernels are deliberately written as C-style indexed loops —
// that is the computational idiom the paper studies — so the iterator-style
// rewrite clippy suggests would misrepresent the kernels.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_memcpy)]

use perfmodel::{Complexity, ExecSignature};
use simsched::time::Instant;
use std::time::Duration;

pub mod algorithm;
pub mod apps;
pub mod basic;
pub mod comm;
pub mod common;
pub mod faulty;
pub mod lcals;
pub mod polybench;
pub mod sanitize;
pub mod stream;

/// The seven kernel groups of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Group {
    /// Parallel-construct and memory-operation kernels.
    Algorithm,
    /// Kernels from LLNL multiphysics applications.
    Apps,
    /// Small kernels that challenge compilers.
    Basic,
    /// MPI halo-exchange communication patterns.
    Comm,
    /// Livermore Compiler Analysis Loop Suite.
    Lcals,
    /// Polyhedral-optimization study kernels.
    Polybench,
    /// McCalpin STREAM kernels.
    Stream,
}

impl Group {
    /// All groups in Table I order.
    pub fn all() -> [Group; 7] {
        [
            Group::Algorithm,
            Group::Apps,
            Group::Basic,
            Group::Comm,
            Group::Lcals,
            Group::Polybench,
            Group::Stream,
        ]
    }

    /// Display name used in kernel names (`Stream_TRIAD`).
    pub fn name(&self) -> &'static str {
        match self {
            Group::Algorithm => "Algorithm",
            Group::Apps => "Apps",
            Group::Basic => "Basic",
            Group::Comm => "Comm",
            Group::Lcals => "Lcals",
            Group::Polybench => "Polybench",
            Group::Stream => "Stream",
        }
    }
}

/// RAJA features a kernel exercises (Table I "Features" columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feature {
    /// `RAJA::forall` loop execution.
    Forall,
    /// Nested (`RAJA::kernel`) execution.
    Kernel,
    /// Sorts.
    Sort,
    /// Scans.
    Scan,
    /// Reductions.
    Reduction,
    /// Atomic operations.
    Atomic,
    /// Data views/layouts.
    View,
    /// Workgroup (fused-loop) constructs.
    Workgroup,
    /// MPI communication.
    Mpi,
}

/// Programming models a kernel is implemented in upstream (Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperModel {
    /// Sequential C++.
    Seq,
    /// OpenMP host threading.
    OpenMp,
    /// OpenMP target offload.
    OmpTarget,
    /// CUDA.
    Cuda,
    /// HIP/ROCm.
    Hip,
    /// SYCL.
    Sycl,
    /// Kokkos (maintained by the Kokkos team; inventory only).
    Kokkos,
}

/// Execution variants in this reproduction, mirroring RAJAPerf's
/// Base/RAJA × back-end matrix. `Par` stands in for OpenMP; `SimGpu` for
/// CUDA/HIP (see the `gpusim` crate for the substitution rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VariantId {
    /// Direct sequential loops (the reference implementation).
    BaseSeq,
    /// Portability layer, sequential policy.
    RajaSeq,
    /// Direct rayon parallel loops.
    BasePar,
    /// Portability layer, parallel policy.
    RajaPar,
    /// Direct simulated-device launches.
    BaseSimGpu,
    /// Portability layer, simulated-device policy.
    RajaSimGpu,
}

impl VariantId {
    /// All variants in canonical order.
    pub fn all() -> [VariantId; 6] {
        [
            VariantId::BaseSeq,
            VariantId::RajaSeq,
            VariantId::BasePar,
            VariantId::RajaPar,
            VariantId::BaseSimGpu,
            VariantId::RajaSimGpu,
        ]
    }

    /// RAJAPerf-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            VariantId::BaseSeq => "Base_Seq",
            VariantId::RajaSeq => "RAJA_Seq",
            VariantId::BasePar => "Base_Par",
            VariantId::RajaPar => "RAJA_Par",
            VariantId::BaseSimGpu => "Base_SimGpu",
            VariantId::RajaSimGpu => "RAJA_SimGpu",
        }
    }

    /// Parse a display name.
    pub fn parse(s: &str) -> Option<VariantId> {
        VariantId::all().into_iter().find(|v| v.name() == s)
    }

    /// Whether this is a RAJA (portability-layer) variant.
    pub fn is_raja(&self) -> bool {
        matches!(
            self,
            VariantId::RajaSeq | VariantId::RajaPar | VariantId::RajaSimGpu
        )
    }
}

/// Runtime tuning parameters (RAJAPerf's GPU block-size tunings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuning {
    /// Thread-block size for simulated-device variants.
    pub gpu_block_size: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            gpu_block_size: gpusim::DEFAULT_BLOCK_SIZE,
        }
    }
}

/// Analytic metrics per repetition (§II-B): the platform-independent
/// counters RAJAPerf computes for every kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnalyticMetrics {
    /// Bytes read from memory per rep.
    pub bytes_read: f64,
    /// Bytes written to memory per rep.
    pub bytes_written: f64,
    /// Floating-point operations per rep.
    pub flops: f64,
}

impl AnalyticMetrics {
    /// FLOPs per byte of memory touched (the derived metric of §II-B).
    pub fn flops_per_byte(&self) -> f64 {
        let total = self.bytes_read + self.bytes_written;
        if total > 0.0 {
            self.flops / total
        } else {
            0.0
        }
    }
}

/// Static description of a kernel (its Table I row).
#[derive(Debug, Clone)]
pub struct KernelInfo {
    /// Full name, `Group_KERNEL`.
    pub name: &'static str,
    /// Group membership.
    pub group: Group,
    /// RAJA features exercised.
    pub features: &'static [Feature],
    /// Work complexity annotation.
    pub complexity: Complexity,
    /// Default problem size (stored elements).
    pub default_size: usize,
    /// Default repetition count at the default size.
    pub default_reps: usize,
    /// Programming models implemented upstream (Table I columns).
    pub paper_models: &'static [PaperModel],
    /// Variants available in this reproduction.
    pub variants: &'static [VariantId],
}

/// Result of executing a kernel variant.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Order-tolerant checksum of the kernel's outputs; equal (within FP
    /// reduction tolerance) across variants.
    pub checksum: f64,
    /// Wall time for all repetitions.
    pub time: Duration,
    /// Repetitions executed.
    pub reps: usize,
    /// Analytic metrics for one repetition at this size.
    pub metrics: AnalyticMetrics,
}

impl RunResult {
    /// Mean wall time per repetition, seconds.
    pub fn time_per_rep(&self) -> f64 {
        self.time.as_secs_f64() / self.reps.max(1) as f64
    }
}

/// The interface every suite kernel implements.
pub trait KernelBase: Send + Sync {
    /// Static description (Table I row).
    fn info(&self) -> KernelInfo;

    /// Analytic metrics per repetition at problem size `n`.
    fn metrics(&self, n: usize) -> AnalyticMetrics;

    /// The execution signature at problem size `n` for the performance
    /// models. The default derives byte/FLOP counts from [`Self::metrics`]
    /// and leaves the structural descriptors at streaming defaults;
    /// kernels override the descriptors their structure dictates.
    fn signature(&self, n: usize) -> ExecSignature {
        let m = self.metrics(n);
        let info = self.info();
        let mut s = ExecSignature::streaming(info.name, n);
        s.flops = m.flops;
        s.bytes_read = m.bytes_read;
        s.bytes_written = m.bytes_written;
        s.complexity = info.complexity;
        s
    }

    /// Execute `reps` repetitions of `variant` at problem size `n`,
    /// returning timing, metrics, and the output checksum.
    ///
    /// # Panics
    /// Panics if `variant` is not in `info().variants`.
    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult;
}

/// Time a closure over `reps` repetitions (the standard kernel timing
/// harness; setup happens before, checksum after).
///
/// Each repetition routes the loop counter and the body's result through
/// [`std::hint::black_box`], so the optimizer can neither collapse the rep
/// loop nor discard a result it could otherwise prove unused — keeping
/// release-mode timings honest. The body itself stays transparent (only its
/// *result* is pinned): making the closure opaque instead would strip
/// aliasing facts from its captures and deoptimize the very loops being
/// measured.
pub fn time_reps<T>(reps: usize, mut body: impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    for i in 0..reps {
        std::hint::black_box(i);
        std::hint::black_box(body());
    }
    start.elapsed()
}

/// Assert that `variant` is supported, with a clear message.
pub fn check_variant(info: &KernelInfo, variant: VariantId) {
    assert!(
        info.variants.contains(&variant),
        "kernel {} does not implement variant {}",
        info.name,
        variant.name()
    );
}

/// Dispatch a block over the simulated-GPU block-size tunings RAJAPerf
/// sweeps. `$P` is bound to the concrete `SimGpuExec<B>` policy type.
#[macro_export]
macro_rules! dispatch_gpu_block {
    ($bs:expr, $P:ident, $body:block) => {{
        match $bs {
            64 => {
                type $P = raja::SimGpuExec<64>;
                $body
            }
            128 => {
                type $P = raja::SimGpuExec<128>;
                $body
            }
            512 => {
                type $P = raja::SimGpuExec<512>;
                $body
            }
            1024 => {
                type $P = raja::SimGpuExec<1024>;
                $body
            }
            _ => {
                type $P = raja::SimGpuExec<256>;
                $body
            }
        }
    }};
}

/// Dispatch an elementwise `body(i)` over every variant back-end. Shared by
/// the map-style kernels, whose only difference is the loop body; the Base
/// arms are direct (plain loop / rayon / device launch) and the RAJA arms go
/// through the portability layer.
pub fn run_elementwise(variant: VariantId, n: usize, bs: usize, body: impl Fn(usize) + Sync) {
    use raja::policy::{ParExec, SeqExec};
    use rayon::prelude::*;
    match variant {
        VariantId::BaseSeq => (0..n).for_each(&body),
        VariantId::BasePar => (0..n).into_par_iter().for_each(&body),
        VariantId::BaseSimGpu => gpusim::launch_1d(n, bs, &body),
        VariantId::RajaSeq => raja::forall::<SeqExec>(0..n, &body),
        VariantId::RajaPar => raja::forall::<ParExec>(0..n, &body),
        VariantId::RajaSimGpu => {
            crate::dispatch_gpu_block!(bs, P, { raja::forall::<P>(0..n, &body) })
        }
    }
}

/// Variant sets used by kernel `info()` declarations.
pub const ALL_VARIANTS: &[VariantId] = &[
    VariantId::BaseSeq,
    VariantId::RajaSeq,
    VariantId::BasePar,
    VariantId::RajaPar,
    VariantId::BaseSimGpu,
    VariantId::RajaSimGpu,
];

/// Host-only variants (kernels without device implementations in Table I).
pub const HOST_VARIANTS: &[VariantId] = &[
    VariantId::BaseSeq,
    VariantId::RajaSeq,
    VariantId::BasePar,
    VariantId::RajaPar,
];

/// Sequential-only variants (kernels whose upstream coverage is Seq-only).
pub const SEQ_VARIANTS: &[VariantId] = &[VariantId::BaseSeq, VariantId::RajaSeq];

/// Run every supported variant of `k` at size `n` and assert the checksums
/// agree with the Base_Seq reference within `rel` relative tolerance.
/// Returns the per-variant checksums. Used by unit and integration tests.
pub fn verify_variants(k: &dyn KernelBase, n: usize, rel: f64) -> Vec<(VariantId, f64)> {
    let info = k.info();
    let tuning = Tuning::default();
    let reference = k.execute(VariantId::BaseSeq, n, 1, &tuning).checksum;
    let mut out = Vec::new();
    for &v in info.variants {
        let r = k.execute(v, n, 1, &tuning);
        let denom = reference.abs().max(f64::MIN_POSITIVE);
        let rel_err = (r.checksum - reference).abs() / denom;
        assert!(
            common::close(r.checksum, reference, rel),
            "{}: variant {} checksum {} != reference {} (relative error {:.3e} > tolerance {:.1e})",
            info.name,
            v.name(),
            r.checksum,
            reference,
            rel_err,
            rel
        );
        out.push((v, r.checksum));
    }
    out
}

/// The full suite registry: every kernel of Table I, grouped and ordered as
/// in the paper.
///
/// Built once and served from a static: kernels are stateless descriptor
/// objects, and selection/lookup paths (`find`, per-sweep-cell kernel
/// filters) used to rebuild and re-box all 76 entries on every call.
pub fn registry() -> &'static [Box<dyn KernelBase>] {
    static REGISTRY: std::sync::OnceLock<Vec<Box<dyn KernelBase>>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut v: Vec<Box<dyn KernelBase>> = Vec::with_capacity(76);
        algorithm::register(&mut v);
        apps::register(&mut v);
        basic::register(&mut v);
        comm::register(&mut v);
        lcals::register(&mut v);
        polybench::register(&mut v);
        stream::register(&mut v);
        v
    })
}

/// Find a kernel by its full name.
pub fn find(name: &str) -> Option<&'static dyn KernelBase> {
    registry()
        .iter()
        .find(|k| k.info().name == name)
        .map(|k| k.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_76_kernels() {
        let r = registry();
        assert_eq!(r.len(), 76, "Table I lists 76 kernels");
        // Group counts from Table I.
        let count = |g: Group| r.iter().filter(|k| k.info().group == g).count();
        assert_eq!(count(Group::Algorithm), 8);
        assert_eq!(count(Group::Apps), 15);
        assert_eq!(count(Group::Basic), 19);
        assert_eq!(count(Group::Comm), 5);
        assert_eq!(count(Group::Lcals), 11);
        assert_eq!(count(Group::Polybench), 13);
        assert_eq!(count(Group::Stream), 5);
    }

    #[test]
    fn kernel_names_are_unique_and_prefixed_by_group() {
        let r = registry();
        let mut names = std::collections::HashSet::new();
        for k in r {
            let info = k.info();
            assert!(names.insert(info.name), "duplicate kernel {}", info.name);
            assert!(
                info.name.starts_with(info.group.name()),
                "{} not prefixed by {}",
                info.name,
                info.group.name()
            );
        }
    }

    #[test]
    fn every_kernel_has_base_and_raja_seq() {
        for k in registry() {
            let info = k.info();
            assert!(info.variants.contains(&VariantId::BaseSeq), "{}", info.name);
            assert!(info.variants.contains(&VariantId::RajaSeq), "{}", info.name);
        }
    }

    #[test]
    fn signatures_carry_metrics() {
        for k in registry() {
            let info = k.info();
            let n = info.default_size.min(10_000);
            let m = k.metrics(n);
            let s = k.signature(n);
            assert_eq!(s.flops, m.flops, "{}", info.name);
            assert_eq!(s.bytes_read, m.bytes_read, "{}", info.name);
            assert_eq!(s.bytes_written, m.bytes_written, "{}", info.name);
            assert!(s.problem_size == n);
        }
    }

    #[test]
    fn time_reps_is_not_dead_code_eliminated() {
        // A no-op body must still cost one opaque call per rep; if the
        // optimizer deleted the loop the measured time would be ~0
        // regardless of rep count. 10M reps at a conservative floor of
        // 0.1 ns per call is 1 ms.
        let reps = 10_000_000;
        let d = time_reps(reps, || {});
        assert!(
            d >= Duration::from_millis(1),
            "no-op body measured {d:?} over {reps} reps: time_reps was optimized away"
        );
    }

    #[test]
    fn variant_names_roundtrip() {
        for v in VariantId::all() {
            assert_eq!(VariantId::parse(v.name()), Some(v));
        }
        assert_eq!(VariantId::parse("nope"), None);
    }

    #[test]
    fn find_locates_kernels() {
        assert!(find("Stream_TRIAD").is_some());
        assert!(find("No_SUCH").is_none());
    }

    /// Test double whose RAJA_Seq variant drifts from the reference by a
    /// controlled factor — exercises the verify_variants failure path.
    struct DriftingKernel {
        drift: f64,
    }

    impl KernelBase for DriftingKernel {
        fn info(&self) -> KernelInfo {
            KernelInfo {
                name: "Test_DRIFT",
                group: Group::Basic,
                features: &[Feature::Forall],
                complexity: Complexity::N,
                default_size: 64,
                default_reps: 1,
                paper_models: &[PaperModel::Seq],
                variants: SEQ_VARIANTS,
            }
        }

        fn metrics(&self, n: usize) -> AnalyticMetrics {
            AnalyticMetrics {
                bytes_read: 8.0 * n as f64,
                bytes_written: 8.0 * n as f64,
                flops: n as f64,
            }
        }

        fn execute(&self, variant: VariantId, n: usize, reps: usize, _t: &Tuning) -> RunResult {
            check_variant(&self.info(), variant);
            let scale = match variant {
                VariantId::RajaSeq => self.drift,
                _ => 1.0,
            };
            RunResult {
                checksum: n as f64 * scale,
                time: Duration::from_micros(1),
                reps,
                metrics: self.metrics(n),
            }
        }
    }

    #[test]
    fn verify_variants_reports_nonzero_relative_error_on_mismatch() {
        let broken = DriftingKernel { drift: 1.1 }; // 10% off the reference
        let err = std::panic::catch_unwind(|| verify_variants(&broken, 64, 1e-8))
            .expect_err("10% drift must fail an 1e-8 tolerance");
        let msg = err
            .downcast_ref::<String>()
            .expect("assert! panics with a String");
        assert!(msg.contains("Test_DRIFT"), "{msg}");
        assert!(msg.contains("variant RAJA_Seq"), "{msg}");
        assert!(
            msg.contains("relative error 1.000e-1"),
            "the 10% drift is quantified: {msg}"
        );
        assert!(msg.contains("tolerance 1.0e-8"), "{msg}");
    }

    #[test]
    fn verify_variants_accepts_drift_within_tolerance() {
        let nearly = DriftingKernel { drift: 1.0 + 1e-12 };
        let checks = verify_variants(&nearly, 64, 1e-8);
        assert_eq!(checks.len(), SEQ_VARIANTS.len());
    }

    #[test]
    #[should_panic(expected = "kernel Test_DRIFT does not implement variant Base_SimGpu")]
    fn check_variant_surfaces_unsupported_variants() {
        let k = DriftingKernel { drift: 1.0 };
        k.execute(VariantId::BaseSimGpu, 64, 1, &Tuning::default());
    }
}
