//! `simsan` sweep API: run kernels under the simulated-device sanitizer.
//!
//! The real RAJAPerf suite is validated on GPUs with `compute-sanitizer`
//! (memcheck / racecheck / initcheck); this module is the equivalent sweep
//! for the simulated device. [`sanitize_kernel`] runs one kernel variant
//! inside a [`gpusim::sanitizer::SanitizerScope`] and returns the findings
//! together with sanitized and unsanitized timings (the overhead is worth
//! recording as run metadata, as Caliper does for instrumentation cost).
//! [`sanitize_all`] sweeps every simulated-device variant of every registry
//! kernel — the expectation, enforced by tests, is **zero findings**: the
//! suite's kernels are race-free, in-bounds, and correctly barriered.
//!
//! The [`fixtures`] module provides intentionally-broken kernels as
//! positive controls. They implement [`KernelBase`] like real kernels but
//! are *not* in the registry, so the suite never runs them by accident.

use crate::{AnalyticMetrics, KernelBase, KernelInfo, RunResult, Tuning, VariantId};
use gpusim::sanitizer::{Finding, SanitizerScope};
use simsched::time::Instant;
use std::time::Duration;

/// Problem size [`sanitize_all`] uses when the caller does not specify one.
/// Shadow tracking costs a hash-map operation per instrumented access, so
/// the sweep runs at a reduced size — hazard classes are size-independent
/// (a race between two threads of one block shows up at any size that
/// fills a block).
pub const DEFAULT_SANITIZE_SIZE: usize = 4096;

/// The result of sanitizing one kernel variant.
#[derive(Debug, Clone)]
pub struct SanitizeOutcome {
    /// Kernel name (`Group_KERNEL`).
    pub kernel: String,
    /// Variant that was executed.
    pub variant: VariantId,
    /// Problem size used.
    pub problem_size: usize,
    /// The sanitizer's findings for this run.
    pub findings: Vec<Finding>,
    /// Total hazard occurrences (including deduplicated repeats).
    pub occurrences: u64,
    /// Device launches observed.
    pub launches: u64,
    /// Wall time of the sanitized run.
    pub sanitized_time: Duration,
    /// Wall time of an identical unsanitized run (overhead baseline).
    pub baseline_time: Duration,
}

impl SanitizeOutcome {
    /// True when the sanitizer saw no hazards.
    pub fn is_clean(&self) -> bool {
        self.occurrences == 0
    }

    /// Sanitized / baseline slowdown factor (≥ 1.0 in practice; 1.0 when
    /// the baseline is too fast to resolve).
    pub fn overhead_ratio(&self) -> f64 {
        let base = self.baseline_time.as_secs_f64();
        if base > 0.0 {
            (self.sanitized_time.as_secs_f64() / base).max(1.0)
        } else {
            1.0
        }
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "{:<28} {:<12} {:>4} site(s) {:>6} occurrence(s)  overhead {:>5.1}x",
            self.kernel,
            self.variant.name(),
            self.findings.len(),
            self.occurrences,
            self.overhead_ratio(),
        )
    }
}

/// Run `variant` of `k` at size `n` under the sanitizer. Returns `None`
/// when the kernel does not implement the variant.
pub fn sanitize_kernel(
    k: &dyn KernelBase,
    variant: VariantId,
    n: usize,
    tuning: &Tuning,
) -> Option<SanitizeOutcome> {
    let info = k.info();
    if !info.variants.contains(&variant) {
        return None;
    }
    // Unsanitized baseline first, so the overhead ratio compares like runs.
    let start = Instant::now();
    k.execute(variant, n, 1, tuning);
    let baseline_time = start.elapsed();

    let scope = SanitizerScope::begin(format!("{}/{}", info.name, variant.name()));
    let start = Instant::now();
    k.execute(variant, n, 1, tuning);
    let sanitized_time = start.elapsed();
    let report = scope.finish();

    Some(SanitizeOutcome {
        kernel: info.name.to_string(),
        variant,
        problem_size: n,
        findings: report.findings,
        occurrences: report.occurrences,
        launches: report.launches,
        sanitized_time,
        baseline_time,
    })
}

/// The simulated-device variants the sweep covers.
pub const SANITIZED_VARIANTS: &[VariantId] = &[VariantId::BaseSimGpu, VariantId::RajaSimGpu];

/// Sweep every simulated-device variant of every registry kernel at size
/// `n` (or [`DEFAULT_SANITIZE_SIZE`]). Kernels without a simulated-device
/// variant are skipped.
pub fn sanitize_all(n: Option<usize>, tuning: &Tuning) -> Vec<SanitizeOutcome> {
    let n = n.unwrap_or(DEFAULT_SANITIZE_SIZE);
    let mut out = Vec::new();
    for k in crate::registry() {
        for &v in SANITIZED_VARIANTS {
            if let Some(outcome) = sanitize_kernel(k.as_ref(), v, n, tuning) {
                out.push(outcome);
            }
        }
    }
    out
}

/// Intentionally-hazardous kernels used as sanitizer positive controls.
///
/// Both are deliberately excluded from [`crate::registry`]: they exist so
/// tests (and `--sanitize` users) can confirm the sanitizer actually fires,
/// the same role `cuda-memcheck`'s own test kernels play.
pub mod fixtures {
    use super::*;
    use crate::common;
    use crate::{check_variant, time_reps, Feature, Group, PaperModel};
    use perfmodel::Complexity;

    const FIXTURE_VARIANTS: &[VariantId] = &[
        VariantId::BaseSeq,
        VariantId::BaseSimGpu,
        VariantId::RajaSimGpu,
    ];

    fn fixture_info(name: &'static str, size: usize) -> KernelInfo {
        KernelInfo {
            name,
            group: Group::Basic,
            features: &[Feature::Forall],
            complexity: Complexity::N,
            default_size: size,
            default_reps: 1,
            paper_models: &[PaperModel::Cuda],
            variants: FIXTURE_VARIANTS,
        }
    }

    /// `Fixture_RACY_SUM`: every thread accumulates into `out[0]` with a
    /// plain read-modify-write instead of an atomic — the canonical global
    /// data race (`PI_ATOMIC` without the atomic). The sequential simulator
    /// computes the "right" answer anyway, which is exactly why the
    /// sanitizer must flag it.
    pub struct RacySum;

    impl KernelBase for RacySum {
        fn info(&self) -> KernelInfo {
            fixture_info("Fixture_RACY_SUM", 1 << 12)
        }

        fn metrics(&self, n: usize) -> AnalyticMetrics {
            AnalyticMetrics {
                bytes_read: 16.0 * n as f64,
                bytes_written: 8.0 * n as f64,
                flops: n as f64,
            }
        }

        fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
            check_variant(&self.info(), variant);
            let x = common::init_unit(n, 7);
            let mut out = vec![0.0f64; 1];
            let time = time_reps(reps, || {
                out[0] = 0.0;
                let p = gpusim::DevicePtr::new(&mut out);
                let bs = tuning.gpu_block_size;
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                let body = |i: usize| unsafe { p.write(0, p.read(0) + x[i]) };
                match variant {
                    VariantId::BaseSeq => (0..n).for_each(body),
                    VariantId::BaseSimGpu => gpusim::launch_1d(n, bs, body),
                    VariantId::RajaSimGpu => crate::dispatch_gpu_block!(bs, P, {
                        raja::forall::<P>(0..n, body)
                    }),
                    _ => unreachable!("fixture variants are checked above"),
                }
            });
            RunResult {
                checksum: common::checksum(&out),
                time,
                reps,
                metrics: self.metrics(n),
            }
        }
    }

    /// `Fixture_MISSING_BARRIER`: the block leader stages a value in shared
    /// memory and every other thread reads it *in the same phase* — a
    /// missing `__syncthreads()` between producer and consumers.
    pub struct MissingBarrier;

    impl KernelBase for MissingBarrier {
        fn info(&self) -> KernelInfo {
            fixture_info("Fixture_MISSING_BARRIER", 1 << 12)
        }

        fn metrics(&self, n: usize) -> AnalyticMetrics {
            AnalyticMetrics {
                bytes_read: 8.0 * n as f64,
                bytes_written: 8.0 * n as f64,
                flops: n as f64,
            }
        }

        fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
            check_variant(&self.info(), variant);
            let x = common::init_unit(n, 11);
            let mut out = vec![0.0f64; n];
            let time = time_reps(reps, || match variant {
                VariantId::BaseSeq => {
                    let scale = x[0];
                    for i in 0..n {
                        out[i] = scale * x[i];
                    }
                }
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    let p = gpusim::DevicePtr::new(&mut out);
                    let cfg = gpusim::LaunchConfig::linear(n, tuning.gpu_block_size)
                        .with_shared_f64(1);
                    gpusim::launch(&cfg, |block| {
                        // One phase: leader writes, everyone reads. The fix
                        // would be two `block.threads` calls (a barrier).
                        block.threads(|t, shared| {
                            if t.flat_thread() == 0 {
                                shared[0] = x[0];
                            }
                            let i = t.global_id_x();
                            if i < n {
                                // SAFETY: the index is in bounds of the allocation the pointer was built
                                // from, and each parallel iterate writes a distinct element, so writes
                                // never alias.
                                unsafe { p.write(i, shared[0] * x[i]) };
                            }
                        });
                    });
                }
                _ => unreachable!("fixture variants are checked above"),
            });
            RunResult {
                checksum: common::checksum(&out),
                time,
                reps,
                metrics: self.metrics(n),
            }
        }
    }

    /// Both fixtures, boxed like registry kernels.
    pub fn all() -> Vec<Box<dyn KernelBase>> {
        vec![Box::new(RacySum), Box::new(MissingBarrier)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::sanitizer::HazardKind;

    #[test]
    fn racy_fixture_is_flagged_with_coordinates() {
        let outcome = sanitize_kernel(
            &fixtures::RacySum,
            VariantId::RajaSimGpu,
            512,
            &Tuning::default(),
        )
        .expect("fixture supports RAJA_SimGpu");
        assert!(!outcome.is_clean(), "positive control must fire");
        let races: Vec<&Finding> = outcome
            .findings
            .iter()
            .filter(|f| {
                matches!(
                    f.kind,
                    HazardKind::WriteWriteRace | HazardKind::ReadWriteRace
                )
            })
            .collect();
        assert!(!races.is_empty(), "races detected: {:#?}", outcome.findings);
        let f = races[0];
        assert_eq!(f.label, "Fixture_RACY_SUM/RAJA_SimGpu");
        assert_eq!(f.index, 0, "the contended cell");
        assert_eq!(f.region, "raja::forall<SimGpu>");
        assert!(f.other_thread.is_some(), "both racing threads reported");
        // 512 elements in 256-thread blocks: the hazard is intra-block, so
        // it fires in phase 0 of each block.
        assert_eq!(f.phase, 0);
    }

    #[test]
    fn missing_barrier_fixture_is_flagged_in_shared_memory() {
        let outcome = sanitize_kernel(
            &fixtures::MissingBarrier,
            VariantId::BaseSimGpu,
            512,
            &Tuning::default(),
        )
        .expect("fixture supports Base_SimGpu");
        assert!(!outcome.is_clean());
        let hits: Vec<&Finding> = outcome
            .findings
            .iter()
            .filter(|f| f.kind == HazardKind::MissingBarrier)
            .collect();
        assert!(!hits.is_empty(), "{:#?}", outcome.findings);
        let f = hits[0];
        assert_eq!(f.index, 0, "shared word 0");
        assert_eq!(
            f.other_thread,
            Some(gpusim::Dim3::d3(0, 0, 0)),
            "the leader wrote it"
        );
        assert!(f.thread.x > 0, "a non-leader thread read it");
    }

    #[test]
    fn fixtures_validate_like_real_kernels() {
        // The fixtures are *hazardous*, not *wrong*: on the sequential
        // simulator their checksums still match the reference, which is
        // precisely why a sanitizer (and not checksum validation) is needed
        // to catch them.
        for k in fixtures::all() {
            crate::verify_variants(k.as_ref(), 512, 1e-10);
        }
    }

    #[test]
    fn unsupported_variant_returns_none() {
        let r = sanitize_kernel(
            &fixtures::RacySum,
            VariantId::RajaPar,
            128,
            &Tuning::default(),
        );
        assert!(r.is_none());
    }

    #[test]
    fn representative_real_kernels_are_clean() {
        // The shared-memory tile kernel (barriered), a reduction (per-block
        // partials), and an atomic kernel (through raja::atomic) — the
        // three patterns most likely to false-positive if the race windows
        // were wrong.
        for name in ["Basic_MAT_MAT_SHARED", "Stream_DOT", "Basic_PI_ATOMIC"] {
            let k = crate::find(name).expect(name);
            for &v in SANITIZED_VARIANTS {
                if let Some(o) = sanitize_kernel(k, v, 2048, &Tuning::default()) {
                    assert!(
                        o.is_clean(),
                        "{name}/{}: {:#?}",
                        v.name(),
                        o.findings
                    );
                    assert!(o.launches > 0, "{name} launched nothing");
                }
            }
        }
    }

    #[test]
    fn full_registry_sweep_is_clean() {
        // The acceptance bar: zero findings across every simulated-device
        // variant of all 76 kernels.
        let outcomes = sanitize_all(Some(1024), &Tuning::default());
        assert!(!outcomes.is_empty());
        let dirty: Vec<String> = outcomes
            .iter()
            .filter(|o| !o.is_clean())
            .map(|o| o.summary())
            .collect();
        assert!(dirty.is_empty(), "hazards in real kernels:\n{}", dirty.join("\n"));
    }
}
