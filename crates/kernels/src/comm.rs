//! Comm group: halo-exchange communication kernels from distributed-memory
//! applications (Table I "Comm").
//!
//! All five kernels operate on the same 3-D ghosted grid with 26-direction
//! pack/unpack index lists (built by `simcomm::halo`), with `NUM_VARS`
//! field variables. They differ in which phases run and whether the
//! per-direction loops are fused:
//!
//! * `HALO_PACKING` / `HALO_PACKING_FUSED` — pack + unpack only (no
//!   messages); the FUSED variant runs one combined loop instead of one
//!   loop per direction, which is exactly the kernel-launch-overhead
//!   experiment the paper discusses for GPUs (§V-C).
//! * `HALO_SENDRECV` — message exchange only (buffers pre-packed).
//! * `HALO_EXCHANGE` / `HALO_EXCHANGE_FUSED` — the full pack → exchange →
//!   unpack pipeline over the simulated MPI ranks.
//!
//! The paper excludes the Comm kernels from the cross-architecture
//! clustering (their O(N^{2/3}) surface work decomposes incomparably) and
//! observes they are dominated by MPI time everywhere — which the
//! performance-model signatures (`mpi_messages`/`mpi_bytes`/
//! `kernel_launches`) reproduce.

use crate::common::{checksum, init_unit};
use crate::{
    check_variant, run_elementwise, time_reps, AnalyticMetrics, Feature, Group, KernelBase,
    KernelInfo, PaperModel, RunResult, Tuning, VariantId, ALL_VARIANTS,
};
use perfmodel::{Complexity, ExecSignature};
use raja::DevicePtr;
use simcomm::halo::{HaloGeometry, RankDecomp};

/// Register the Comm kernels in Table I order.
pub fn register(v: &mut Vec<Box<dyn KernelBase>>) {
    v.push(Box::new(HaloExchange));
    v.push(Box::new(HaloExchangeFused));
    v.push(Box::new(HaloPacking));
    v.push(Box::new(HaloPackingFused));
    v.push(Box::new(HaloSendrecv));
}

/// Field variables exchanged per halo operation.
pub const NUM_VARS: usize = 3;

/// Simulated ranks for the exchange kernels.
const RANKS: usize = 2;

const MODELS: &[PaperModel] = &[
    PaperModel::Seq,
    PaperModel::OpenMp,
    PaperModel::OmpTarget,
    PaperModel::Cuda,
    PaperModel::Hip,
];

fn info(name: &'static str, features: &'static [Feature]) -> KernelInfo {
    KernelInfo {
        name,
        group: Group::Comm,
        features,
        complexity: Complexity::NTwoThirds,
        default_size: 300_000,
        default_reps: 10,
        paper_models: MODELS,
        variants: ALL_VARIANTS,
    }
}

/// Owned-box edge for a per-rank problem of `n` stored elements over
/// `NUM_VARS` variables.
fn grid_edge(n: usize) -> usize {
    ((n / NUM_VARS) as f64).cbrt().floor().max(4.0) as usize
}

/// Build the halo geometry for problem size `n`.
fn geometry(n: usize) -> HaloGeometry {
    let e = grid_edge(n);
    HaloGeometry::new([e, e, e], 1)
}

/// Initialize one rank's ghosted grids (one per variable).
fn init_grids(g: &HaloGeometry, rank: usize) -> Vec<Vec<f64>> {
    (0..NUM_VARS)
        .map(|v| init_unit(g.total_cells(), 1000 + (rank * NUM_VARS + v) as u64))
        .collect()
}

/// Pack every direction's list for all variables, one loop per direction
/// (the unfused formulation: 26 kernel launches).
fn pack_per_direction(
    variant: VariantId,
    bs: usize,
    g: &HaloGeometry,
    grids: &[Vec<f64>],
    bufs: &mut [Vec<f64>],
) {
    for (d, e) in g.exchanges.iter().enumerate() {
        let len = e.pack_list.len();
        let bp = DevicePtr::new(&mut bufs[d]);
        run_elementwise(variant, len * NUM_VARS, bs, |f| {
            let (v, i) = (f / len, f % len);
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            unsafe { bp.write(v * len + i, grids[v][e.pack_list[i]]) };
        });
    }
}

/// Unpack every direction, one loop per direction.
fn unpack_per_direction(
    variant: VariantId,
    bs: usize,
    g: &HaloGeometry,
    grids: &mut [Vec<f64>],
    bufs: &[Vec<f64>],
) {
    // One DevicePtr per variable grid; unpack lists are disjoint per
    // direction so parallel writes never collide.
    let ptrs: Vec<DevicePtr<f64>> = grids.iter_mut().map(|g| DevicePtr::new(g)).collect();
    for (d, e) in g.exchanges.iter().enumerate() {
        let len = e.unpack_list.len();
        let buf = &bufs[d];
        run_elementwise(variant, len * NUM_VARS, bs, |f| {
            let (v, i) = (f / len, f % len);
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            unsafe { ptrs[v].write(e.unpack_list[i], buf[v * len + i]) };
        });
    }
}

/// Fused pack: all 26 direction loops executed as one kernel. The RAJA
/// variants go through the portability layer's workgroup construct
/// (`WorkPool` → `WorkGroup::run`, one launch — exactly upstream's
/// `HALO_PACKING_FUSED`); the Base variants fuse manually over a
/// flattened index space.
fn pack_fused(
    variant: VariantId,
    bs: usize,
    g: &HaloGeometry,
    grids: &[Vec<f64>],
    bufs: &mut [Vec<f64>],
) {
    if variant.is_raja() {
        let ptrs: Vec<DevicePtr<f64>> = bufs.iter_mut().map(|b| DevicePtr::new(b)).collect();
        let mut pool = raja::workgroup::WorkPool::new();
        for (d, e) in g.exchanges.iter().enumerate() {
            let len = e.pack_list.len();
            let bp = ptrs[d];
            pool.enqueue(0..len * NUM_VARS, move |f| {
                let (v, i) = (f / len, f % len);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { bp.write(v * len + i, grids[v][e.pack_list[i]]) };
            });
        }
        let group = pool.instantiate();
        match variant {
            VariantId::RajaSeq => group.run::<raja::policy::SeqExec>(),
            VariantId::RajaPar => group.run::<raja::policy::ParExec>(),
            _ => crate::dispatch_gpu_block!(bs, P, { group.run::<P>() }),
        }
        return;
    }
    // Base variants: manual flattening of (direction, var, idx).
    let mut offsets = Vec::with_capacity(g.exchanges.len());
    let mut total = 0usize;
    for e in &g.exchanges {
        offsets.push(total);
        total += e.pack_list.len() * NUM_VARS;
    }
    let ptrs: Vec<DevicePtr<f64>> = bufs.iter_mut().map(|b| DevicePtr::new(b)).collect();
    run_elementwise(variant, total, bs, |f| {
        let mut d = g.exchanges.len() - 1;
        for (di, &off) in offsets.iter().enumerate().rev() {
            if f >= off {
                d = di;
                break;
            }
        }
        let e = &g.exchanges[d];
        let len = e.pack_list.len();
        let local = f - offsets[d];
        let (v, i) = (local / len, local % len);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        unsafe { ptrs[d].write(v * len + i, grids[v][e.pack_list[i]]) };
    });
}

/// Fused unpack (same construct split as [`pack_fused`]).
fn unpack_fused(
    variant: VariantId,
    bs: usize,
    g: &HaloGeometry,
    grids: &mut [Vec<f64>],
    bufs: &[Vec<f64>],
) {
    let ptrs: Vec<DevicePtr<f64>> = grids.iter_mut().map(|g| DevicePtr::new(g)).collect();
    if variant.is_raja() {
        let mut pool = raja::workgroup::WorkPool::new();
        for (d, e) in g.exchanges.iter().enumerate() {
            let len = e.unpack_list.len();
            let buf = &bufs[d];
            let ptrs = &ptrs;
            pool.enqueue(0..len * NUM_VARS, move |f| {
                let (v, i) = (f / len, f % len);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { ptrs[v].write(e.unpack_list[i], buf[v * len + i]) };
            });
        }
        let group = pool.instantiate();
        match variant {
            VariantId::RajaSeq => group.run::<raja::policy::SeqExec>(),
            VariantId::RajaPar => group.run::<raja::policy::ParExec>(),
            _ => crate::dispatch_gpu_block!(bs, P, { group.run::<P>() }),
        }
        return;
    }
    let mut offsets = Vec::with_capacity(g.exchanges.len());
    let mut total = 0usize;
    for e in &g.exchanges {
        offsets.push(total);
        total += e.unpack_list.len() * NUM_VARS;
    }
    run_elementwise(variant, total, bs, |f| {
        let mut d = g.exchanges.len() - 1;
        for (di, &off) in offsets.iter().enumerate().rev() {
            if f >= off {
                d = di;
                break;
            }
        }
        let e = &g.exchanges[d];
        let len = e.unpack_list.len();
        let local = f - offsets[d];
        let (v, i) = (local / len, local % len);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        unsafe { ptrs[v].write(e.unpack_list[i], bufs[d][v * len + i]) };
    });
}

/// Exchange packed buffers between ranks: for each direction `d`, send the
/// *opposite* direction's pack to `neighbor(d)` under tag `d`, and receive
/// into direction `d`'s unpack buffer.
fn exchange_buffers(
    comm: &mut simcomm::Comm,
    decomp: &RankDecomp,
    g: &HaloGeometry,
    send_bufs: &[Vec<f64>],
    recv_bufs: &mut [Vec<f64>],
) {
    let mut reqs = Vec::with_capacity(g.exchanges.len());
    for (tag, e) in g.exchanges.iter().enumerate() {
        // Every rank sends tag `d` towards neighbor(+offset_d), so the copy
        // addressed to *us* comes from neighbor(-offset_d) — the opposite
        // neighbour. (With the historical fixed 2-rank decomposition the
        // two coincide mod 2, which masked a wrong-source irecv here; at 4+
        // ranks the old matching deadlocked the exchange.)
        let opp = [-e.offset[0], -e.offset[1], -e.offset[2]];
        let nbr = decomp.neighbor(comm.rank(), opp);
        reqs.push(comm.irecv(nbr, tag as i32));
    }
    for (tag, e) in g.exchanges.iter().enumerate() {
        let nbr = decomp.neighbor(comm.rank(), e.offset);
        let opp = [-e.offset[0], -e.offset[1], -e.offset[2]];
        let opp_idx = g
            .exchanges
            .iter()
            .position(|x| x.offset == opp)
            .expect("opposite direction exists");
        comm.isend(nbr, tag as i32, &send_bufs[opp_idx]);
    }
    for (d, req) in reqs.into_iter().enumerate() {
        let payload = comm.wait(req).expect("recv payload");
        recv_bufs[d] = payload;
    }
}

/// Per-rep metric volume (elements packed across directions × vars).
fn pack_volume(n: usize) -> f64 {
    (geometry(n).pack_volume() * NUM_VARS) as f64
}

fn comm_metrics(n: usize, _with_mpi: bool) -> AnalyticMetrics {
    let v = pack_volume(n);
    AnalyticMetrics {
        bytes_read: 16.0 * v,
        bytes_written: 16.0 * v,
        flops: 0.0,
    }
}

fn comm_sig(
    name: &'static str,
    n: usize,
    launches: f64,
    messages: f64,
) -> ExecSignature {
    let m = comm_metrics(n, messages > 0.0);
    let mut s = ExecSignature::streaming(name, n);
    s.flops = m.flops;
    s.bytes_read = m.bytes_read;
    s.bytes_written = m.bytes_written;
    s.complexity = Complexity::NTwoThirds;
    s.iterations = pack_volume(n) * 2.0;
    s.int_ops_per_iter = 3.0; // indirect index loads
    s.kernel_launches = launches;
    s.mpi_messages = messages;
    s.mpi_bytes = 8.0 * pack_volume(n);
    s.flop_efficiency = 0.05;
    s
}

// ---------------------------------------------------------------------------
// HALO_PACKING / HALO_PACKING_FUSED
// ---------------------------------------------------------------------------

/// `Comm_HALO_PACKING`: pack and unpack all 26 direction buffers, one loop
/// per direction (no messages). Launch-overhead bound on GPUs.
pub struct HaloPacking;

impl KernelBase for HaloPacking {
    fn info(&self) -> KernelInfo {
        info("Comm_HALO_PACKING", &[Feature::Forall, Feature::Mpi])
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        comm_metrics(n, false)
    }

    fn signature(&self, n: usize) -> ExecSignature {
        comm_sig("Comm_HALO_PACKING", n, 52.0, 0.0)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let g = geometry(n);
        let mut grids = init_grids(&g, 0);
        let mut bufs: Vec<Vec<f64>> = g
            .exchanges
            .iter()
            .map(|e| vec![0.0; e.pack_list.len() * NUM_VARS])
            .collect();
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            pack_per_direction(variant, bs, &g, &grids, &mut bufs);
            unpack_per_direction(variant, bs, &g, &mut grids, &bufs);
        });
        RunResult {
            checksum: grids.iter().map(|gr| checksum(gr)).sum(),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Comm_HALO_PACKING_FUSED`: the same pack/unpack volume in two fused
/// loops (RAJA workgroup style) — two launches instead of 52.
pub struct HaloPackingFused;

impl KernelBase for HaloPackingFused {
    fn info(&self) -> KernelInfo {
        info(
            "Comm_HALO_PACKING_FUSED",
            &[Feature::Workgroup, Feature::Mpi],
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        comm_metrics(n, false)
    }

    fn signature(&self, n: usize) -> ExecSignature {
        comm_sig("Comm_HALO_PACKING_FUSED", n, 2.0, 0.0)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let g = geometry(n);
        let mut grids = init_grids(&g, 0);
        let mut bufs: Vec<Vec<f64>> = g
            .exchanges
            .iter()
            .map(|e| vec![0.0; e.pack_list.len() * NUM_VARS])
            .collect();
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            pack_fused(variant, bs, &g, &grids, &mut bufs);
            unpack_fused(variant, bs, &g, &mut grids, &bufs);
        });
        RunResult {
            checksum: grids.iter().map(|gr| checksum(gr)).sum(),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

// ---------------------------------------------------------------------------
// HALO_SENDRECV / HALO_EXCHANGE / HALO_EXCHANGE_FUSED
// ---------------------------------------------------------------------------

/// `Comm_HALO_SENDRECV`: message exchange only (buffers pre-packed once) —
/// isolates the MPI cost.
pub struct HaloSendrecv;

impl KernelBase for HaloSendrecv {
    fn info(&self) -> KernelInfo {
        info("Comm_HALO_SENDRECV", &[Feature::Mpi])
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let v = pack_volume(n);
        AnalyticMetrics {
            bytes_read: 8.0 * v,
            bytes_written: 8.0 * v,
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = comm_sig("Comm_HALO_SENDRECV", n, 0.0, 26.0);
        // Message staging only: half the pack/unpack traffic.
        let m = self.metrics(n);
        s.bytes_read = m.bytes_read;
        s.bytes_written = m.bytes_written;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, _tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let decomp = RankDecomp::new([RANKS, 1, 1]);
        let outputs = simcomm::run(RANKS, |mut comm| {
            let g = geometry(n);
            let grids = init_grids(&g, comm.rank());
            // Pre-pack once (not timed — this kernel times the messages).
            let mut send_bufs: Vec<Vec<f64>> = g
                .exchanges
                .iter()
                .map(|e| {
                    let mut b = Vec::with_capacity(e.pack_list.len() * NUM_VARS);
                    for v in 0..NUM_VARS {
                        b.extend(e.pack_list.iter().map(|&i| grids[v][i]));
                    }
                    b
                })
                .collect();
            let mut recv_bufs: Vec<Vec<f64>> = vec![Vec::new(); g.exchanges.len()];
            comm.barrier();
            let time = time_reps(reps, || {
                exchange_buffers(&mut comm, &decomp, &g, &send_bufs, &mut recv_bufs);
            });
            // Fold the received data into the checksum so the exchange is
            // observable; reuse send buffers to keep iterations uniform.
            let cs: f64 = recv_bufs.iter().map(|b| checksum(b)).sum();
            send_bufs.iter_mut().for_each(|b| b.truncate(b.len()));
            (time, cs)
        });
        let time = outputs.iter().map(|(t, _)| *t).max().unwrap_or_default();
        let checksum_total: f64 = outputs.iter().map(|(_, c)| c).sum();
        RunResult {
            checksum: checksum_total,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// Shared driver for the two full-exchange kernels: the fixed [`RANKS`]-rank
/// decomposition with rank-seeded grids (each rank's data is distinct, so
/// the summed checksum witnesses real inter-rank traffic).
fn run_exchange(n: usize, reps: usize, variant: VariantId, bs: usize, fused: bool) -> RunResult {
    run_exchange_decomposed(n, reps, variant, bs, fused, RANKS, false)
}

/// The full pack → exchange → unpack pipeline over an explicit 1-D rank
/// decomposition (`[nranks, 1, 1]`, periodic). Public for the §IV
/// rank-decomposition ablation (benches and parity tests).
///
/// With `uniform_init` every rank starts from identical (rank-independent)
/// grids; since the decomposition is periodic and all ranks run the same
/// geometry, each rank's post-exchange state then equals the single-rank
/// self-exchange, making `checksum / nranks` independent of `nranks` —
/// the parity invariant the ablation pins. With `uniform_init = false`
/// grids are rank-seeded (the kernels' own behavior).
pub fn run_exchange_decomposed(
    n: usize,
    reps: usize,
    variant: VariantId,
    bs: usize,
    fused: bool,
    nranks: usize,
    uniform_init: bool,
) -> RunResult {
    let decomp = RankDecomp::new([nranks, 1, 1]);
    let outputs = simcomm::run(nranks, |mut comm| {
        let g = geometry(n);
        let mut grids = init_grids(&g, if uniform_init { 0 } else { comm.rank() });
        let mut send_bufs: Vec<Vec<f64>> = g
            .exchanges
            .iter()
            .map(|e| vec![0.0; e.pack_list.len() * NUM_VARS])
            .collect();
        let mut recv_bufs: Vec<Vec<f64>> = vec![Vec::new(); g.exchanges.len()];
        comm.barrier();
        let time = time_reps(reps, || {
            if fused {
                pack_fused(variant, bs, &g, &grids, &mut send_bufs);
            } else {
                pack_per_direction(variant, bs, &g, &grids, &mut send_bufs);
            }
            exchange_buffers(&mut comm, &decomp, &g, &send_bufs, &mut recv_bufs);
            if fused {
                unpack_fused(variant, bs, &g, &mut grids, &recv_bufs);
            } else {
                unpack_per_direction(variant, bs, &g, &mut grids, &recv_bufs);
            }
        });
        let cs: f64 = grids.iter().map(|gr| checksum(gr)).sum();
        (time, cs)
    });
    let time = outputs.iter().map(|(t, _)| *t).max().unwrap_or_default();
    let checksum_total: f64 = outputs.iter().map(|(_, c)| c).sum();
    RunResult {
        checksum: checksum_total,
        time,
        reps,
        metrics: comm_metrics(n, true),
    }
}

/// `Comm_HALO_EXCHANGE`: full pack → isend/irecv/wait → unpack pipeline,
/// one loop per direction.
pub struct HaloExchange;

impl KernelBase for HaloExchange {
    fn info(&self) -> KernelInfo {
        info("Comm_HALO_EXCHANGE", &[Feature::Forall, Feature::Mpi])
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        comm_metrics(n, true)
    }

    fn signature(&self, n: usize) -> ExecSignature {
        comm_sig("Comm_HALO_EXCHANGE", n, 52.0, 26.0)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        run_exchange(n, reps, variant, tuning.gpu_block_size, false)
    }
}

/// `Comm_HALO_EXCHANGE_FUSED`: the full pipeline with fused pack/unpack.
pub struct HaloExchangeFused;

impl KernelBase for HaloExchangeFused {
    fn info(&self) -> KernelInfo {
        info(
            "Comm_HALO_EXCH_FUSED",
            &[Feature::Workgroup, Feature::Mpi],
        )
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        comm_metrics(n, true)
    }

    fn signature(&self, n: usize) -> ExecSignature {
        comm_sig("Comm_HALO_EXCH_FUSED", n, 2.0, 26.0)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        run_exchange(n, reps, variant, tuning.gpu_block_size, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_variants;

    const N: usize = NUM_VARS * 8 * 8 * 8;

    #[test]
    fn packing_variants_agree() {
        verify_variants(&HaloPacking, N, 1e-12);
        verify_variants(&HaloPackingFused, N, 1e-12);
    }

    #[test]
    fn fused_and_unfused_packing_produce_identical_grids() {
        let t = Tuning::default();
        let a = HaloPacking.execute(VariantId::BaseSeq, N, 1, &t);
        let b = HaloPackingFused.execute(VariantId::BaseSeq, N, 1, &t);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn exchange_variants_agree() {
        verify_variants(&HaloExchange, N, 1e-12);
        verify_variants(&HaloExchangeFused, N, 1e-12);
    }

    #[test]
    fn exchange_fills_all_ghost_cells() {
        // After one exchange every ghost cell holds neighbour data (not the
        // initialization value): checksum differs from pre-exchange.
        let t = Tuning::default();
        let g = geometry(N);
        let pre: f64 = (0..RANKS)
            .map(|r| {
                init_grids(&g, r)
                    .iter()
                    .map(|gr| checksum(gr))
                    .sum::<f64>()
            })
            .sum();
        let post = HaloExchange
            .execute(VariantId::BaseSeq, N, 1, &t)
            .checksum;
        assert_ne!(pre, post);
    }

    #[test]
    fn sendrecv_transfers_pack_volume() {
        let t = Tuning::default();
        let r = HaloSendrecv.execute(VariantId::BaseSeq, N, 2, &t);
        assert!(r.checksum.is_finite());
        assert!(r.checksum != 0.0);
        // Deterministic across variants (messages carry the same data).
        let r2 = HaloSendrecv.execute(VariantId::RajaPar, N, 2, &t);
        assert_eq!(r.checksum, r2.checksum);
    }

    #[test]
    fn fused_signature_has_two_launches_unfused_52() {
        assert_eq!(HaloPacking.signature(N).kernel_launches, 52.0);
        assert_eq!(HaloPackingFused.signature(N).kernel_launches, 2.0);
        assert_eq!(HaloExchange.signature(N).mpi_messages, 26.0);
    }

    #[test]
    fn exchange_checksum_parity_single_rank_vs_rank_decomposed() {
        // §IV rank-decomposition ablation invariant: with uniform
        // (rank-independent) grids and a periodic decomposition, every rank
        // computes the identical post-exchange state, so the per-rank
        // checksum is independent of the rank count — exactly, since the
        // floating-point operations are identical.
        let single = run_exchange_decomposed(N, 1, VariantId::BaseSeq, 256, false, 1, true);
        for nranks in [2usize, 4] {
            let multi =
                run_exchange_decomposed(N, 1, VariantId::BaseSeq, 256, false, nranks, true);
            assert_eq!(
                multi.checksum / nranks as f64,
                single.checksum,
                "nranks={nranks}"
            );
        }
        // The fused pipeline moves the same data.
        let fused = run_exchange_decomposed(N, 1, VariantId::BaseSeq, 256, true, 4, true);
        assert_eq!(fused.checksum / 4.0, single.checksum);
    }

    #[test]
    fn comm_complexity_is_surface_proportional() {
        assert_eq!(HaloExchange.info().complexity, Complexity::NTwoThirds);
        // Doubling the volume grows pack volume by ~2^{2/3}.
        let v1 = pack_volume(NUM_VARS * 8 * 8 * 8);
        let v2 = pack_volume(NUM_VARS * 16 * 16 * 16);
        let ratio = v2 / v1;
        assert!(ratio > 3.0 && ratio < 5.0, "surface ratio {ratio}");
    }
}
