//! Lcals group: 11 kernels from the Livermore Loops / LCALS suite.
//!
//! The Livermore Fortran Kernels were designed to probe compiler
//! vectorization; LCALS translated them to C++ (with the templates and
//! lambdas RAJA relies on). They are short, regular, bandwidth-hungry
//! loops — the paper's clustering puts nearly all of them in the most
//! memory-bound cluster (Cluster 2), except `FIRST_MIN`, whose scalar
//! compare/select chain splits between retiring and frontend bound (§V-B).

use crate::common::{checksum, init_unit, square_edge};
use crate::{
    check_variant, run_elementwise, time_reps, AnalyticMetrics, Feature, Group, KernelBase,
    KernelInfo, PaperModel, RunResult, Tuning, VariantId, ALL_VARIANTS,
};
use perfmodel::{Complexity, ExecSignature};
use raja::policy::{ParExec, SeqExec};
use raja::DevicePtr;
use rayon::prelude::*;

/// Register the Lcals kernels in Table I order.
pub fn register(v: &mut Vec<Box<dyn KernelBase>>) {
    v.push(Box::new(DiffPredict));
    v.push(Box::new(Eos));
    v.push(Box::new(FirstDiff));
    v.push(Box::new(FirstMin));
    v.push(Box::new(FirstSum));
    v.push(Box::new(GenLinRecur));
    v.push(Box::new(Hydro1d));
    v.push(Box::new(Hydro2d));
    v.push(Box::new(IntPredict));
    v.push(Box::new(Planckian));
    v.push(Box::new(TridiagElim));
}

const MODELS: &[PaperModel] = &[
    PaperModel::Seq,
    PaperModel::OpenMp,
    PaperModel::OmpTarget,
    PaperModel::Cuda,
    PaperModel::Hip,
    PaperModel::Sycl,
];

fn info(name: &'static str, default_reps: usize) -> KernelInfo {
    KernelInfo {
        name,
        group: Group::Lcals,
        features: &[Feature::Forall],
        complexity: Complexity::N,
        default_size: 1_000_000,
        default_reps,
        paper_models: MODELS,
        variants: ALL_VARIANTS,
    }
}

fn streaming_sig(m: AnalyticMetrics, name: &'static str, n: usize) -> ExecSignature {
    let mut s = ExecSignature::streaming(name, n);
    s.flops = m.flops;
    s.bytes_read = m.bytes_read;
    s.bytes_written = m.bytes_written;
    s.flop_efficiency = 0.3;
    s
}

/// Planes in the `DIFF_PREDICT`/`INT_PREDICT` state arrays.
const PLANES: usize = 14;

/// `Lcals_DIFF_PREDICT`: difference-predictor chain across 10 state planes
/// (Livermore kernel 17 structure).
pub struct DiffPredict;

impl DiffPredict {
    #[inline]
    fn body(i: usize, n: usize, px: &DevicePtr<f64>, cx: &[f64]) {
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        unsafe {
            let ar = cx[4 * n + i];
            let br = ar - px.read(4 * n + i);
            px.write(4 * n + i, ar);
            let cr = br - px.read(5 * n + i);
            px.write(5 * n + i, br);
            let ar = cr - px.read(6 * n + i);
            px.write(6 * n + i, cr);
            let br = ar - px.read(7 * n + i);
            px.write(7 * n + i, ar);
            let cr = br - px.read(8 * n + i);
            px.write(8 * n + i, br);
            let ar = cr - px.read(9 * n + i);
            px.write(9 * n + i, cr);
            let br = ar - px.read(10 * n + i);
            px.write(10 * n + i, ar);
            let cr = br - px.read(11 * n + i);
            px.write(11 * n + i, br);
            px.write(13 * n + i, cr - px.read(12 * n + i));
            px.write(12 * n + i, cr);
        }
    }
}

impl KernelBase for DiffPredict {
    fn info(&self) -> KernelInfo {
        info("Lcals_DIFF_PREDICT", 30)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 10.0 * 8.0 * n as f64,
            bytes_written: 10.0 * 8.0 * n as f64,
            flops: 9.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        streaming_sig(self.metrics(n), "Lcals_DIFF_PREDICT", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let mut px = init_unit(PLANES * n, 400);
        let cx = init_unit(PLANES * n, 401);
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let pp = DevicePtr::new(&mut px);
            run_elementwise(variant, n, bs, |i| Self::body(i, n, &pp, &cx));
        });
        RunResult {
            checksum: checksum(&px),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Lcals_EOS`: equation-of-state fragment (Livermore kernel 7) — a wide
/// FMA expression over a shifted window of `u`.
pub struct Eos;

impl KernelBase for Eos {
    fn info(&self) -> KernelInfo {
        info("Lcals_EOS", 40)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * 9.0 * n as f64, // y, z, u[i..i+7]
            bytes_written: 8.0 * n as f64,
            flops: 16.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = streaming_sig(self.metrics(n), "Lcals_EOS", n);
        // Shifted-window reads hit cache lines repeatedly.
        s.cache_reuse = 0.5;
        s.flop_efficiency = 0.35;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let y = init_unit(n, 410);
        let z = init_unit(n, 411);
        let u = init_unit(n + 7, 412);
        let mut x = vec![0.0f64; n];
        let (q, r, t) = (0.5, 0.2, 0.1);
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let xp = DevicePtr::new(&mut x);
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            run_elementwise(variant, n, bs, |i| unsafe {
                xp.write(
                    i,
                    u[i] + r * (z[i] + r * y[i])
                        + t * (u[i + 3]
                            + r * (u[i + 2] + r * u[i + 1])
                            + t * (u[i + 6] + q * (u[i + 5] + q * u[i + 4]))),
                );
            });
        });
        RunResult {
            checksum: checksum(&x),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Lcals_FIRST_DIFF`: forward difference `x[i] = y[i+1] − y[i]`.
pub struct FirstDiff;

impl KernelBase for FirstDiff {
    fn info(&self) -> KernelInfo {
        info("Lcals_FIRST_DIFF", 50)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        streaming_sig(self.metrics(n), "Lcals_FIRST_DIFF", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let y = init_unit(n + 1, 420);
        let mut x = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let xp = DevicePtr::new(&mut x);
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            run_elementwise(variant, n, bs, |i| unsafe {
                xp.write(i, y[i + 1] - y[i]);
            });
        });
        RunResult {
            checksum: checksum(&x),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Lcals_FIRST_MIN`: value and location of the first minimum — a
/// loop-carried compare/select chain (min-with-location reduction).
pub struct FirstMin;

impl KernelBase for FirstMin {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            features: &[Feature::Forall, Feature::Reduction],
            ..info("Lcals_FIRST_MIN", 30)
        }
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * n as f64,
            bytes_written: 16.0,
            flops: 0.0,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = streaming_sig(self.metrics(n), "Lcals_FIRST_MIN", n);
        // The compare/select/location chain serializes and defeats
        // vectorization: the paper finds this kernel split ~half/half
        // between retiring and frontend bound.
        s.flop_efficiency = 0.0;
        s.int_ops_per_iter = 12.0;
        s.icache_pressure = 0.45;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let x = init_unit(n, 440);
        let mut out = raja::reduce::ValLoc {
            val: f64::INFINITY,
            loc: usize::MAX,
        };
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            out = match variant {
                VariantId::BaseSeq => {
                    let mut best = raja::reduce::ValLoc {
                        val: f64::INFINITY,
                        loc: usize::MAX,
                    };
                    for (i, &v) in x.iter().enumerate() {
                        if v < best.val {
                            best = raja::reduce::ValLoc { val: v, loc: i };
                        }
                    }
                    best
                }
                VariantId::BasePar => {
                    let (val, loc) = (0..n)
                        .into_par_iter()
                        .map(|i| (x[i], i))
                        .reduce(
                            || (f64::INFINITY, usize::MAX),
                            |a, b| {
                                if b.0 < a.0 || (b.0 == a.0 && b.1 < a.1) {
                                    b
                                } else {
                                    a
                                }
                            },
                        );
                    raja::reduce::ValLoc { val, loc }
                }
                VariantId::RajaSeq => raja::reduce::reduce_min_loc::<SeqExec>(0..n, |i| x[i]),
                VariantId::RajaPar => raja::reduce::reduce_min_loc::<ParExec>(0..n, |i| x[i]),
                VariantId::BaseSimGpu | VariantId::RajaSimGpu => {
                    crate::dispatch_gpu_block!(bs, P, {
                        raja::reduce::reduce_min_loc::<P>(0..n, |i| x[i])
                    })
                }
            };
        });
        RunResult {
            checksum: out.val + out.loc as f64,
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Lcals_FIRST_SUM`: running pairwise sum `x[i] = y[i−1] + y[i]`.
pub struct FirstSum;

impl KernelBase for FirstSum {
    fn info(&self) -> KernelInfo {
        info("Lcals_FIRST_SUM", 50)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 16.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        streaming_sig(self.metrics(n), "Lcals_FIRST_SUM", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let y = init_unit(n, 430);
        let mut x = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let xp = DevicePtr::new(&mut x);
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            unsafe { xp.write(0, y[0]) };
            run_elementwise(variant, n - 1, bs, |j| {
                let i = j + 1;
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { xp.write(i, y[i - 1] + y[i]) };
            });
        });
        RunResult {
            checksum: checksum(&x),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Lcals_GEN_LIN_RECUR`: general linear recurrence (Livermore kernel 19),
/// array-expanded (`stb5` is a per-element array, as upstream) so both
/// passes are parallel.
pub struct GenLinRecur;

impl KernelBase for GenLinRecur {
    fn info(&self) -> KernelInfo {
        info("Lcals_GEN_LIN_RECUR", 30)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 2.0 * 3.0 * 8.0 * n as f64, // sa, sb, stb5 in both passes
            bytes_written: 2.0 * 2.0 * 8.0 * n as f64, // b5, stb5 in both passes
            flops: 2.0 * 3.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = streaming_sig(self.metrics(n), "Lcals_GEN_LIN_RECUR", n);
        s.kernel_launches = 2.0;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let sa = init_unit(n, 450);
        let sb = init_unit(n, 451);
        let mut b5 = vec![0.0f64; n];
        let mut stb5 = init_unit(n, 452);
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let bp = DevicePtr::new(&mut b5);
            let sp = DevicePtr::new(&mut stb5);
            // Forward pass.
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            run_elementwise(variant, n, bs, |k| unsafe {
                let v = sa[k] + sp.read(k) * sb[k];
                bp.write(k, v);
                sp.write(k, v - sp.read(k));
            });
            // Backward pass (reversed index, same update).
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            run_elementwise(variant, n, bs, |i| unsafe {
                let k = n - 1 - i;
                let v = sa[k] + sp.read(k) * sb[k];
                bp.write(k, v);
                sp.write(k, v - sp.read(k));
            });
        });
        RunResult {
            checksum: checksum(&b5) + checksum(&stb5),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Lcals_HYDRO_1D`: 1-D hydrodynamics fragment (Livermore kernel 1).
pub struct Hydro1d;

impl KernelBase for Hydro1d {
    fn info(&self) -> KernelInfo {
        info("Lcals_HYDRO_1D", 50)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 24.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 5.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        streaming_sig(self.metrics(n), "Lcals_HYDRO_1D", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let y = init_unit(n, 460);
        let z = init_unit(n + 12, 461);
        let mut x = vec![0.0f64; n];
        let (q, r, t) = (0.5, 0.2, 0.1);
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let xp = DevicePtr::new(&mut x);
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            run_elementwise(variant, n, bs, |i| unsafe {
                xp.write(i, q + y[i] * (r * z[i + 10] + t * z[i + 11]));
            });
        });
        RunResult {
            checksum: checksum(&x),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Lcals_HYDRO_2D`: 2-D hydrodynamics fragment (Livermore kernel 18) —
/// three sub-loops of stencil updates over seven state arrays.
pub struct Hydro2d;

impl Hydro2d {
    fn edge(n: usize) -> usize {
        square_edge(n).max(4)
    }
}

impl KernelBase for Hydro2d {
    fn info(&self) -> KernelInfo {
        KernelInfo {
            features: &[Feature::Kernel],
            ..info("Lcals_HYDRO_2D", 10)
        }
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        let e = Self::edge(n) as f64;
        let pts = (e - 2.0) * (e - 2.0);
        AnalyticMetrics {
            bytes_read: 8.0 * 18.0 * pts,
            bytes_written: 8.0 * 6.0 * pts,
            flops: 22.0 * pts,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = streaming_sig(self.metrics(n), "Lcals_HYDRO_2D", n);
        s.cache_reuse = 0.35; // stencil row reuse
        s.kernel_launches = 3.0;
        s.icache_pressure = 0.15;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let e = Self::edge(n);
        let idx = |k: usize, j: usize| k * e + j;
        let za_in = init_unit(e * e, 470);
        let zb_in = init_unit(e * e, 471);
        let zm = init_unit(e * e, 472);
        let zp = init_unit(e * e, 473);
        let zq = init_unit(e * e, 474);
        let mut zu = vec![0.0f64; e * e];
        let mut zv = vec![0.0f64; e * e];
        let mut zr = init_unit(e * e, 475);
        let mut zz = init_unit(e * e, 476);
        let (s, t) = (0.0041, 0.0037);
        let bs = tuning.gpu_block_size;
        let inner = e - 2;

        let time = time_reps(reps, || {
            let zup = DevicePtr::new(&mut zu);
            let zvp = DevicePtr::new(&mut zv);
            let zrp = DevicePtr::new(&mut zr);
            let zzp = DevicePtr::new(&mut zz);
            // Sub-loop 1: first component from vertical/horizontal stencil.
            run_elementwise(variant, inner * inner, bs, |f| {
                let (k, j) = (1 + f / inner, 1 + f % inner);
                let a = (za_in[idx(k + 1, j)] + za_in[idx(k - 1, j)]) * zp[idx(k, j)];
                let b = (zb_in[idx(k, j + 1)] + zb_in[idx(k, j - 1)]) * zq[idx(k, j)];
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { zup.write(idx(k, j), a - b) };
            });
            // Sub-loop 2: second component.
            run_elementwise(variant, inner * inner, bs, |f| {
                let (k, j) = (1 + f / inner, 1 + f % inner);
                let a = (za_in[idx(k, j + 1)] - za_in[idx(k, j - 1)]) * zm[idx(k, j)];
                let b = (zb_in[idx(k + 1, j)] - zb_in[idx(k - 1, j)]) * zm[idx(k, j)];
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { zvp.write(idx(k, j), a + b) };
            });
            // Sub-loop 3: time advance.
            run_elementwise(variant, inner * inner, bs, |f| {
                let (k, j) = (1 + f / inner, 1 + f % inner);
                // SAFETY: indices stay within the extents the device pointers/views were
                // built from, and each parallel iterate touches a disjoint set of output
                // elements, so writes never alias.
                unsafe {
                    zrp.write(idx(k, j), zrp.read(idx(k, j)) + t * zup.read(idx(k, j)) * s);
                    zzp.write(idx(k, j), zzp.read(idx(k, j)) + t * zvp.read(idx(k, j)) * s);
                }
            });
        });
        RunResult {
            checksum: checksum(&zr) + checksum(&zz),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Lcals_INT_PREDICT`: integrate-predictor polynomial over plane-strided
/// state (Livermore kernel 16).
pub struct IntPredict;

impl KernelBase for IntPredict {
    fn info(&self) -> KernelInfo {
        info("Lcals_INT_PREDICT", 40)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 8.0 * 10.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 17.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = streaming_sig(self.metrics(n), "Lcals_INT_PREDICT", n);
        s.flop_efficiency = 0.35;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let mut px = init_unit(PLANES * n, 480);
        let dm: [f64; 7] = [0.1, 0.11, 0.12, 0.13, 0.14, 0.15, 0.16];
        let (c0, t) = (0.5, 0.02);
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let pp = DevicePtr::new(&mut px);
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from; the accesses are reads.
            run_elementwise(variant, n, bs, |i| unsafe {
                let v = dm[6] * pp.read(12 * n + i)
                    + dm[5] * pp.read(11 * n + i)
                    + dm[4] * pp.read(10 * n + i)
                    + dm[3] * pp.read(9 * n + i)
                    + dm[2] * pp.read(8 * n + i)
                    + dm[1] * pp.read(7 * n + i)
                    + dm[0] * pp.read(6 * n + i)
                    + c0 * (pp.read(4 * n + i) + pp.read(5 * n + i))
                    + t * pp.read(2 * n + i);
                pp.write(i, v);
            });
        });
        RunResult {
            checksum: checksum(&px[..n]),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Lcals_PLANCKIAN`: Planckian distribution (Livermore kernel 22) — the
/// group's transcendental-function kernel.
pub struct Planckian;

impl KernelBase for Planckian {
    fn info(&self) -> KernelInfo {
        info("Lcals_PLANCKIAN", 30)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 24.0 * n as f64,
            bytes_written: 16.0 * n as f64,
            flops: 4.0 * n as f64, // div, exp (counted once), sub, div
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        let mut s = streaming_sig(self.metrics(n), "Lcals_PLANCKIAN", n);
        // exp() expands to a polynomial-evaluation call: many extra μops.
        s.int_ops_per_iter = 12.0;
        s.flop_efficiency = 0.1;
        s
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let u = init_unit(n, 490);
        let v: Vec<f64> = init_unit(n, 491).iter().map(|x| x + 0.5).collect();
        let x = init_unit(n, 492);
        let mut y = vec![0.0f64; n];
        let mut w = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let yp = DevicePtr::new(&mut y);
            let wp = DevicePtr::new(&mut w);
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            run_elementwise(variant, n, bs, |i| unsafe {
                let yi = u[i] / v[i];
                yp.write(i, yi);
                wp.write(i, x[i] / (yi.exp() - 1.0));
            });
        });
        RunResult {
            checksum: checksum(&w) + checksum(&y),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

/// `Lcals_TRIDIAG_ELIM`: tridiagonal elimination step (Livermore kernel 5)
/// with separate input/output vectors so the loop is parallel.
pub struct TridiagElim;

impl KernelBase for TridiagElim {
    fn info(&self) -> KernelInfo {
        info("Lcals_TRIDIAG_ELIM", 50)
    }

    fn metrics(&self, n: usize) -> AnalyticMetrics {
        AnalyticMetrics {
            bytes_read: 24.0 * n as f64,
            bytes_written: 8.0 * n as f64,
            flops: 2.0 * n as f64,
        }
    }

    fn signature(&self, n: usize) -> ExecSignature {
        streaming_sig(self.metrics(n), "Lcals_TRIDIAG_ELIM", n)
    }

    fn execute(&self, variant: VariantId, n: usize, reps: usize, tuning: &Tuning) -> RunResult {
        check_variant(&self.info(), variant);
        let xin = init_unit(n, 500);
        let y = init_unit(n, 501);
        let z = init_unit(n, 502);
        let mut xout = vec![0.0f64; n];
        let bs = tuning.gpu_block_size;
        let time = time_reps(reps, || {
            let xp = DevicePtr::new(&mut xout);
            run_elementwise(variant, n - 1, bs, |j| {
                let i = j + 1;
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { xp.write(i, z[i] * (y[i] - xin[i - 1])) };
            });
        });
        RunResult {
            checksum: checksum(&xout),
            time,
            reps,
            metrics: self.metrics(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_variants;

    const N: usize = 4000;

    #[test]
    fn elementwise_lcals_agree() {
        verify_variants(&DiffPredict, N, 1e-12);
        verify_variants(&Eos, N, 1e-12);
        verify_variants(&FirstDiff, N, 1e-12);
        verify_variants(&FirstSum, N, 1e-12);
        verify_variants(&GenLinRecur, N, 1e-12);
        verify_variants(&Hydro1d, N, 1e-12);
        verify_variants(&Hydro2d, N, 1e-12);
        verify_variants(&IntPredict, N, 1e-12);
        verify_variants(&Planckian, N, 1e-12);
        verify_variants(&TridiagElim, N, 1e-12);
    }

    #[test]
    fn first_min_variants_agree() {
        verify_variants(&FirstMin, N, 1e-12);
    }

    #[test]
    fn first_min_finds_global_minimum() {
        let n = 20_000;
        let x = init_unit(n, 440);
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let loc = x.iter().position(|&v| v == lo).unwrap();
        let r = FirstMin.execute(VariantId::RajaSimGpu, n, 1, &Tuning::default());
        assert_eq!(r.checksum, lo + loc as f64);
    }

    #[test]
    fn first_diff_matches_reference() {
        let n = 1000;
        let y = init_unit(n + 1, 420);
        let expect: Vec<f64> = (0..n).map(|i| y[i + 1] - y[i]).collect();
        let r = FirstDiff.execute(VariantId::RajaPar, n, 1, &Tuning::default());
        assert_eq!(r.checksum, checksum(&expect));
    }

    #[test]
    fn tridiag_skips_first_element() {
        let r = TridiagElim.execute(VariantId::BaseSeq, 10, 1, &Tuning::default());
        let xin = init_unit(10, 500);
        let y = init_unit(10, 501);
        let z = init_unit(10, 502);
        let mut expect = vec![0.0; 10];
        for i in 1..10 {
            expect[i] = z[i] * (y[i] - xin[i - 1]);
        }
        assert_eq!(r.checksum, checksum(&expect));
    }

    #[test]
    fn hydro2d_device_matches_host() {
        let r1 = Hydro2d.execute(VariantId::BaseSeq, 10_000, 1, &Tuning::default());
        let r2 = Hydro2d.execute(VariantId::RajaSimGpu, 10_000, 1, &Tuning::default());
        assert!(crate::common::close(r1.checksum, r2.checksum, 1e-12));
    }

    #[test]
    fn lcals_kernels_are_memory_lean_on_flops() {
        // The group is bandwidth-heavy: flops per byte < 1 for all these.
        for k in [
            &DiffPredict as &dyn KernelBase,
            &Eos,
            &FirstDiff,
            &FirstSum,
            &Hydro1d,
            &TridiagElim,
        ] {
            assert!(k.metrics(1000).flops_per_byte() < 1.0, "{}", k.info().name);
        }
    }
}
