//! Execution policies: the compile-time back-end selectors.
//!
//! RAJA's execution policies (`seq_exec`, `omp_parallel_for_exec`,
//! `cuda_exec<BLOCK_SIZE>`, ...) are empty types threaded through execution
//! templates. The Rust equivalents here follow the same shape: zero-sized
//! types implementing [`ExecPolicy`], with the simulated-GPU policy carrying
//! its block size as a const generic exactly like `RAJA::cuda_exec<256>`.

use rayon::prelude::*;
use std::ops::Range;

/// A loop execution back-end.
///
/// The three entry points mirror RAJA's `forall` and the two- and
/// three-level `RAJA::kernel` nestings the Performance Suite uses. Bodies
/// must be safe to invoke in any order and concurrently; each index tuple is
/// delivered exactly once.
pub trait ExecPolicy {
    /// Human-readable policy name (used in reports).
    const NAME: &'static str;

    /// Execute `body` for each index in `range`.
    fn forall(range: Range<usize>, body: &(impl Fn(usize) + Sync));

    /// Execute `body` over a 2-D nested iteration space (outer × inner).
    fn forall_2d(outer: Range<usize>, inner: Range<usize>, body: &(impl Fn(usize, usize) + Sync));

    /// Execute `body` over a 3-D nested iteration space.
    fn forall_3d(
        outer: Range<usize>,
        mid: Range<usize>,
        inner: Range<usize>,
        body: &(impl Fn(usize, usize, usize) + Sync),
    );
}

/// Sequential execution (RAJA `seq_exec`): iterates in index order on the
/// calling thread. The reference policy — every other back-end must produce
/// results equivalent to this one.
pub struct SeqExec;

impl ExecPolicy for SeqExec {
    const NAME: &'static str = "seq";

    #[inline]
    fn forall(range: Range<usize>, body: &(impl Fn(usize) + Sync)) {
        for i in range {
            body(i);
        }
    }

    #[inline]
    fn forall_2d(outer: Range<usize>, inner: Range<usize>, body: &(impl Fn(usize, usize) + Sync)) {
        for i in outer {
            for j in inner.clone() {
                body(i, j);
            }
        }
    }

    #[inline]
    fn forall_3d(
        outer: Range<usize>,
        mid: Range<usize>,
        inner: Range<usize>,
        body: &(impl Fn(usize, usize, usize) + Sync),
    ) {
        for i in outer {
            for j in mid.clone() {
                for k in inner.clone() {
                    body(i, j, k);
                }
            }
        }
    }
}

/// Host-parallel execution via rayon (the stand-in for RAJA's
/// `omp_parallel_for_exec`): the outermost dimension is distributed across
/// the host thread pool.
pub struct ParExec;

impl ExecPolicy for ParExec {
    const NAME: &'static str = "par";

    #[inline]
    fn forall(range: Range<usize>, body: &(impl Fn(usize) + Sync)) {
        range.into_par_iter().for_each(body);
    }

    #[inline]
    fn forall_2d(outer: Range<usize>, inner: Range<usize>, body: &(impl Fn(usize, usize) + Sync)) {
        outer.into_par_iter().for_each(|i| {
            for j in inner.clone() {
                body(i, j);
            }
        });
    }

    #[inline]
    fn forall_3d(
        outer: Range<usize>,
        mid: Range<usize>,
        inner: Range<usize>,
        body: &(impl Fn(usize, usize, usize) + Sync),
    ) {
        outer.into_par_iter().for_each(|i| {
            for j in mid.clone() {
                for k in inner.clone() {
                    body(i, j, k);
                }
            }
        });
    }
}

/// Simulated-device execution (the stand-in for `RAJA::cuda_exec<B>` /
/// `hip_exec<B>`): indices are mapped onto a grid of `B`-thread blocks on
/// the [`gpusim`] device, with the standard `blockIdx * blockDim + threadIdx`
/// global-thread mapping and a bounds guard.
pub struct SimGpuExec<const BLOCK_SIZE: usize = { gpusim::DEFAULT_BLOCK_SIZE }>;

impl<const B: usize> ExecPolicy for SimGpuExec<B> {
    const NAME: &'static str = "simgpu";

    #[inline]
    fn forall(range: Range<usize>, body: &(impl Fn(usize) + Sync)) {
        let start = range.start;
        let n = range.len();
        if n == 0 {
            return;
        }
        // Label accesses for the simulated-device sanitizer, so findings
        // report which RAJA abstraction the hazardous launch ran under.
        let _region = gpusim::sanitizer::region("raja::forall<SimGpu>");
        gpusim::launch_1d(n, B, |i| body(start + i));
    }

    #[inline]
    fn forall_2d(outer: Range<usize>, inner: Range<usize>, body: &(impl Fn(usize, usize) + Sync)) {
        let (o0, n_outer) = (outer.start, outer.len());
        let (i0, n_inner) = (inner.start, inner.len());
        if n_outer == 0 || n_inner == 0 {
            return;
        }
        let _region = gpusim::sanitizer::region("raja::forall_2d<SimGpu>");
        // Inner dimension along thread x (coalesced on a real device),
        // outer dimension along grid y — RAJAPerf's usual 2-D GPU mapping.
        let cfg = gpusim::LaunchConfig::grid_block(
            gpusim::Dim3::d2(n_inner.div_ceil(B), n_outer),
            gpusim::Dim3::d1(B),
        );
        gpusim::launch(&cfg, |block| {
            let i = o0 + block.block_idx.y;
            block.threads(|t, _| {
                let j = t.global_id_x();
                if j < n_inner {
                    body(i, i0 + j);
                }
            });
        });
    }

    #[inline]
    fn forall_3d(
        outer: Range<usize>,
        mid: Range<usize>,
        inner: Range<usize>,
        body: &(impl Fn(usize, usize, usize) + Sync),
    ) {
        let (o0, n_outer) = (outer.start, outer.len());
        let (m0, n_mid) = (mid.start, mid.len());
        let (i0, n_inner) = (inner.start, inner.len());
        if n_outer == 0 || n_mid == 0 || n_inner == 0 {
            return;
        }
        let _region = gpusim::sanitizer::region("raja::forall_3d<SimGpu>");
        let cfg = gpusim::LaunchConfig::grid_block(
            gpusim::Dim3::d3(n_inner.div_ceil(B), n_mid, n_outer),
            gpusim::Dim3::d1(B),
        );
        gpusim::launch(&cfg, |block| {
            let i = o0 + block.block_idx.z;
            let j = m0 + block.block_idx.y;
            block.threads(|t, _| {
                let k = t.global_id_x();
                if k < n_inner {
                    body(i, j, i0 + k);
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::DevicePtr;

    #[test]
    fn policy_names() {
        assert_eq!(SeqExec::NAME, "seq");
        assert_eq!(ParExec::NAME, "par");
        assert_eq!(<SimGpuExec<256>>::NAME, "simgpu");
    }

    #[test]
    fn simgpu_counts_one_launch_per_forall() {
        gpusim::reset_stats();
        <SimGpuExec<128>>::forall(0..1000, &|_| {});
        let s = gpusim::stats();
        assert_eq!(s.launches, 1);
        assert_eq!(s.blocks, 8); // ceil(1000/128)
    }

    #[test]
    fn simgpu_2d_maps_full_space() {
        let (ni, nj) = (5, 300);
        let mut hits = vec![0u32; ni * nj];
        let p = DevicePtr::new(&mut hits);
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        <SimGpuExec<128>>::forall_2d(0..ni, 0..nj, &|i, j| unsafe {
            p.write(i * nj + j, p.read(i * nj + j) + 1)
        });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn offset_ranges_respected_in_2d_and_3d() {
        let collected = parking_lot_free_collect_2d::<SeqExec>(2..4, 7..9);
        assert_eq!(collected, vec![(2, 7), (2, 8), (3, 7), (3, 8)]);
    }

    fn parking_lot_free_collect_2d<P: ExecPolicy>(
        o: Range<usize>,
        i: Range<usize>,
    ) -> Vec<(usize, usize)> {
        let out = simsched::sync::Mutex::new(Vec::new());
        P::forall_2d(o, i, &|a, b| out.lock().unwrap().push((a, b)));
        let mut v = out.into_inner().unwrap();
        v.sort_unstable();
        v
    }
}
