//! Policy-generic reductions.
//!
//! RAJA expresses reductions with reducer objects (`RAJA::ReduceSum`,
//! `ReduceMin`, `ReduceMinLoc`, ...) captured by the loop body. The
//! functional Rust equivalent is a map/combine pair: [`forall_reduce`] runs
//! `map(i)` for each index and folds the results with an associative
//! `combine`, giving each back-end freedom to partition the fold —
//! sequential running fold, rayon tree reduction, or the simulated device's
//! two-stage (block-local shared-memory tree, then host combine) reduction,
//! which is structurally the reduction CUDA/HIP RAJAPerf variants perform.
//!
//! Multi-value reductions (the suite's `REDUCE3_INT`, `REDUCE_STRUCT`) fall
//! out naturally by reducing tuples or small structs.

use crate::policy::{ExecPolicy, ParExec, SeqExec, SimGpuExec};
use rayon::prelude::*;
use std::ops::Range;

/// Reduce `map(i)` over `range` with the associative, commutative `combine`,
/// starting from `identity`, under execution policy `P`.
///
/// `identity` must be a true identity for `combine` (`combine(identity, x)
/// == x`); back-ends may inject it any number of times.
pub fn forall_reduce<P, T>(
    range: Range<usize>,
    identity: T,
    map: impl Fn(usize) -> T + Sync,
    combine: impl Fn(T, T) -> T + Sync,
) -> T
where
    P: ReducePolicy,
    T: Copy + Send + Sync,
{
    P::reduce(range, identity, &map, &combine)
}

/// Back-end hook for reductions. Implemented for the same policy types as
/// [`ExecPolicy`]; separate because reductions return a value.
pub trait ReducePolicy: ExecPolicy {
    /// Fold `map` over `range` with `combine`.
    fn reduce<T: Copy + Send + Sync>(
        range: Range<usize>,
        identity: T,
        map: &(impl Fn(usize) -> T + Sync),
        combine: &(impl Fn(T, T) -> T + Sync),
    ) -> T;
}

impl ReducePolicy for SeqExec {
    #[inline]
    fn reduce<T: Copy + Send + Sync>(
        range: Range<usize>,
        identity: T,
        map: &(impl Fn(usize) -> T + Sync),
        combine: &(impl Fn(T, T) -> T + Sync),
    ) -> T {
        let mut acc = identity;
        for i in range {
            acc = combine(acc, map(i));
        }
        acc
    }
}

impl ReducePolicy for ParExec {
    #[inline]
    fn reduce<T: Copy + Send + Sync>(
        range: Range<usize>,
        identity: T,
        map: &(impl Fn(usize) -> T + Sync),
        combine: &(impl Fn(T, T) -> T + Sync),
    ) -> T {
        range
            .into_par_iter()
            .fold(|| identity, |acc, i| combine(acc, map(i)))
            .reduce(|| identity, combine)
    }
}

impl<const B: usize> ReducePolicy for SimGpuExec<B> {
    fn reduce<T: Copy + Send + Sync>(
        range: Range<usize>,
        identity: T,
        map: &(impl Fn(usize) -> T + Sync),
        combine: &(impl Fn(T, T) -> T + Sync),
    ) -> T {
        let start = range.start;
        let n = range.len();
        if n == 0 {
            return identity;
        }
        let _region = gpusim::sanitizer::region("raja::reduce<SimGpu>");
        let nblocks = n.div_ceil(B);
        // Stage 1: each block folds its strip into a per-block partial
        // (shared-memory tree reduction on a real device).
        let mut partials = vec![identity; nblocks];
        let pp = gpusim::DevicePtr::new(&mut partials);
        let cfg = gpusim::LaunchConfig::linear(n, B);
        gpusim::launch(&cfg, |block| {
            let bx = block.block_idx.x;
            let mut acc = identity;
            block.threads(|t, _| {
                let i = t.global_id_x();
                if i < n {
                    acc = combine(acc, map(start + i));
                }
            });
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            unsafe { pp.write(bx, acc) };
        });
        // Stage 2: host combines the block partials (a second kernel /
        // device-wide pass on real hardware).
        partials.into_iter().fold(identity, combine)
    }
}

/// Sum reduction (RAJA `ReduceSum`).
pub fn reduce_sum<P: ReducePolicy, T>(range: Range<usize>, map: impl Fn(usize) -> T + Sync) -> T
where
    T: Copy + Send + Sync + Default + std::ops::Add<Output = T>,
{
    forall_reduce::<P, T>(range, T::default(), map, |a, b| a + b)
}

/// Minimum reduction (RAJA `ReduceMin`) for `f64`.
pub fn reduce_min<P: ReducePolicy>(range: Range<usize>, map: impl Fn(usize) -> f64 + Sync) -> f64 {
    forall_reduce::<P, f64>(range, f64::INFINITY, map, f64::min)
}

/// Maximum reduction (RAJA `ReduceMax`) for `f64`.
pub fn reduce_max<P: ReducePolicy>(range: Range<usize>, map: impl Fn(usize) -> f64 + Sync) -> f64 {
    forall_reduce::<P, f64>(range, f64::NEG_INFINITY, map, f64::max)
}

/// A value/location pair for loc-reductions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValLoc {
    /// The reduced value.
    pub val: f64,
    /// Index at which it occurred (`usize::MAX` when the range was empty).
    pub loc: usize,
}

/// Minimum-with-location reduction (RAJA `ReduceMinLoc`): the smallest value
/// and the *lowest* index attaining it, independent of execution order.
pub fn reduce_min_loc<P: ReducePolicy>(
    range: Range<usize>,
    map: impl Fn(usize) -> f64 + Sync,
) -> ValLoc {
    forall_reduce::<P, ValLoc>(
        range,
        ValLoc {
            val: f64::INFINITY,
            loc: usize::MAX,
        },
        |i| ValLoc { val: map(i), loc: i },
        |a, b| {
            if b.val < a.val || (b.val == a.val && b.loc < a.loc) {
                b
            } else {
                a
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37 + 11) % 101) as f64 - 50.0).collect()
    }

    fn check_all_policies(n: usize) {
        let d = data(n);
        let expect: f64 = d.iter().sum();
        let s_seq = reduce_sum::<SeqExec, f64>(0..n, |i| d[i]);
        let s_par = reduce_sum::<ParExec, f64>(0..n, |i| d[i]);
        let s_gpu = reduce_sum::<SimGpuExec<64>, f64>(0..n, |i| d[i]);
        assert!((s_seq - expect).abs() < 1e-9);
        assert!((s_par - expect).abs() < 1e-9);
        assert!((s_gpu - expect).abs() < 1e-9);
    }

    #[test]
    fn sum_matches_reference_on_various_sizes() {
        for n in [0, 1, 63, 64, 65, 1000] {
            check_all_policies(n);
        }
    }

    #[test]
    fn min_max_match_reference() {
        let n = 777;
        let d = data(n);
        let lo = d.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(reduce_min::<ParExec>(0..n, |i| d[i]), lo);
        assert_eq!(reduce_max::<SimGpuExec<128>>(0..n, |i| d[i]), hi);
    }

    #[test]
    fn min_loc_prefers_lowest_index_on_ties() {
        // Value -50 occurs multiple times in this data; all policies must
        // report its first occurrence.
        let n = 500;
        let d = data(n);
        let lo = d.iter().cloned().fold(f64::INFINITY, f64::min);
        let first = d.iter().position(|&v| v == lo).unwrap();
        for loc in [
            reduce_min_loc::<SeqExec>(0..n, |i| d[i]).loc,
            reduce_min_loc::<ParExec>(0..n, |i| d[i]).loc,
            reduce_min_loc::<SimGpuExec<32>>(0..n, |i| d[i]).loc,
        ] {
            assert_eq!(loc, first);
        }
    }

    #[test]
    fn empty_range_returns_identity() {
        assert_eq!(reduce_sum::<SeqExec, f64>(3..3, |_| 1.0), 0.0);
        assert_eq!(reduce_min::<ParExec>(0..0, |_| 1.0), f64::INFINITY);
        let ml = reduce_min_loc::<SimGpuExec<8>>(0..0, |_| 1.0);
        assert_eq!(ml.loc, usize::MAX);
    }

    #[test]
    fn tuple_multireduce() {
        // REDUCE3-style: sum, min, max in a single traversal.
        let n = 300;
        let d = data(n);
        let (s, lo, hi) = forall_reduce::<ParExec, (f64, f64, f64)>(
            0..n,
            (0.0, f64::INFINITY, f64::NEG_INFINITY),
            |i| (d[i], d[i], d[i]),
            |a, b| (a.0 + b.0, a.1.min(b.1), a.2.max(b.2)),
        );
        assert!((s - d.iter().sum::<f64>()).abs() < 1e-9);
        assert_eq!(lo, d.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(hi, d.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn integer_sum() {
        let n = 1000;
        assert_eq!(
            reduce_sum::<SimGpuExec<256>, i64>(0..n, |i| i as i64),
            (n as i64 - 1) * n as i64 / 2
        );
    }
}
