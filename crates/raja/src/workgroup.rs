//! Workgroup (fused-loop) construct.
//!
//! RAJA's `WorkPool`/`WorkGroup`/`WorkSite` lets an application enqueue
//! many small loops and run them as **one** fused kernel — on GPUs this
//! collapses dozens of tiny launches (e.g. one per halo direction) into a
//! single launch, which is precisely the `HALO_*_FUSED` vs unfused
//! comparison in the suite's Comm group.
//!
//! The Rust shape: [`WorkPool::enqueue`] collects `(range, body)` pairs;
//! [`WorkPool::instantiate`] freezes them into a [`WorkGroup`]; and
//! [`WorkGroup::run`] executes *all* enqueued iterations as a single
//! policy-level loop over a flattened index space (one `forall` — one
//! simulated-device launch).
//!
//! # Example
//! ```
//! use raja::policy::SeqExec;
//! use raja::workgroup::WorkPool;
//! use raja::DevicePtr;
//!
//! let mut a = vec![0.0f64; 10];
//! let mut b = vec![0.0f64; 20];
//! let (ap, bp) = (DevicePtr::new(&mut a), DevicePtr::new(&mut b));
//! let mut pool = WorkPool::new();
//! pool.enqueue(0..10, move |i| unsafe { ap.write(i, 1.0) });
//! pool.enqueue(0..20, move |i| unsafe { bp.write(i, 2.0) });
//! let group = pool.instantiate();
//! assert_eq!(group.total_iterations(), 30);
//! group.run::<SeqExec>(); // a single fused loop
//! assert!(a.iter().all(|&v| v == 1.0));
//! assert!(b.iter().all(|&v| v == 2.0));
//! ```

use crate::policy::ExecPolicy;
use std::ops::Range;

/// One enqueued loop: an iteration range and its body.
struct WorkItem<'a> {
    range: Range<usize>,
    body: Box<dyn Fn(usize) + Sync + 'a>,
}

/// Collects loops to be fused (RAJA `WorkPool`).
#[derive(Default)]
pub struct WorkPool<'a> {
    items: Vec<WorkItem<'a>>,
}

impl<'a> WorkPool<'a> {
    /// An empty pool.
    pub fn new() -> WorkPool<'a> {
        WorkPool { items: Vec::new() }
    }

    /// Enqueue a loop over `range` with `body`. Bodies must tolerate
    /// unordered, concurrent invocation — both across a single loop's
    /// iterations *and* across enqueued loops (the fused execution
    /// interleaves them).
    pub fn enqueue(&mut self, range: Range<usize>, body: impl Fn(usize) + Sync + 'a) {
        self.items.push(WorkItem {
            range,
            body: Box::new(body),
        });
    }

    /// Number of loops enqueued so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been enqueued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Freeze the pool into an executable [`WorkGroup`] (RAJA
    /// `WorkPool::instantiate`). Consumes the pool; the flattened segment
    /// table is built once and reused across runs.
    pub fn instantiate(self) -> WorkGroup<'a> {
        let mut offsets = Vec::with_capacity(self.items.len());
        let mut total = 0usize;
        for item in &self.items {
            offsets.push(total);
            total += item.range.len();
        }
        WorkGroup {
            items: self.items,
            offsets,
            total,
        }
    }
}

/// An instantiated set of fused loops (RAJA `WorkGroup`).
pub struct WorkGroup<'a> {
    items: Vec<WorkItem<'a>>,
    /// Prefix offsets of each loop within the fused index space.
    offsets: Vec<usize>,
    total: usize,
}

impl WorkGroup<'_> {
    /// Total iterations across all fused loops.
    pub fn total_iterations(&self) -> usize {
        self.total
    }

    /// Number of fused loops.
    pub fn num_loops(&self) -> usize {
        self.items.len()
    }

    /// Execute every enqueued iteration under policy `P` as one fused
    /// loop — a single launch on the simulated device (RAJA
    /// `WorkGroup::run`, returning the `WorkSite` upstream; here the run
    /// is synchronous so no site handle is needed).
    pub fn run<P: ExecPolicy>(&self) {
        let total = self.total;
        if total == 0 {
            return;
        }
        crate::forall::<P>(0..total, |flat| {
            // Binary-search the segment table for the owning loop.
            let idx = match self.offsets.binary_search(&flat) {
                Ok(exact) => exact,
                Err(insert) => insert - 1,
            };
            let item = &self.items[idx];
            let local = flat - self.offsets[idx];
            (item.body)(item.range.start + local);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ParExec, SeqExec, SimGpuExec};
    use crate::DevicePtr;

    #[test]
    fn fused_loops_cover_all_ranges() {
        let mut a = vec![0u32; 7];
        let mut b = vec![0u32; 13];
        let mut c = vec![0u32; 29];
        {
            let (ap, bp, cp) = (
                DevicePtr::new(&mut a),
                DevicePtr::new(&mut b),
                DevicePtr::new(&mut c),
            );
            let mut pool = WorkPool::new();
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            pool.enqueue(0..7, move |i| unsafe { ap.write(i, ap.read(i) + 1) });
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            pool.enqueue(0..13, move |i| unsafe { bp.write(i, bp.read(i) + 1) });
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            pool.enqueue(0..29, move |i| unsafe { cp.write(i, cp.read(i) + 1) });
            let group = pool.instantiate();
            assert_eq!(group.total_iterations(), 49);
            assert_eq!(group.num_loops(), 3);
            group.run::<ParExec>();
        }
        assert!(a.iter().all(|&v| v == 1));
        assert!(b.iter().all(|&v| v == 1));
        assert!(c.iter().all(|&v| v == 1));
    }

    #[test]
    fn fused_run_is_a_single_device_launch() {
        gpusim::reset_stats();
        let mut bufs: Vec<Vec<f64>> = (0..26).map(|_| vec![0.0; 50]).collect();
        {
            let mut pool = WorkPool::new();
            for buf in bufs.iter_mut() {
                let p = DevicePtr::new(buf);
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                pool.enqueue(0..50, move |i| unsafe { p.write(i, 1.0) });
            }
            pool.instantiate().run::<SimGpuExec<128>>();
        }
        assert_eq!(gpusim::stats().launches, 1, "26 loops, one launch");
        assert!(bufs.iter().all(|b| b.iter().all(|&v| v == 1.0)));
    }

    #[test]
    fn nonzero_range_starts_are_respected() {
        let mut data = vec![0u32; 10];
        {
            let p = DevicePtr::new(&mut data);
            let mut pool = WorkPool::new();
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            pool.enqueue(3..6, move |i| unsafe { p.write(i, 7) });
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            pool.enqueue(8..10, move |i| unsafe { p.write(i, 9) });
            pool.instantiate().run::<SeqExec>();
        }
        assert_eq!(data, vec![0, 0, 0, 7, 7, 7, 0, 0, 9, 9]);
    }

    #[test]
    fn empty_pool_and_empty_ranges() {
        let pool = WorkPool::new();
        let group = pool.instantiate();
        assert_eq!(group.total_iterations(), 0);
        group.run::<SeqExec>(); // no-op

        let mut hit = false;
        {
            let p = DevicePtr::new(std::slice::from_mut(&mut hit));
            let mut pool = WorkPool::new();
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            pool.enqueue(5..5, move |_| unsafe { p.write(0, true) });
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            pool.enqueue(0..1, move |_| unsafe { p.write(0, true) });
            pool.instantiate().run::<SeqExec>();
        }
        assert!(hit, "the non-empty range still ran");
    }

    #[test]
    fn group_is_reusable() {
        let mut count = vec![0u32; 4];
        {
            let p = DevicePtr::new(&mut count);
            let mut pool = WorkPool::new();
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            pool.enqueue(0..4, move |i| unsafe { p.write(i, p.read(i) + 1) });
            let group = pool.instantiate();
            group.run::<SeqExec>();
            group.run::<SeqExec>();
        }
        assert!(count.iter().all(|&c| c == 2));
    }
}
