//! Policy-generic inclusive and exclusive scans (prefix sums).
//!
//! RAJA provides `RAJA::inclusive_scan` / `exclusive_scan`; the suite's
//! `SCAN`, `INDEXLIST_3LOOP`, and the fused halo kernels rely on them. The
//! parallel and simulated-device back-ends use the classic three-phase
//! blocked scan (block-local scan → scan of block totals → offset fixup),
//! which is the same structure GPU scan libraries (cub / rocPRIM) use.

use crate::policy::{ExecPolicy, ParExec, SeqExec, SimGpuExec};
use rayon::prelude::*;
use std::ops::Range;

/// Back-end hook for scans over `f64` data produced by an index map.
pub trait ScanPolicy: ExecPolicy {
    /// Writes the exclusive prefix sums of `map(range)` into `out` (so
    /// `out[0] == 0`) and returns the grand total.
    fn exclusive_scan(
        range: Range<usize>,
        out: &mut [f64],
        map: &(impl Fn(usize) -> f64 + Sync),
    ) -> f64;
}

impl ScanPolicy for SeqExec {
    fn exclusive_scan(
        range: Range<usize>,
        out: &mut [f64],
        map: &(impl Fn(usize) -> f64 + Sync),
    ) -> f64 {
        assert_eq!(out.len(), range.len(), "output length must match range");
        let mut acc = 0.0;
        for (slot, i) in out.iter_mut().zip(range) {
            *slot = acc;
            acc += map(i);
        }
        acc
    }
}

/// Shared blocked implementation for the parallel back-ends.
fn blocked_exclusive_scan(
    range: Range<usize>,
    out: &mut [f64],
    map: &(impl Fn(usize) -> f64 + Sync),
    block: usize,
    parallel: bool,
) -> f64 {
    assert_eq!(out.len(), range.len(), "output length must match range");
    let n = range.len();
    if n == 0 {
        return 0.0;
    }
    let start = range.start;
    let nblocks = n.div_ceil(block);

    // Phase 1: block-local exclusive scans, recording each block's total.
    let mut totals = vec![0.0f64; nblocks];
    let scan_block = |b: usize, chunk: &mut [f64]| -> f64 {
        let base = b * block;
        let mut acc = 0.0;
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = acc;
            acc += map(start + base + off);
        }
        acc
    };
    if parallel {
        out.par_chunks_mut(block)
            .zip(totals.par_iter_mut())
            .enumerate()
            .for_each(|(b, (chunk, total))| *total = scan_block(b, chunk));
    } else {
        for (b, (chunk, total)) in out.chunks_mut(block).zip(totals.iter_mut()).enumerate() {
            *total = scan_block(b, chunk);
        }
    }

    // Phase 2: sequential exclusive scan of the (small) block totals.
    let mut acc = 0.0;
    let mut offsets = vec![0.0f64; nblocks];
    for (b, t) in totals.iter().enumerate() {
        offsets[b] = acc;
        acc += t;
    }

    // Phase 3: add each block's offset to its elements.
    if parallel {
        out.par_chunks_mut(block)
            .zip(offsets.par_iter())
            .for_each(|(chunk, &off)| {
                for v in chunk {
                    *v += off;
                }
            });
    } else {
        for (chunk, &off) in out.chunks_mut(block).zip(offsets.iter()) {
            for v in chunk {
                *v += off;
            }
        }
    }
    acc
}

impl ScanPolicy for ParExec {
    fn exclusive_scan(
        range: Range<usize>,
        out: &mut [f64],
        map: &(impl Fn(usize) -> f64 + Sync),
    ) -> f64 {
        blocked_exclusive_scan(range, out, map, 4096, true)
    }
}

impl<const B: usize> ScanPolicy for SimGpuExec<B> {
    fn exclusive_scan(
        range: Range<usize>,
        out: &mut [f64],
        map: &(impl Fn(usize) -> f64 + Sync),
    ) -> f64 {
        // Count the three device passes a real GPU scan performs, so that
        // launch-overhead accounting stays honest, then run the blocked scan.
        let cfg = gpusim::LaunchConfig::linear(range.len().max(1), B);
        for _ in 0..3 {
            gpusim::launch(&cfg, |_| {});
        }
        blocked_exclusive_scan(range, out, map, B, false)
    }
}

/// Exclusive scan: `out[k] = sum of map(range[0..k])`; returns the total.
pub fn exclusive_scan<P: ScanPolicy>(
    range: Range<usize>,
    out: &mut [f64],
    map: impl Fn(usize) -> f64 + Sync,
) -> f64 {
    P::exclusive_scan(range, out, &map)
}

/// Inclusive scan: `out[k] = sum of map(range[0..=k])`; returns the total.
pub fn inclusive_scan<P: ScanPolicy>(
    range: Range<usize>,
    out: &mut [f64],
    map: impl Fn(usize) -> f64 + Sync,
) -> f64 {
    let total = P::exclusive_scan(range.clone(), out, &map);
    // Shift from exclusive to inclusive by adding each element's own value.
    let start = range.start;
    for (k, slot) in out.iter_mut().enumerate() {
        *slot += map(start + k);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 13 + 5) % 17) as f64 - 8.0).collect()
    }

    fn reference_exclusive(d: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; d.len()];
        let mut acc = 0.0;
        for (o, v) in out.iter_mut().zip(d) {
            *o = acc;
            acc += v;
        }
        out
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn exclusive_scan_matches_reference_all_policies() {
        for n in [0, 1, 5, 64, 65, 1000, 4097] {
            let d = data(n);
            let expect = reference_exclusive(&d);
            let total_ref: f64 = d.iter().sum();

            let mut out = vec![0.0; n];
            let t = exclusive_scan::<SeqExec>(0..n, &mut out, |i| d[i]);
            assert_close(&out, &expect);
            assert!((t - total_ref).abs() < 1e-9);

            let mut out = vec![0.0; n];
            let t = exclusive_scan::<ParExec>(0..n, &mut out, |i| d[i]);
            assert_close(&out, &expect);
            assert!((t - total_ref).abs() < 1e-9);

            let mut out = vec![0.0; n];
            let t = exclusive_scan::<SimGpuExec<64>>(0..n, &mut out, |i| d[i]);
            assert_close(&out, &expect);
            assert!((t - total_ref).abs() < 1e-9);
        }
    }

    #[test]
    fn inclusive_scan_matches_reference() {
        let n = 333;
        let d = data(n);
        let mut expect = reference_exclusive(&d);
        for (e, v) in expect.iter_mut().zip(&d) {
            *e += v;
        }
        let mut out = vec![0.0; n];
        inclusive_scan::<ParExec>(0..n, &mut out, |i| d[i]);
        assert_close(&out, &expect);
        let mut out = vec![0.0; n];
        inclusive_scan::<SimGpuExec<32>>(0..n, &mut out, |i| d[i]);
        assert_close(&out, &expect);
    }

    #[test]
    fn offset_range_scans_correct_window() {
        let d = data(100);
        let mut out = vec![0.0; 10];
        exclusive_scan::<SeqExec>(40..50, &mut out, |i| d[i]);
        let expect = reference_exclusive(&d[40..50]);
        assert_close(&out, &expect);
    }

    #[test]
    #[should_panic(expected = "output length must match range")]
    fn mismatched_output_length_panics() {
        let mut out = vec![0.0; 3];
        exclusive_scan::<SeqExec>(0..5, &mut out, |_| 1.0);
    }

    #[test]
    fn simgpu_scan_counts_three_launches() {
        gpusim::reset_stats();
        let mut out = vec![0.0; 100];
        exclusive_scan::<SimGpuExec<32>>(0..100, &mut out, |_| 1.0);
        assert_eq!(gpusim::stats().launches, 3);
    }
}
