//! A RAJA-style performance-portability layer for Rust.
//!
//! [RAJA](https://github.com/LLNL/RAJA) lets C++ applications write each
//! loop kernel once against policy-generic execution templates (`forall`,
//! `kernel`, reducers, scans, sorts, `View`s) and select the execution
//! back-end (sequential, OpenMP, CUDA, HIP, ...) at compile time. The RAJA
//! Performance Suite compares kernels written through this layer ("RAJA
//! variants") against direct implementations ("Base variants").
//!
//! This crate reproduces that abstraction boundary in Rust:
//!
//! * [`policy`] — execution policies: [`policy::SeqExec`] (sequential),
//!   [`policy::ParExec`] (host threads via rayon, the stand-in for OpenMP),
//!   and [`policy::SimGpuExec`] (the simulated GPU device from [`gpusim`],
//!   the stand-in for CUDA/HIP/SYCL back-ends).
//! * [`forall`] / [`forall_2d`] / [`forall_3d`] — policy-generic loop
//!   execution templates.
//! * [`reduce`] — policy-generic reductions, including multi-value
//!   reductions and min/max-with-location.
//! * [`scan`] — inclusive/exclusive scans.
//! * [`sort`] — sorts and key/value pair sorts.
//! * [`atomic`] — portable atomic operations ([`atomic::AtomicF64`]).
//! * [`views`] — multi-dimensional [`views::View`]s with permutable
//!   [`views::Layout`]s and offset layouts.
//!
//! Kernel bodies receive plain indices and perform their own indexing, as in
//! RAJA. Mutable aliasing across loop iterations is expressed through
//! [`DevicePtr`] (re-exported from `gpusim`), the moral equivalent of the
//! raw pointers RAJA kernels capture; safety obligations (disjoint writes)
//! sit with the kernel author exactly as they do in C++.
//!
//! # Example
//! ```
//! use raja::policy::SeqExec;
//! use raja::DevicePtr;
//!
//! let n = 100;
//! let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
//! let mut y = vec![1.0f64; n];
//! let a = 2.0;
//! let yp = DevicePtr::new(&mut y);
//! // DAXPY through the portability layer:
//! raja::forall::<SeqExec>(0..n, |i| unsafe { yp.write(i, a * x[i] + yp.read(i)) });
//! assert_eq!(y[3], 7.0);
//! let total = raja::reduce::reduce_sum::<SeqExec, _>(0..n, |i| y[i]);
//! assert!(total > 0.0);
//! ```

pub mod atomic;
pub mod policy;
pub mod reduce;
pub mod scan;
pub mod sort;
pub mod views;
pub mod workgroup;

pub use gpusim::DevicePtr;
pub use policy::{ExecPolicy, ParExec, SeqExec, SimGpuExec};

/// Execute `body(i)` for every `i` in `range` under execution policy `P`.
///
/// This is RAJA's `RAJA::forall<ExecPolicy>(RAJA::RangeSegment(b, e), body)`.
/// The body must tolerate unordered and concurrent invocation (it receives
/// each index exactly once).
#[inline]
pub fn forall<P: ExecPolicy>(range: std::ops::Range<usize>, body: impl Fn(usize) + Sync) {
    P::forall(range, &body);
}

/// Execute `body(i, j)` over the outer×inner iteration space under policy
/// `P` (RAJA's `kernel` with a two-level nested policy). The outer dimension
/// is parallelized; the inner is the contiguous/fast dimension.
#[inline]
pub fn forall_2d<P: ExecPolicy>(
    outer: std::ops::Range<usize>,
    inner: std::ops::Range<usize>,
    body: impl Fn(usize, usize) + Sync,
) {
    P::forall_2d(outer, inner, &body);
}

/// Execute `body(i, j, k)` over a three-level nested iteration space under
/// policy `P`; `i` is the outermost (parallel) dimension, `k` the innermost.
#[inline]
pub fn forall_3d<P: ExecPolicy>(
    outer: std::ops::Range<usize>,
    mid: std::ops::Range<usize>,
    inner: std::ops::Range<usize>,
    body: impl Fn(usize, usize, usize) + Sync,
) {
    P::forall_3d(outer, mid, inner, &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ParExec, SeqExec, SimGpuExec};

    fn check_forall<P: ExecPolicy>() {
        let n = 1000;
        let mut hits = vec![0u32; n];
        let p = DevicePtr::new(&mut hits);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        forall::<P>(0..n, |i| unsafe { p.write(i, p.read(i) + 1) });
        assert!(hits.iter().all(|&h| h == 1), "every index hit exactly once");
    }

    #[test]
    fn forall_seq_visits_all() {
        check_forall::<SeqExec>();
    }

    #[test]
    fn forall_par_visits_all() {
        check_forall::<ParExec>();
    }

    #[test]
    fn forall_simgpu_visits_all() {
        check_forall::<SimGpuExec<256>>();
    }

    fn check_forall_2d<P: ExecPolicy>() {
        let (ni, nj) = (37, 53);
        let mut hits = vec![0u32; ni * nj];
        let p = DevicePtr::new(&mut hits);
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        forall_2d::<P>(0..ni, 0..nj, |i, j| unsafe {
            p.write(i * nj + j, p.read(i * nj + j) + 1)
        });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn forall_2d_all_policies() {
        check_forall_2d::<SeqExec>();
        check_forall_2d::<ParExec>();
        check_forall_2d::<SimGpuExec<64>>();
    }

    fn check_forall_3d<P: ExecPolicy>() {
        let (ni, nj, nk) = (11, 13, 17);
        let mut hits = vec![0u32; ni * nj * nk];
        let p = DevicePtr::new(&mut hits);
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        forall_3d::<P>(0..ni, 0..nj, 0..nk, |i, j, k| unsafe {
            let idx = (i * nj + j) * nk + k;
            p.write(idx, p.read(idx) + 1)
        });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn forall_3d_all_policies() {
        check_forall_3d::<SeqExec>();
        check_forall_3d::<ParExec>();
        check_forall_3d::<SimGpuExec<64>>();
    }

    #[test]
    fn empty_range_is_noop() {
        let mut touched = false;
        let p = DevicePtr::new(std::slice::from_mut(&mut touched));
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        forall::<SeqExec>(5..5, |_| unsafe { p.write(0, true) });
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        forall::<ParExec>(5..5, |_| unsafe { p.write(0, true) });
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        forall::<SimGpuExec<128>>(0..0, |_| unsafe { p.write(0, true) });
        assert!(!touched);
    }

    #[test]
    fn nonzero_range_start_offsets_indices() {
        // SeqExec is ordered, so collecting is deterministic.
        let seen = simsched::sync::Mutex::new(Vec::new());
        forall::<SeqExec>(10..15, |i| seen.lock().unwrap().push(i));
        assert_eq!(seen.into_inner().unwrap(), vec![10, 11, 12, 13, 14]);
    }
}
