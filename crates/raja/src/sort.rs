//! Policy-generic sorts and key/value pair sorts.
//!
//! RAJA's `RAJA::sort` / `RAJA::sort_pairs` dispatch to `std::sort` on the
//! host and to vendor device libraries (cub `DeviceRadixSort`, rocPRIM) on
//! GPUs. The suite's `SORT` and `SORTPAIRS` kernels exercise them. Here the
//! sequential back-end uses the standard-library pattern-defeating
//! quicksort, the parallel back-end rayon's parallel sort, and the simulated
//! device an LSD radix sort on the `f64` key bits — the same algorithm
//! family the vendor GPU libraries implement.

use crate::policy::{ParExec, SeqExec, SimGpuExec};
use rayon::prelude::*;

/// Back-end hook for sorting.
pub trait SortPolicy {
    /// Sort `keys` ascending (total order over f64, NaN-free data assumed as
    /// in RAJAPerf).
    fn sort(keys: &mut [f64]);

    /// Sort `keys` ascending, applying the same permutation to `vals`.
    /// Stable with respect to equal keys.
    fn sort_pairs(keys: &mut [f64], vals: &mut [i32]);
}

impl SortPolicy for SeqExec {
    fn sort(keys: &mut [f64]) {
        keys.sort_unstable_by(f64::total_cmp);
    }

    fn sort_pairs(keys: &mut [f64], vals: &mut [i32]) {
        sort_pairs_by_index(keys, vals, |perm, k| {
            perm.sort_by(|&a, &b| k[a].total_cmp(&k[b]));
        });
    }
}

impl SortPolicy for ParExec {
    fn sort(keys: &mut [f64]) {
        keys.par_sort_unstable_by(f64::total_cmp);
    }

    fn sort_pairs(keys: &mut [f64], vals: &mut [i32]) {
        sort_pairs_by_index(keys, vals, |perm, k| {
            perm.par_sort_by(|&a, &b| k[a].total_cmp(&k[b]));
        });
    }
}

impl<const B: usize> SortPolicy for SimGpuExec<B> {
    fn sort(keys: &mut [f64]) {
        // Model the device-library call: a handful of radix passes, each a
        // kernel launch on real hardware.
        let n = keys.len().max(1);
        let cfg = gpusim::LaunchConfig::linear(n, B);
        for _ in 0..RADIX_PASSES {
            gpusim::launch(&cfg, |_| {});
        }
        radix_sort_f64(keys, None);
    }

    fn sort_pairs(keys: &mut [f64], vals: &mut [i32]) {
        let n = keys.len().max(1);
        let cfg = gpusim::LaunchConfig::linear(n, B);
        for _ in 0..RADIX_PASSES {
            gpusim::launch(&cfg, |_| {});
        }
        radix_sort_f64(keys, Some(vals));
    }
}

/// Radix passes for a 64-bit key at 8 bits per digit.
const RADIX_PASSES: usize = 8;

/// Map f64 bits to an order-preserving u64 key (flip sign bit for positives,
/// full complement for negatives) — the standard radix-sortable encoding.
#[inline]
fn f64_to_ordered_bits(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

#[inline]
fn ordered_bits_to_f64(b: u64) -> f64 {
    let raw = if b >> 63 == 1 { b & !(1 << 63) } else { !b };
    f64::from_bits(raw)
}

/// Stable LSD radix sort over f64 keys with optional value payload.
fn radix_sort_f64(keys: &mut [f64], vals: Option<&mut [i32]>) {
    let n = keys.len();
    if n <= 1 {
        return;
    }
    if let Some(v) = &vals {
        assert_eq!(v.len(), n, "sort_pairs: keys/vals length mismatch");
    }
    let mut cur: Vec<u64> = keys.iter().map(|&k| f64_to_ordered_bits(k)).collect();
    let mut buf = vec![0u64; n];
    let mut vcur: Vec<i32> = vals.as_deref().map(|v| v.to_vec()).unwrap_or_default();
    let mut vbuf = vec![0i32; vcur.len()];
    for pass in 0..RADIX_PASSES {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for &k in &cur {
            counts[((k >> shift) & 0xff) as usize] += 1;
        }
        let mut pos = [0usize; 256];
        let mut acc = 0;
        for (p, c) in pos.iter_mut().zip(counts) {
            *p = acc;
            acc += c;
        }
        for (idx, &k) in cur.iter().enumerate() {
            let d = ((k >> shift) & 0xff) as usize;
            buf[pos[d]] = k;
            if !vcur.is_empty() {
                vbuf[pos[d]] = vcur[idx];
            }
            pos[d] += 1;
        }
        std::mem::swap(&mut cur, &mut buf);
        std::mem::swap(&mut vcur, &mut vbuf);
    }
    for (k, &b) in keys.iter_mut().zip(&cur) {
        *k = ordered_bits_to_f64(b);
    }
    if let Some(v) = vals {
        v.copy_from_slice(&vcur);
    }
}

/// Shared stable pair-sort driver: build a permutation, sort it by key, and
/// apply it to both arrays.
fn sort_pairs_by_index(
    keys: &mut [f64],
    vals: &mut [i32],
    sort_perm: impl FnOnce(&mut Vec<usize>, &[f64]),
) {
    assert_eq!(keys.len(), vals.len(), "sort_pairs: keys/vals length mismatch");
    let mut perm: Vec<usize> = (0..keys.len()).collect();
    sort_perm(&mut perm, keys);
    let sorted_keys: Vec<f64> = perm.iter().map(|&i| keys[i]).collect();
    let sorted_vals: Vec<i32> = perm.iter().map(|&i| vals[i]).collect();
    keys.copy_from_slice(&sorted_keys);
    vals.copy_from_slice(&sorted_vals);
}

/// Sort `keys` ascending under policy `P`.
pub fn sort<P: SortPolicy>(keys: &mut [f64]) {
    P::sort(keys);
}

/// Sort `keys` ascending under policy `P`, permuting `vals` identically.
pub fn sort_pairs<P: SortPolicy>(keys: &mut [f64], vals: &mut [i32]) {
    P::sort_pairs(keys, vals);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (((i * 2654435761_usize) % 10007) as f64 - 5000.0) / 3.0)
            .collect()
    }

    fn is_sorted(v: &[f64]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn sort_all_policies() {
        for n in [0, 1, 2, 100, 1000] {
            let orig = data(n);
            for run in 0..3 {
                let mut v = orig.clone();
                match run {
                    0 => sort::<SeqExec>(&mut v),
                    1 => sort::<ParExec>(&mut v),
                    _ => sort::<SimGpuExec<128>>(&mut v),
                }
                assert!(is_sorted(&v), "policy {run}, n={n}");
                let mut expect = orig.clone();
                expect.sort_unstable_by(f64::total_cmp);
                assert_eq!(v, expect, "sorted output is a permutation");
            }
        }
    }

    #[test]
    fn sort_handles_negatives_and_zeros() {
        let mut v = vec![3.0, -1.5, 0.0, -0.0, 2.5, -7.25, 0.0];
        sort::<SimGpuExec<32>>(&mut v);
        assert!(is_sorted(&v));
        assert_eq!(v[0], -7.25);
        assert_eq!(*v.last().unwrap(), 3.0);
    }

    #[test]
    fn sort_pairs_keeps_pairs_together() {
        for run in 0..3 {
            let n = 500;
            let mut keys = data(n);
            let mut vals: Vec<i32> = (0..n as i32).collect();
            match run {
                0 => sort_pairs::<SeqExec>(&mut keys, &mut vals),
                1 => sort_pairs::<ParExec>(&mut keys, &mut vals),
                _ => sort_pairs::<SimGpuExec<64>>(&mut keys, &mut vals),
            }
            assert!(is_sorted(&keys));
            let orig = data(n);
            for (k, v) in keys.iter().zip(&vals) {
                assert_eq!(orig[*v as usize], *k, "value still points at its key");
            }
        }
    }

    #[test]
    fn sort_pairs_is_stable_for_equal_keys() {
        let mut keys = vec![1.0, 0.0, 1.0, 0.0, 1.0];
        let mut vals = vec![10, 20, 11, 21, 12];
        sort_pairs::<SeqExec>(&mut keys, &mut vals);
        assert_eq!(vals, vec![20, 21, 10, 11, 12]);
        let mut keys = vec![1.0, 0.0, 1.0, 0.0, 1.0];
        let mut vals = vec![10, 20, 11, 21, 12];
        sort_pairs::<SimGpuExec<8>>(&mut keys, &mut vals);
        assert_eq!(vals, vec![20, 21, 10, 11, 12], "radix pair sort is stable");
    }

    #[test]
    fn simgpu_sort_counts_device_passes() {
        gpusim::reset_stats();
        let mut v = data(100);
        sort::<SimGpuExec<64>>(&mut v);
        assert_eq!(gpusim::stats().launches as usize, RADIX_PASSES);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sort_pairs_length_mismatch_panics() {
        let mut keys = vec![1.0, 2.0];
        let mut vals = vec![1];
        sort_pairs::<SeqExec>(&mut keys, &mut vals);
    }
}
