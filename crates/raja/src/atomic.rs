//! Portable atomic operations.
//!
//! RAJA's `RAJA::atomicAdd<atomic_policy>` works uniformly across host and
//! device back-ends. The suite's `ATOMIC`, `PI_ATOMIC`, `DAXPY_ATOMIC`, and
//! `HISTOGRAM` kernels depend on it. Rust has no `AtomicF64`, so this module
//! provides one via compare-exchange on the bit representation — the exact
//! technique pre-sm_60 CUDA used for double-precision `atomicAdd`.

use std::sync::atomic::{AtomicU64, Ordering};

/// A `f64` with atomic read-modify-write operations.
///
/// All operations use relaxed ordering: RAJAPerf atomics are pure data
/// reductions with no cross-thread control dependencies, matching
/// `RAJA::atomicAdd`'s semantics (device atomics are unordered too).
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Create with an initial value.
    pub fn new(v: f64) -> AtomicF64 {
        AtomicF64 {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Atomically load the current value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Atomically replace the current value.
    #[inline]
    pub fn store(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically add `v`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, v: f64) -> f64 {
        self.fetch_update(|old| old + v)
    }

    /// Atomically subtract `v`, returning the previous value.
    #[inline]
    pub fn fetch_sub(&self, v: f64) -> f64 {
        self.fetch_update(|old| old - v)
    }

    /// Atomically take `max(current, v)`, returning the previous value.
    #[inline]
    pub fn fetch_max(&self, v: f64) -> f64 {
        self.fetch_update(|old| old.max(v))
    }

    /// Atomically take `min(current, v)`, returning the previous value.
    #[inline]
    pub fn fetch_min(&self, v: f64) -> f64 {
        self.fetch_update(|old| old.min(v))
    }

    /// CAS loop applying `f` to the current value; returns the old value.
    #[inline]
    fn fetch_update(&self, f: impl Fn(f64) -> f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let new = f(old).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return old,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Consume the atomic and return the final value.
    pub fn into_inner(self) -> f64 {
        f64::from_bits(self.bits.into_inner())
    }
}

/// View a mutable `f64` slice as a slice of [`AtomicF64`] for the duration
/// of a kernel — the portable equivalent of passing a device pointer to an
/// atomic kernel. Safe because `AtomicF64` is `repr(transparent)` over
/// `AtomicU64`, which has the same layout as `u64`/`f64`.
pub fn as_atomic_slice(data: &mut [f64]) -> &[AtomicF64] {
    // SAFETY: f64 and AtomicF64 have identical size/alignment (both are
    // 8-byte plain data); the exclusive borrow guarantees no non-atomic
    // access can occur while the atomic view is alive.
    unsafe { std::slice::from_raw_parts(data.as_ptr() as *const AtomicF64, data.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ParExec, SimGpuExec};
    use crate::{forall, ExecPolicy};

    #[test]
    fn fetch_add_accumulates() {
        let a = AtomicF64::new(1.0);
        assert_eq!(a.fetch_add(2.5), 1.0);
        assert_eq!(a.load(), 3.5);
    }

    #[test]
    fn fetch_min_max() {
        let a = AtomicF64::new(5.0);
        a.fetch_max(7.0);
        assert_eq!(a.load(), 7.0);
        a.fetch_max(3.0);
        assert_eq!(a.load(), 7.0);
        a.fetch_min(-1.0);
        assert_eq!(a.load(), -1.0);
    }

    fn concurrent_sum<P: ExecPolicy>() {
        let n = 10_000;
        let acc = AtomicF64::new(0.0);
        forall::<P>(0..n, |_| {
            acc.fetch_add(1.0);
        });
        assert_eq!(acc.load(), n as f64);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        concurrent_sum::<ParExec>();
        concurrent_sum::<SimGpuExec<256>>();
    }

    #[test]
    fn atomic_slice_view_roundtrips() {
        let mut data = vec![0.0f64; 8];
        {
            let atoms = as_atomic_slice(&mut data);
            for (i, a) in atoms.iter().enumerate() {
                a.fetch_add(i as f64);
            }
        }
        assert_eq!(data[3], 3.0);
        assert_eq!(data[7], 7.0);
    }

    #[test]
    fn histogram_via_atomic_slice() {
        let n = 4096;
        let bins = 10;
        let mut counts = vec![0.0f64; bins];
        {
            let atoms = as_atomic_slice(&mut counts);
            forall::<ParExec>(0..n, |i| {
                atoms[i % bins].fetch_add(1.0);
            });
        }
        let total: f64 = counts.iter().sum();
        assert_eq!(total, n as f64);
    }

    #[test]
    fn into_inner_returns_final_value() {
        let a = AtomicF64::new(2.0);
        a.fetch_add(3.0);
        assert_eq!(a.into_inner(), 5.0);
    }
}
