//! Multi-dimensional data views with permutable and offset layouts.
//!
//! RAJA `View`s decouple a kernel's logical multi-dimensional indexing from
//! the physical memory layout: a `Layout` maps an index tuple to a linear
//! offset, and may permute stride order or add per-dimension offsets
//! (`OffsetLayout`). The suite's `LTIMES`, `NODAL/ZONAL_ACCUMULATION_3D`,
//! `INIT_VIEW1D_OFFSET`, and the finite-element kernels exercise views; the
//! `LTIMES` vs `LTIMES_NOVIEW` pair measures their abstraction cost.
//!
//! [`View`] is `Copy + Send + Sync` and grants GPU-style unchecked access
//! with debug-mode bounds checks, mirroring how RAJA views wrap raw
//! pointers.

/// Maps a `D`-dimensional index tuple to a linear memory offset.
///
/// Strides are derived from extents in *permutation order*: the last entry
/// of the permutation names the stride-1 (fastest) dimension, as in
/// `RAJA::make_permuted_layout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout<const D: usize> {
    extents: [usize; D],
    strides: [usize; D],
    offsets: [isize; D],
}

impl<const D: usize> Layout<D> {
    /// Row-major layout (identity permutation; last dimension fastest).
    pub fn new(extents: [usize; D]) -> Layout<D> {
        let mut perm = [0usize; D];
        for (i, p) in perm.iter_mut().enumerate() {
            *p = i;
        }
        Layout::permuted(extents, perm)
    }

    /// Layout with an explicit dimension permutation. `perm[D-1]` is the
    /// fastest-varying (stride-1) dimension.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..D`.
    pub fn permuted(extents: [usize; D], perm: [usize; D]) -> Layout<D> {
        let mut seen = [false; D];
        for &p in &perm {
            assert!(p < D && !seen[p], "invalid layout permutation {perm:?}");
            seen[p] = true;
        }
        let mut strides = [0usize; D];
        let mut stride = 1usize;
        for &dim in perm.iter().rev() {
            strides[dim] = stride;
            stride *= extents[dim];
        }
        Layout {
            extents,
            strides,
            offsets: [0; D],
        }
    }

    /// Offset layout: logical indices run from `begin[d]` to `end[d]`
    /// (exclusive) in each dimension, as in `RAJA::make_offset_layout`.
    pub fn offset(begin: [isize; D], end: [isize; D]) -> Layout<D> {
        let mut extents = [0usize; D];
        for d in 0..D {
            assert!(end[d] >= begin[d], "offset layout end < begin in dim {d}");
            extents[d] = (end[d] - begin[d]) as usize;
        }
        let mut l = Layout::new(extents);
        l.offsets = begin;
        l
    }

    /// Linear offset of the logical index tuple `idx`.
    ///
    /// Debug builds bounds-check each dimension.
    #[inline]
    pub fn index(&self, idx: [isize; D]) -> usize {
        let mut lin = 0usize;
        for d in 0..D {
            let shifted = idx[d] - self.offsets[d];
            debug_assert!(
                shifted >= 0 && (shifted as usize) < self.extents[d],
                "view index {idx:?} out of bounds in dim {d} (extent {}, offset {})",
                self.extents[d],
                self.offsets[d]
            );
            lin += shifted as usize * self.strides[d];
        }
        lin
    }

    /// Per-dimension extents.
    pub fn extents(&self) -> [usize; D] {
        self.extents
    }

    /// Total number of addressable elements.
    pub fn size(&self) -> usize {
        self.extents.iter().product()
    }

    /// Per-dimension strides (elements).
    pub fn strides(&self) -> [usize; D] {
        self.strides
    }
}

/// A `D`-dimensional view over a linear buffer.
///
/// Like a RAJA view, this wraps a raw pointer plus a [`Layout`]; `get`/`set`
/// are `unsafe` with the same obligations as [`gpusim::DevicePtr`]: indices
/// in bounds and no conflicting concurrent access to the same element.
#[derive(Clone, Copy)]
pub struct View<T, const D: usize> {
    ptr: *mut T,
    len: usize,
    layout: Layout<D>,
}

// SAFETY: same justification as DevicePtr — the unsafe accessors carry the
// data-race obligations.
unsafe impl<T: Send, const D: usize> Send for View<T, D> {}
unsafe impl<T: Sync, const D: usize> Sync for View<T, D> {}

impl<T, const D: usize> View<T, D> {
    /// Wrap `data` with `layout`.
    ///
    /// # Panics
    /// Panics if the layout addresses more elements than `data` holds.
    pub fn new(data: &mut [T], layout: Layout<D>) -> View<T, D> {
        assert!(
            layout.size() <= data.len(),
            "layout addresses {} elements but buffer holds {}",
            layout.size(),
            data.len()
        );
        View {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            layout,
        }
    }

    /// The view's layout.
    pub fn layout(&self) -> &Layout<D> {
        &self.layout
    }

    /// Read the element at logical index `idx`.
    ///
    /// # Safety
    /// `idx` in bounds; no concurrent writer of this element.
    #[inline]
    pub unsafe fn get(&self, idx: [isize; D]) -> T
    where
        T: Copy,
    {
        let lin = self.layout.index(idx);
        debug_assert!(lin < self.len);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        unsafe { *self.ptr.add(lin) }
    }

    /// Write the element at logical index `idx`.
    ///
    /// # Safety
    /// `idx` in bounds; exclusive access to this element.
    #[inline]
    pub unsafe fn set(&self, idx: [isize; D], v: T) {
        let lin = self.layout.index(idx);
        debug_assert!(lin < self.len);
        unsafe { *self.ptr.add(lin) = v };
    }

    /// Add `v` to the element at logical index `idx` (read-modify-write).
    ///
    /// # Safety
    /// Same obligations as [`View::set`].
    #[inline]
    pub unsafe fn add(&self, idx: [isize; D], v: T)
    where
        T: Copy + std::ops::Add<Output = T>,
    {
        let lin = self.layout.index(idx);
        debug_assert!(lin < self.len);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        unsafe { *self.ptr.add(lin) = *self.ptr.add(lin) + v };
    }
}

/// An array-of-pointers view (RAJA `MultiView`): one logical array whose
/// leading index selects among independent buffers. Exercised by the
/// `ARRAY_OF_PTRS` kernel pattern.
#[derive(Clone, Copy)]
pub struct MultiView<T, const N: usize> {
    ptrs: [*mut T; N],
    len: usize,
}

// SAFETY: the wrapped raw pointer is only dereferenced through unsafe
// accessors whose contracts require in-bounds, data-race-free access; the
// wrapper itself holds no shared mutable state.
unsafe impl<T: Send, const N: usize> Send for MultiView<T, N> {}
// SAFETY: the wrapped raw pointer is only dereferenced through unsafe
// accessors whose contracts require in-bounds, data-race-free access; the
// wrapper itself holds no shared mutable state.
unsafe impl<T: Sync, const N: usize> Sync for MultiView<T, N> {}

impl<T, const N: usize> MultiView<T, N> {
    /// Build from `N` equal-length buffers.
    pub fn new(bufs: [&mut [T]; N]) -> MultiView<T, N> {
        let len = bufs[0].len();
        assert!(
            bufs.iter().all(|b| b.len() == len),
            "MultiView buffers must share a length"
        );
        let mut ptrs = [std::ptr::null_mut(); N];
        for (p, b) in ptrs.iter_mut().zip(bufs) {
            *p = b.as_mut_ptr();
        }
        MultiView { ptrs, len }
    }

    /// Read `bufs[a][i]`.
    ///
    /// # Safety
    /// `a < N`, `i < len`; no concurrent writer of this element.
    #[inline]
    pub unsafe fn get(&self, a: usize, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(a < N && i < self.len);
        unsafe { *self.ptrs[a].add(i) }
    }

    /// Write `bufs[a][i]`.
    ///
    /// # Safety
    /// `a < N`, `i < len`; exclusive access to this element.
    #[inline]
    pub unsafe fn set(&self, a: usize, i: usize, v: T) {
        debug_assert!(a < N && i < self.len);
        unsafe { *self.ptrs[a].add(i) = v };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout_strides() {
        let l = Layout::new([2, 3, 4]);
        assert_eq!(l.strides(), [12, 4, 1]);
        assert_eq!(l.index([0, 0, 0]), 0);
        assert_eq!(l.index([1, 2, 3]), 23);
        assert_eq!(l.size(), 24);
    }

    #[test]
    fn permuted_layout_changes_fastest_dimension() {
        // Permutation (2,1,0): dimension 0 becomes stride-1.
        let l = Layout::permuted([2, 3, 4], [2, 1, 0]);
        assert_eq!(l.strides(), [1, 2, 6]);
        assert_eq!(l.index([1, 0, 0]), 1);
        assert_eq!(l.index([0, 0, 1]), 6);
    }

    #[test]
    fn layout_is_a_bijection() {
        for layout in [Layout::new([3, 4, 5]), Layout::permuted([3, 4, 5], [1, 2, 0])] {
            let mut seen = vec![false; layout.size()];
            for i in 0..3isize {
                for j in 0..4 {
                    for k in 0..5 {
                        let lin = layout.index([i, j, k]);
                        assert!(!seen[lin], "duplicate mapping at {lin}");
                        seen[lin] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "layout covers the buffer");
        }
    }

    #[test]
    fn offset_layout_shifts_index_window() {
        let l = Layout::offset([-1, -1], [3, 3]);
        assert_eq!(l.extents(), [4, 4]);
        assert_eq!(l.index([-1, -1]), 0);
        assert_eq!(l.index([2, 2]), 15);
    }

    #[test]
    #[should_panic(expected = "invalid layout permutation")]
    fn bad_permutation_panics() {
        let _ = Layout::permuted([2, 2], [0, 0]);
    }

    #[test]
    fn view_get_set_roundtrip() {
        let mut data = vec![0.0f64; 12];
        let v = View::new(&mut data, Layout::new([3, 4]));
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        unsafe {
            v.set([2, 1], 42.0);
            assert_eq!(v.get([2, 1]), 42.0);
        }
        assert_eq!(data[2 * 4 + 1], 42.0);
    }

    #[test]
    fn view_add_accumulates() {
        let mut data = vec![1.0f64; 4];
        let v = View::new(&mut data, Layout::new([2, 2]));
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        unsafe {
            v.add([1, 1], 2.5);
        }
        assert_eq!(data[3], 3.5);
    }

    #[test]
    #[should_panic(expected = "layout addresses")]
    fn oversized_layout_panics() {
        let mut data = vec![0.0f64; 5];
        let _ = View::new(&mut data, Layout::new([3, 4]));
    }

    #[test]
    fn multiview_addresses_separate_buffers() {
        let mut a = vec![0.0f64; 4];
        let mut b = vec![0.0f64; 4];
        let mv = MultiView::new([&mut a, &mut b]);
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        unsafe {
            mv.set(0, 1, 10.0);
            mv.set(1, 1, 20.0);
            assert_eq!(mv.get(0, 1), 10.0);
            assert_eq!(mv.get(1, 1), 20.0);
        }
        assert_eq!(a[1], 10.0);
        assert_eq!(b[1], 20.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn view_index_out_of_bounds_is_caught_in_debug() {
        let mut data = vec![0.0f64; 4];
        let v = View::new(&mut data, Layout::new([2, 2]));
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        unsafe { v.set([2, 0], 1.0) };
    }

    #[test]
    fn view_works_inside_forall() {
        use crate::policy::ParExec;
        let (ni, nj) = (16, 16);
        let mut data = vec![0.0f64; ni * nj];
        let v = View::new(&mut data, Layout::new([ni, nj]));
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        crate::forall_2d::<ParExec>(0..ni, 0..nj, |i, j| unsafe {
            v.set([i as isize, j as isize], (i * nj + j) as f64);
        });
        assert_eq!(data[5 * nj + 7], (5 * nj + 7) as f64);
    }
}
