//! The `gpusim.launch` and `gpusim.ecc` failpoints. Fault configuration is
//! process-global, so every test here serializes on one gate and disarms
//! before releasing it.

use gpusim::DevicePtr;
use simsched::sync::Mutex;

fn gate() -> simsched::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn panic_message(err: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic>".to_string()
    }
}

#[test]
fn launch_panic_injection_unwinds_with_simfault_prefix() {
    let _g = gate();
    simfault::install_spec("gpusim.launch=panic:1.0").unwrap();
    let err = std::panic::catch_unwind(|| {
        let mut out = vec![0.0f64; 64];
        let d = DevicePtr::new(&mut out);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        gpusim::launch_1d(64, 32, |i| unsafe { d.write(i, i as f64) });
    })
    .expect_err("armed panic failpoint must unwind the launch");
    simfault::disarm();
    let msg = panic_message(&*err);
    assert!(msg.starts_with("simfault:"), "panic message: {msg}");
}

#[test]
fn launch_err_injection_surfaces_as_transient_panic() {
    let _g = gate();
    simfault::install_spec("gpusim.launch=err:1.0").unwrap();
    let err = std::panic::catch_unwind(|| {
        gpusim::launch_1d(8, 8, |_| {});
    })
    .expect_err("err-mode injection panics because launch returns ()");
    simfault::disarm();
    let msg = panic_message(&*err);
    assert!(
        msg.starts_with("simfault:") && msg.contains("gpusim.launch"),
        "panic message: {msg}"
    );
}

#[test]
fn launch_failures_count_no_launches() {
    let _g = gate();
    simfault::install_spec("gpusim.launch=err:1.0").unwrap();
    gpusim::reset_stats();
    let _ = std::panic::catch_unwind(|| gpusim::launch_1d(8, 8, |_| {}));
    simfault::disarm();
    assert_eq!(
        gpusim::stats().launches,
        0,
        "an injected launch failure must not reach the device counters"
    );
}

#[test]
fn ecc_flip_corrupts_buffer_deterministically() {
    let _g = gate();
    let register = || {
        simfault::install_spec("gpusim.ecc=flip:1.0,seed=11").unwrap();
        let mut buf = vec![1.0f64; 256];
        let _d = DevicePtr::new(&mut buf);
        simfault::disarm();
        buf
    };
    let a = register();
    let b = register();
    assert_ne!(a, vec![1.0f64; 256], "one bit must have flipped");
    assert_eq!(a, b, "same seed flips the same bit");
    let corrupted: Vec<usize> = a
        .iter()
        .enumerate()
        .filter(|(_, v)| **v != 1.0)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(corrupted.len(), 1, "exactly one element corrupted");
}

#[test]
fn disarmed_device_behaves_normally() {
    let _g = gate();
    simfault::disarm();
    let mut out = vec![0.0f64; 128];
    let d = DevicePtr::new(&mut out);
    // SAFETY: the index is in bounds of the allocation the pointer was built
    // from, and each parallel iterate writes a distinct element, so writes
    // never alias.
    gpusim::launch_1d(128, 64, |i| unsafe { d.write(i, 2.0 * i as f64) });
    assert!(out.iter().enumerate().all(|(i, v)| *v == 2.0 * i as f64));
}
