//! `simsan` — a compute-sanitizer for the simulated device.
//!
//! Real GPU work relies on tools like `compute-sanitizer` (memcheck /
//! racecheck / initcheck) to find bugs that don't crash the program: data
//! races between threads, shared-memory use across a missing
//! `__syncthreads()`, out-of-bounds device-pointer accesses, and reads of
//! never-written memory. The simulated device runs threads sequentially, so
//! those bugs execute "correctly" here while being real hazards on actual
//! hardware — the worst kind of portability bug for a suite whose purpose
//! is performance *portability*. This module restores the missing tooling.
//!
//! # Hazard classes
//!
//! * [`HazardKind::WriteWriteRace`] / [`HazardKind::ReadWriteRace`] — two
//!   distinct threads touch the same global-memory cell in the same
//!   barrier-delimited phase, at least one writing. Threads in a phase are
//!   unordered on real hardware, so this is a data race.
//! * [`HazardKind::MissingBarrier`] — a thread reads a shared-memory word
//!   another thread wrote *in the same phase*. Well-formed barriered
//!   kernels only communicate through shared memory across a barrier.
//! * [`HazardKind::OutOfBounds`] — a [`DevicePtr`](crate::DevicePtr) access
//!   outside the recorded allocation length. The access is reported and the
//!   index clamped in bounds, so the run continues defined instead of UB.
//! * [`HazardKind::UninitRead`] — a read from a
//!   [`DevicePtr::new_uninit`](crate::DevicePtr::new_uninit) allocation
//!   before any write to that element.
//! * [`HazardKind::BlockNotWarpMultiple`] / [`HazardKind::NotLaunchable`] —
//!   launch-configuration lints: a block size that is not a multiple of
//!   [`WARP_SIZE`](crate::WARP_SIZE) wastes lanes in the final warp, and a
//!   configuration the occupancy model rejects outright would fail to
//!   launch on the modeled hardware.
//!
//! # Usage
//!
//! ```
//! use gpusim::sanitizer::SanitizerScope;
//!
//! let scope = SanitizerScope::begin("Basic_DAXPY/RAJA_SimGpu");
//! let n = 64;
//! let mut out = vec![0.0f64; n];
//! let p = gpusim::DevicePtr::new(&mut out);
//! gpusim::launch_1d(n, 64, |i| unsafe { p.write(i, i as f64) });
//! let report = scope.finish();
//! assert!(report.is_clean(), "{report}");
//! ```
//!
//! The sanitizer is thread-local and scope-based: a [`SanitizerScope`]
//! activates recording on the current host thread (the thread that drives
//! every block of every launch, since blocks execute sequentially), and
//! [`SanitizerScope::finish`] returns the accumulated [`SanitizerReport`].
//! When no scope is active on the current thread, [`active`] is a single
//! thread-local flag load and the launch path skips instrumentation
//! entirely, so uninstrumented runs — all benchmarking — pay nothing
//! measurable.

use crate::shadow::{PhaseAccessMap, UninitTable};
use crate::{occupancy, Dim3, LaunchConfig, WARP_SIZE};
use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::fmt;

/// Hard cap on stored findings per scope; occurrences beyond the cap (or
/// duplicating an already-stored site) are still counted in
/// [`SanitizerReport::occurrences`].
const MAX_FINDINGS: usize = 256;

/// The class of a sanitizer finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HazardKind {
    /// Two threads wrote the same cell in one phase.
    WriteWriteRace,
    /// One thread wrote and another read/wrote the same cell in one phase.
    ReadWriteRace,
    /// Shared memory written and read by different threads with no barrier
    /// in between.
    MissingBarrier,
    /// Access outside the allocation bounds.
    OutOfBounds,
    /// Read of a never-written element of an uninitialized allocation.
    UninitRead,
    /// Block size is not a multiple of the warp width.
    BlockNotWarpMultiple,
    /// Launch configuration exceeds a hard hardware limit.
    NotLaunchable,
}

impl HazardKind {
    /// Short stable label (used in reports and dedup keys).
    pub fn label(&self) -> &'static str {
        match self {
            HazardKind::WriteWriteRace => "write-write race",
            HazardKind::ReadWriteRace => "read-write race",
            HazardKind::MissingBarrier => "missing barrier",
            HazardKind::OutOfBounds => "out-of-bounds access",
            HazardKind::UninitRead => "uninitialized read",
            HazardKind::BlockNotWarpMultiple => "block not warp multiple",
            HazardKind::NotLaunchable => "config not launchable",
        }
    }

    fn code(&self) -> u8 {
        match self {
            HazardKind::WriteWriteRace => 0,
            HazardKind::ReadWriteRace => 1,
            HazardKind::MissingBarrier => 2,
            HazardKind::OutOfBounds => 3,
            HazardKind::UninitRead => 4,
            HazardKind::BlockNotWarpMultiple => 5,
            HazardKind::NotLaunchable => 6,
        }
    }
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which memory space a finding refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// A `DevicePtr` (global-memory) buffer.
    Global,
    /// The block's shared memory.
    Shared,
    /// The launch configuration itself (lints).
    Launch,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Launch => "launch",
        })
    }
}

/// One sanitizer finding, with enough coordinates to locate the hazard:
/// which kernel/variant (the scope label), which launch, which phase, which
/// block and thread(s), and which element.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Hazard class.
    pub kind: HazardKind,
    /// Memory space of the offending access.
    pub space: MemSpace,
    /// Element index within the buffer (shared word index for shared
    /// memory; block-size for launch lints).
    pub index: usize,
    /// Scope label, normally `Kernel_NAME/Variant` (set by
    /// [`SanitizerScope::begin`]).
    pub label: String,
    /// RAJA region active at detection (e.g. `raja::forall<SimGpu>`),
    /// empty when the access came from a bare `gpusim::launch`.
    pub region: &'static str,
    /// Launch ordinal within the scope (0-based).
    pub launch: u64,
    /// Barrier-delimited phase index within the block (0-based).
    pub phase: u64,
    /// Block index within the grid.
    pub block: Dim3,
    /// Thread index (within the block) that triggered the finding.
    pub thread: Dim3,
    /// The other thread involved, for races and barrier hazards.
    pub other_thread: Option<Dim3>,
    /// Human-readable specifics.
    pub detail: String,
}

fn dim(d: Dim3) -> String {
    format!("({},{},{})", d.x, d.y, d.z)
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[simsan] {} on {}[{}] in {}: launch {} phase {} block {} thread {}",
            self.kind,
            self.space,
            self.index,
            if self.label.is_empty() { "<unlabeled>" } else { &self.label },
            self.launch,
            self.phase,
            dim(self.block),
            dim(self.thread),
        )?;
        if let Some(o) = self.other_thread {
            write!(f, " vs thread {}", dim(o))?;
        }
        if !self.region.is_empty() {
            write!(f, " [{}]", self.region)?;
        }
        if !self.detail.is_empty() {
            write!(f, " — {}", self.detail)?;
        }
        Ok(())
    }
}

/// Everything one [`SanitizerScope`] observed.
#[derive(Debug, Clone, Default)]
pub struct SanitizerReport {
    /// Scope label.
    pub label: String,
    /// Deduplicated findings (one per hazard site), at most
    /// `MAX_FINDINGS`.
    pub findings: Vec<Finding>,
    /// Total hazard occurrences, including duplicates of stored sites.
    pub occurrences: u64,
    /// Kernel launches observed while the scope was active.
    pub launches: u64,
}

impl SanitizerReport {
    /// True when no hazards were observed.
    pub fn is_clean(&self) -> bool {
        self.occurrences == 0
    }

    /// Findings of one class.
    pub fn of_kind(&self, kind: HazardKind) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.kind == kind).collect()
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simsan report for {}: {} finding site(s), {} occurrence(s), {} launch(es)",
            if self.label.is_empty() { "<unlabeled>" } else { &self.label },
            self.findings.len(),
            self.occurrences,
            self.launches,
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Identity of the device thread currently executing (set by the block
/// phase loop).
#[derive(Debug, Clone, Copy)]
struct CurrentThread {
    block: Dim3,
    thread: Dim3,
    phase: u64,
}

#[derive(Default)]
struct State {
    label: String,
    region: &'static str,
    findings: Vec<Finding>,
    dedup: HashSet<(u8, u8, usize)>,
    occurrences: u64,
    launches: u64,
    current: Option<CurrentThread>,
    global: PhaseAccessMap,
    shared: PhaseAccessMap,
    uninit: UninitTable,
}

thread_local! {
    static STATE: RefCell<Option<State>> = const { RefCell::new(None) };
    /// Whether a scope is active on *this* thread. Scope state is already
    /// thread-local (scopes are `!Send`), so the gate is too: concurrent
    /// scopes on different threads are strictly independent, and the
    /// un-sanitized hot path's check is a hoistable TLS load instead of a
    /// cross-core atomic.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Whether a sanitizer scope is active on the current thread (fast path
/// for every hook).
#[inline]
pub fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Active sanitizer recording on the current thread; construct with
/// [`SanitizerScope::begin`], collect with [`SanitizerScope::finish`].
///
/// Scopes do not nest and the guard is deliberately `!Send` (the device
/// runs its blocks on the thread that launched them).
pub struct SanitizerScope {
    // !Send + !Sync: state lives in this thread's TLS.
    _pin: std::marker::PhantomData<*const ()>,
}

impl SanitizerScope {
    /// Activate the sanitizer on this thread. `label` names the workload
    /// (conventionally `Kernel_NAME/Variant`) and is stamped on findings.
    ///
    /// # Panics
    /// Panics if a scope is already active.
    pub fn begin(label: impl Into<String>) -> SanitizerScope {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            assert!(
                s.is_none(),
                "simsan: sanitizer scope already active on this thread"
            );
            *s = Some(State {
                label: label.into(),
                ..State::default()
            });
        });
        ACTIVE.set(true);
        SanitizerScope {
            _pin: std::marker::PhantomData,
        }
    }

    /// Deactivate and return the report.
    pub fn finish(self) -> SanitizerReport {
        ACTIVE.set(false);
        let state = STATE.with(|s| s.borrow_mut().take());
        // Drop runs after this, but the state is already taken.
        std::mem::forget(self);
        let state = state.expect("simsan: scope state missing at finish");
        SanitizerReport {
            label: state.label,
            findings: state.findings,
            occurrences: state.occurrences,
            launches: state.launches,
        }
    }
}

impl Drop for SanitizerScope {
    fn drop(&mut self) {
        // Scope abandoned (e.g. a panic unwound past it): deactivate and
        // discard so the next scope starts clean.
        ACTIVE.set(false);
        STATE.with(|s| {
            if let Ok(mut st) = s.try_borrow_mut() {
                st.take();
            }
        });
    }
}

/// Region guard returned by [`region`]; restores the previous region label
/// on drop.
pub struct RegionGuard {
    prev: &'static str,
    was_active: bool,
}

/// Label subsequent accesses with a RAJA-layer region name (the policy
/// `forall` wrappers use this, so findings can say which abstraction the
/// hazardous access ran under). No-op when the sanitizer is off.
pub fn region(name: &'static str) -> RegionGuard {
    if !active() {
        return RegionGuard {
            prev: "",
            was_active: false,
        };
    }
    let prev = with_state(|st| std::mem::replace(&mut st.region, name)).unwrap_or("");
    RegionGuard {
        prev,
        was_active: true,
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        if self.was_active && active() {
            let prev = self.prev;
            with_state(|st| st.region = prev);
        }
    }
}

fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> Option<R> {
    STATE.with(|s| s.borrow_mut().as_mut().map(f))
}

fn record(st: &mut State, finding: Finding) {
    st.occurrences += 1;
    let key = (finding.kind.code(), space_code(finding.space), finding.index);
    if st.findings.len() < MAX_FINDINGS && st.dedup.insert(key) {
        st.findings.push(finding);
    }
}

fn space_code(s: MemSpace) -> u8 {
    match s {
        MemSpace::Global => 0,
        MemSpace::Shared => 1,
        MemSpace::Launch => 2,
    }
}

fn finding_at(st: &State, kind: HazardKind, space: MemSpace, index: usize, detail: String) -> Finding {
    let cur = st.current;
    Finding {
        kind,
        space,
        index,
        label: st.label.clone(),
        region: st.region,
        launch: st.launches.saturating_sub(1),
        phase: cur.map_or(0, |c| c.phase),
        block: cur.map_or(Dim3::d3(0, 0, 0), |c| c.block),
        thread: cur.map_or(Dim3::d3(0, 0, 0), |c| c.thread),
        other_thread: None,
        detail,
    }
}

// ---------------------------------------------------------------------------
// Hooks called by the gpusim core. All are no-ops unless a scope is active
// on the calling thread.
// ---------------------------------------------------------------------------

/// A kernel launch is starting: count it and lint its configuration.
#[cold]
pub(crate) fn on_launch(cfg: &LaunchConfig) {
    with_state(|st| {
        st.launches += 1;
        let tpb = cfg.block.total();
        if !tpb.is_multiple_of(WARP_SIZE) {
            let f = finding_at(
                st,
                HazardKind::BlockNotWarpMultiple,
                MemSpace::Launch,
                tpb,
                format!(
                    "block {} = {tpb} threads is not a multiple of the warp width {WARP_SIZE}; \
                     the trailing warp runs partially masked",
                    dim(cfg.block)
                ),
            );
            record(st, f);
        }
        let occ = occupancy::occupancy(&occupancy::SmLimits::v100(), tpb, cfg.shared_f64 * 8);
        if occ.limited_by == occupancy::OccupancyLimit::NotLaunchable {
            let f = finding_at(
                st,
                HazardKind::NotLaunchable,
                MemSpace::Launch,
                tpb,
                format!(
                    "{tpb} threads/block with {} B shared exceeds the modeled SM limits \
                     (max {} threads/block, {} B shared)",
                    cfg.shared_f64 * 8,
                    occupancy::SmLimits::v100().max_threads_per_block,
                    occupancy::SmLimits::v100().shared_bytes,
                ),
            );
            record(st, f);
        }
    });
}

/// A device thread is about to run its slice of the current phase.
#[cold]
pub(crate) fn on_thread_begin(block: Dim3, thread: Dim3, phase: u64) {
    with_state(|st| {
        st.current = Some(CurrentThread {
            block,
            thread,
            phase,
        });
    });
}

/// The current phase hit its barrier: close the race windows.
#[cold]
pub(crate) fn on_phase_end() {
    with_state(|st| {
        st.current = None;
        st.global.clear();
        st.shared.clear();
    });
}

/// A `DevicePtr` wrapped an initialized buffer: clear any stale uninit
/// tracking of that memory.
#[cold]
pub(crate) fn on_alloc_init(base: usize, bytes: usize) {
    with_state(|st| st.uninit.remove_overlapping(base, bytes));
}

/// A `DevicePtr` wrapped a logically-uninitialized buffer.
#[cold]
pub(crate) fn on_alloc_uninit(base: usize, bytes: usize, elem: usize) {
    with_state(|st| st.uninit.register(base, bytes, elem));
}

/// Bounds-check helper: records an out-of-bounds finding and returns an
/// in-bounds replacement index, panicking only for zero-length buffers
/// (nothing to clamp to).
fn checked_index(
    st: &mut State,
    i: usize,
    len: usize,
    is_write: bool,
) -> usize {
    if i < len {
        return i;
    }
    let f = finding_at(
        st,
        HazardKind::OutOfBounds,
        MemSpace::Global,
        i,
        format!(
            "{} index {i} >= allocation length {len}; index clamped",
            if is_write { "write" } else { "read" },
        ),
    );
    let msg = f.to_string();
    record(st, f);
    match len.checked_sub(1) {
        Some(last) => last,
        None => panic!("{msg} (zero-length allocation, cannot clamp)"),
    }
}

/// Instrumented global read through a `DevicePtr`. Returns the (possibly
/// clamped) index to actually read.
#[cold]
pub(crate) fn on_global_read(base: usize, elem: usize, len: usize, i: usize) -> usize {
    with_state(|st| {
        let i = checked_index(st, i, len, false);
        let addr = base + i * elem;
        if elem > 0 && st.uninit.is_uninit(addr) {
            let f = finding_at(
                st,
                HazardKind::UninitRead,
                MemSpace::Global,
                i,
                "element read before any write to an uninitialized allocation".to_string(),
            );
            record(st, f);
        }
        if let Some(cur) = st.current {
            if let Some(writer) = st.global.note_read(addr, cur.thread) {
                let mut f = finding_at(
                    st,
                    HazardKind::ReadWriteRace,
                    MemSpace::Global,
                    i,
                    "read races with a same-phase write by another thread".to_string(),
                );
                f.other_thread = Some(writer);
                record(st, f);
            }
        }
        i
    })
    .unwrap_or(i)
}

/// Instrumented global write through a `DevicePtr`. Returns the (possibly
/// clamped) index to actually write.
#[cold]
pub(crate) fn on_global_write(base: usize, elem: usize, len: usize, i: usize) -> usize {
    with_state(|st| {
        let i = checked_index(st, i, len, true);
        let addr = base + i * elem;
        if elem > 0 {
            st.uninit.mark_init(addr);
        }
        if let Some(cur) = st.current {
            let conflict = st.global.note_write(addr, cur.thread);
            if let Some(writer) = conflict.prior_writer {
                let mut f = finding_at(
                    st,
                    HazardKind::WriteWriteRace,
                    MemSpace::Global,
                    i,
                    "two threads wrote this cell in the same phase".to_string(),
                );
                f.other_thread = Some(writer);
                record(st, f);
            } else if let Some(reader) = conflict.prior_reader {
                let mut f = finding_at(
                    st,
                    HazardKind::ReadWriteRace,
                    MemSpace::Global,
                    i,
                    "write races with a same-phase read by another thread".to_string(),
                );
                f.other_thread = Some(reader);
                record(st, f);
            }
        }
        i
    })
    .unwrap_or(i)
}

/// Instrumented shared-memory read (word index `i`).
#[cold]
pub(crate) fn on_shared_read(i: usize) {
    with_state(|st| {
        if let Some(cur) = st.current {
            if let Some(writer) = st.shared.note_read(i, cur.thread) {
                let mut f = finding_at(
                    st,
                    HazardKind::MissingBarrier,
                    MemSpace::Shared,
                    i,
                    "shared word read in the same phase another thread wrote it; \
                     a barrier must separate the write from the read"
                        .to_string(),
                );
                f.other_thread = Some(writer);
                record(st, f);
            }
        }
    });
}

/// Instrumented shared-memory write (word index `i`).
#[cold]
pub(crate) fn on_shared_write(i: usize) {
    with_state(|st| {
        if let Some(cur) = st.current {
            let conflict = st.shared.note_write(i, cur.thread);
            if let Some(writer) = conflict.prior_writer {
                let mut f = finding_at(
                    st,
                    HazardKind::WriteWriteRace,
                    MemSpace::Shared,
                    i,
                    "two threads wrote this shared word in the same phase".to_string(),
                );
                f.other_thread = Some(writer);
                record(st, f);
            } else if let Some(reader) = conflict.prior_reader {
                let mut f = finding_at(
                    st,
                    HazardKind::MissingBarrier,
                    MemSpace::Shared,
                    i,
                    "shared word written in the same phase another thread read it".to_string(),
                );
                f.other_thread = Some(reader);
                record(st, f);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{launch, launch_1d, DevicePtr, LaunchConfig};

    #[test]
    fn clean_kernel_reports_clean() {
        let scope = SanitizerScope::begin("test/clean");
        let n = 300;
        let mut out = vec![0.0f64; n];
        let p = DevicePtr::new(&mut out);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        launch_1d(n, 64, |i| unsafe { p.write(i, 1.0) });
        let report = scope.finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.launches, 1);
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn write_write_race_is_flagged_with_coordinates() {
        let scope = SanitizerScope::begin("test/ww-race");
        let mut out = vec![0.0f64; 4];
        let p = DevicePtr::new(&mut out);
        // Every thread of the (single) block writes cell 0 in one phase.
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        launch_1d(64, 64, |_| unsafe { p.write(0, 1.0) });
        let report = scope.finish();
        let races = report.of_kind(HazardKind::WriteWriteRace);
        assert_eq!(races.len(), 1, "one deduplicated site: {report}");
        let f = races[0];
        assert_eq!(f.index, 0);
        assert_eq!(f.space, MemSpace::Global);
        assert_eq!(f.phase, 0);
        assert!(f.other_thread.is_some());
        // 64 threads wrote; 63 raced with a predecessor.
        assert_eq!(report.occurrences, 63);
    }

    #[test]
    fn barrier_separation_suppresses_shared_hazard() {
        // Write in phase 1, read in phase 2 — legal; same-phase — flagged.
        let cfg = LaunchConfig::linear(32, 32).with_shared_f64(1);
        let scope = SanitizerScope::begin("test/barriered");
        launch(&cfg, |block| {
            block.threads(|t, shared| {
                if t.flat_thread() == 0 {
                    shared[0] = 42.0;
                }
            });
            block.threads(|_, shared| {
                assert_eq!(shared[0], 42.0);
            });
        });
        assert!(scope.finish().is_clean());

        let scope = SanitizerScope::begin("test/unbarriered");
        launch(&cfg, |block| {
            block.threads(|t, shared| {
                if t.flat_thread() == 0 {
                    shared[0] = 42.0;
                } else {
                    let _v = shared[0];
                }
            });
        });
        let report = scope.finish();
        let hits = report.of_kind(HazardKind::MissingBarrier);
        assert_eq!(hits.len(), 1, "{report}");
        assert_eq!(hits[0].space, MemSpace::Shared);
        assert_eq!(hits[0].other_thread, Some(Dim3::d3(0, 0, 0)));
    }

    #[test]
    fn out_of_bounds_is_reported_and_clamped() {
        let scope = SanitizerScope::begin("test/oob");
        let mut buf = vec![7.0f64; 8];
        let p = DevicePtr::new(&mut buf);
        // Touch index 12 of an 8-element buffer from device code.
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        launch_1d(1, 32, |_| unsafe {
            let v = p.read(12);
            p.write(12, v + 1.0);
        });
        let report = scope.finish();
        let oob = report.of_kind(HazardKind::OutOfBounds);
        assert_eq!(oob.len(), 1, "read+write at one site dedup: {report}");
        assert_eq!(oob[0].index, 12);
        assert_eq!(report.occurrences, 2);
        // The access was clamped to the last element, not UB.
        assert_eq!(buf[7], 8.0);
    }

    #[test]
    fn uninit_read_is_reported_until_written() {
        let scope = SanitizerScope::begin("test/uninit");
        let mut buf = vec![0.0f64; 4];
        let p = DevicePtr::new_uninit(&mut buf);
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        launch_1d(1, 32, |_| unsafe {
            let _ = p.read(1); // before any write: flagged
            p.write(1, 5.0);
            let _ = p.read(1); // after the write: clean
        });
        let report = scope.finish();
        let ur = report.of_kind(HazardKind::UninitRead);
        assert_eq!(ur.len(), 1, "{report}");
        assert_eq!(ur[0].index, 1);
        assert_eq!(report.occurrences, 1);
    }

    #[test]
    fn launch_lints_fire_for_bad_configurations() {
        let scope = SanitizerScope::begin("test/lints");
        // 48 threads: not a warp multiple.
        launch(&LaunchConfig::linear(48, 48), |_| {});
        // 2048 threads/block: beyond the modeled 1024 hard limit.
        launch(
            &LaunchConfig::grid_block(Dim3::d1(1), Dim3::d1(2048)),
            |_| {},
        );
        let report = scope.finish();
        assert_eq!(report.of_kind(HazardKind::BlockNotWarpMultiple).len(), 1);
        assert_eq!(report.of_kind(HazardKind::NotLaunchable).len(), 1);
        assert_eq!(report.launches, 2);
    }

    #[test]
    fn scope_label_and_region_appear_in_findings() {
        let scope = SanitizerScope::begin("Fixture_RACY/RAJA_SimGpu");
        let mut out = vec![0.0f64; 1];
        let p = DevicePtr::new(&mut out);
        {
            let _r = region("raja::forall<SimGpu>");
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            launch_1d(32, 32, |_| unsafe { p.write(0, 2.0) });
        }
        let report = scope.finish();
        assert_eq!(report.label, "Fixture_RACY/RAJA_SimGpu");
        let f = &report.findings[0];
        assert_eq!(f.label, "Fixture_RACY/RAJA_SimGpu");
        assert_eq!(f.region, "raja::forall<SimGpu>");
        let line = f.to_string();
        assert!(line.contains("write-write race"), "{line}");
        assert!(line.contains("block (0,0,0)"), "{line}");
    }

    #[test]
    fn inactive_hooks_cost_nothing_and_track_nothing() {
        // No scope on THIS thread (another test's scope may be live on its
        // own thread; state is thread-local, so it cannot see our accesses).
        let mut buf = vec![0.0f64; 4];
        let p = DevicePtr::new_uninit(&mut buf);
        // No scope: uninit reads are not tracked, nothing panics.
        // SAFETY: indices stay within the extents the device pointers/views were
        // built from, and each parallel iterate touches a disjoint set of output
        // elements, so writes never alias.
        launch_1d(4, 32, |i| unsafe {
            let v = p.read(i);
            p.write(i, v + 1.0);
        });
        assert!(buf.iter().all(|&v| v == 1.0));
    }
}
