//! A simulated GPU execution substrate.
//!
//! The paper's RAJAPerf kernels have CUDA/HIP/SYCL variants that execute on
//! real accelerators. This container has no GPU, so this crate provides the
//! closest synthetic equivalent that exercises the same *code structure*: a
//! device with a grid/block/thread launch hierarchy, per-block shared memory,
//! block-level barriers, and a warp width — executed on the host CPU (blocks
//! optionally in parallel via rayon, threads within a block sequentially in
//! barrier-delimited *phases*).
//!
//! What this preserves from the real thing:
//!
//! * Tiled/blocked kernel algorithms (e.g. `MAT_MAT_SHARED`'s shared-memory
//!   tile loop) run exactly as written for a GPU: load-tile phase, barrier,
//!   compute phase, barrier.
//! * Launch configuration (block size tunings — RAJAPerf's GPU `tunings`) is
//!   a first-class parameter, so block-size sweeps remain meaningful.
//! * The device counts launches / blocks / threads, which the performance
//!   model uses for launch-overhead-bound kernels (the paper's Comm HALO
//!   analysis) and which Nsight-Compute-style metrics are derived from.
//!
//! What it deliberately does not do: cycle-level SM simulation. Cache
//! transaction counts for the instruction-roofline analysis are computed
//! analytically in the `perfmodel` crate from each kernel's access
//! descriptors, mirroring how the paper derives them from hardware counters.
//!
//! # Example
//! ```
//! use gpusim::{LaunchConfig, launch};
//! let n = 1000usize;
//! let mut out = vec![0.0f64; n];
//! let cfg = LaunchConfig::linear(n, 256);
//! let out_ptr = gpusim::DevicePtr::new(&mut out);
//! launch(&cfg, |block| {
//!     block.threads(|t, _shared| {
//!         let i = t.global_id_x();
//!         if i < n {
//!             unsafe { out_ptr.write(i, i as f64 * 2.0) };
//!         }
//!     });
//! });
//! assert_eq!(out[10], 20.0);
//! ```

use std::cell::Cell;
use std::ops::{Deref, DerefMut, Index, IndexMut};
use std::sync::atomic::{AtomicU64, Ordering};

pub mod occupancy;
pub mod sanitizer;
pub(crate) mod shadow;
pub mod txn;

/// Threads per warp, matching NVIDIA/AMD-GCN warp/wavefront granularity used
/// by the paper's instruction-roofline metrics (warp instructions = thread
/// instructions / 32).
pub const WARP_SIZE: usize = 32;

/// Default thread-block size used by RAJAPerf GPU tunings.
pub const DEFAULT_BLOCK_SIZE: usize = 256;

/// A 3-component launch dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim3 {
    /// Fastest-varying dimension.
    pub x: usize,
    /// Middle dimension.
    pub y: usize,
    /// Slowest-varying dimension.
    pub z: usize,
}

impl Dim3 {
    /// A 1-D dimension `(x, 1, 1)`.
    pub const fn d1(x: usize) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D dimension `(x, y, 1)`.
    pub const fn d2(x: usize, y: usize) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }

    /// A 3-D dimension.
    pub const fn d3(x: usize, y: usize, z: usize) -> Dim3 {
        Dim3 { x, y, z }
    }

    /// Total element count.
    pub const fn total(&self) -> usize {
        self.x * self.y * self.z
    }
}

/// A kernel launch configuration: grid of blocks, threads per block, and the
/// per-block shared-memory allocation in `f64` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in each grid dimension.
    pub grid: Dim3,
    /// Number of threads in each block dimension.
    pub block: Dim3,
    /// Shared memory per block, in `f64` words.
    pub shared_f64: usize,
}

impl LaunchConfig {
    /// 1-D config covering `n` elements with `block_size` threads per block
    /// (grid size rounded up), the standard RAJAPerf GPU mapping.
    pub fn linear(n: usize, block_size: usize) -> LaunchConfig {
        assert!(block_size > 0, "block size must be positive");
        LaunchConfig {
            grid: Dim3::d1(n.div_ceil(block_size).max(1)),
            block: Dim3::d1(block_size),
            shared_f64: 0,
        }
    }

    /// Explicit grid/block config.
    pub fn grid_block(grid: Dim3, block: Dim3) -> LaunchConfig {
        LaunchConfig {
            grid,
            block,
            shared_f64: 0,
        }
    }

    /// Set the shared-memory allocation (in `f64` words).
    pub fn with_shared_f64(mut self, words: usize) -> LaunchConfig {
        self.shared_f64 = words;
        self
    }
}

/// Identity of one thread within an executing block.
#[derive(Debug, Clone, Copy)]
pub struct ThreadCtx {
    /// Thread index within the block.
    pub thread_idx: Dim3,
    /// Block index within the grid.
    pub block_idx: Dim3,
    /// Block dimensions.
    pub block_dim: Dim3,
    /// Grid dimensions.
    pub grid_dim: Dim3,
}

impl ThreadCtx {
    /// Global 1-D thread id: `block_idx.x * block_dim.x + thread_idx.x`.
    #[inline]
    pub fn global_id_x(&self) -> usize {
        self.block_idx.x * self.block_dim.x + self.thread_idx.x
    }

    /// Global thread id in y.
    #[inline]
    pub fn global_id_y(&self) -> usize {
        self.block_idx.y * self.block_dim.y + self.thread_idx.y
    }

    /// Global thread id in z.
    #[inline]
    pub fn global_id_z(&self) -> usize {
        self.block_idx.z * self.block_dim.z + self.thread_idx.z
    }

    /// Flat thread index within the block.
    #[inline]
    pub fn flat_thread(&self) -> usize {
        (self.thread_idx.z * self.block_dim.y + self.thread_idx.y) * self.block_dim.x
            + self.thread_idx.x
    }

    /// Warp index of this thread within its block.
    #[inline]
    pub fn warp(&self) -> usize {
        self.flat_thread() / WARP_SIZE
    }
}

/// The block's shared-memory allocation, handed to every thread of a phase.
///
/// Element access with `shared[i]` goes through [`Index`]/[`IndexMut`] and
/// is observed by the sanitizer (see [`sanitizer`]) for barrier-hazard
/// detection; slice-wide operations are available through `Deref<[f64]>`
/// but bypass instrumentation, like casting away `volatile` in CUDA.
pub struct SharedMem {
    data: Vec<f64>,
}

impl SharedMem {
    fn new(words: usize) -> SharedMem {
        SharedMem {
            data: vec![0.0; words],
        }
    }

    /// Allocation size in `f64` words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the block has no shared memory.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Index<usize> for SharedMem {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        if sanitizer::active() {
            sanitizer::on_shared_read(i);
        }
        &self.data[i]
    }
}

impl IndexMut<usize> for SharedMem {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        if sanitizer::active() {
            sanitizer::on_shared_write(i);
        }
        &mut self.data[i]
    }
}

impl Deref for SharedMem {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        &self.data
    }
}

impl DerefMut for SharedMem {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// Execution context for one thread block.
///
/// A block's threads run sequentially inside each [`BlockCtx::threads`] call;
/// successive calls are separated by an implicit block-level barrier
/// (`__syncthreads()`), which is exactly the programming discipline barriered
/// CUDA kernels follow.
pub struct BlockCtx {
    /// Index of this block within the grid.
    pub block_idx: Dim3,
    /// Block dimensions.
    pub block_dim: Dim3,
    /// Grid dimensions.
    pub grid_dim: Dim3,
    shared: SharedMem,
    barriers: Cell<u64>,
}

impl BlockCtx {
    /// Run the body once per thread in the block (a barrier-delimited phase).
    /// The body receives the thread identity and the block's shared memory.
    pub fn threads(&mut self, mut body: impl FnMut(ThreadCtx, &mut SharedMem)) {
        let sanitize = sanitizer::active();
        let phase = self.barriers.get();
        for tz in 0..self.block_dim.z {
            for ty in 0..self.block_dim.y {
                for tx in 0..self.block_dim.x {
                    let t = ThreadCtx {
                        thread_idx: Dim3::d3(tx, ty, tz),
                        block_idx: self.block_idx,
                        block_dim: self.block_dim,
                        grid_dim: self.grid_dim,
                    };
                    if sanitize {
                        sanitizer::on_thread_begin(self.block_idx, t.thread_idx, phase);
                    }
                    body(t, &mut self.shared);
                }
            }
        }
        if sanitize {
            sanitizer::on_phase_end();
        }
        self.barriers.set(phase + 1);
    }

    /// Number of barrier-delimited phases executed so far (diagnostic).
    pub fn barriers_executed(&self) -> u64 {
        self.barriers.get()
    }

    /// Direct read-only access to the block's shared memory between phases.
    pub fn shared(&self) -> &[f64] {
        &self.shared.data
    }

    /// Direct mutable access to the block's shared memory between phases
    /// (single-threaded from the block's perspective — it models the block
    /// leader initializing shared state followed by a barrier).
    pub fn shared_mut(&mut self) -> &mut [f64] {
        &mut self.shared.data
    }
}

/// Cumulative device statistics since the last [`reset_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Kernel launches issued.
    pub launches: u64,
    /// Thread blocks executed.
    pub blocks: u64,
    /// Threads executed.
    pub threads: u64,
}

static LAUNCHES: AtomicU64 = AtomicU64::new(0);
static BLOCKS: AtomicU64 = AtomicU64::new(0);
static THREADS: AtomicU64 = AtomicU64::new(0);

/// Snapshot the device counters.
pub fn stats() -> DeviceStats {
    DeviceStats {
        launches: LAUNCHES.load(Ordering::Relaxed),
        blocks: BLOCKS.load(Ordering::Relaxed),
        threads: THREADS.load(Ordering::Relaxed),
    }
}

/// Zero the device counters.
pub fn reset_stats() {
    LAUNCHES.store(0, Ordering::Relaxed);
    BLOCKS.store(0, Ordering::Relaxed);
    THREADS.store(0, Ordering::Relaxed);
}

/// Launch a kernel on the simulated device.
///
/// Blocks execute independently — in parallel across the rayon pool when it
/// has more than one thread, sequentially otherwise. The scheduling order is
/// unspecified, as on a real device, so block bodies must not assume
/// inter-block ordering. The body runs once per block with that block's
/// [`BlockCtx`].
///
/// Sanitized launches (an active [`sanitizer`] scope) always run their
/// blocks sequentially on the launching thread: the sanitizer's shadow state
/// is thread-local, and serializing instrumented launches keeps every access
/// observation in one coherent map (the hazard classes it detects are
/// intra-block, so serializing blocks loses no coverage).
pub fn launch<F>(cfg: &LaunchConfig, body: F)
where
    F: Fn(&mut BlockCtx) + Sync,
{
    LAUNCHES.fetch_add(1, Ordering::Relaxed);
    let nblocks = cfg.grid.total() as u64;
    BLOCKS.fetch_add(nblocks, Ordering::Relaxed);
    THREADS.fetch_add(nblocks * cfg.block.total() as u64, Ordering::Relaxed);
    let run_block = |bx: usize, by: usize, bz: usize| {
        let mut ctx = BlockCtx {
            block_idx: Dim3::d3(bx, by, bz),
            block_dim: cfg.block,
            grid_dim: cfg.grid,
            shared: SharedMem::new(cfg.shared_f64),
            barriers: Cell::new(0),
        };
        body(&mut ctx);
    };
    if sanitizer::active() {
        sanitizer::on_launch(cfg);
        for bz in 0..cfg.grid.z {
            for by in 0..cfg.grid.y {
                for bx in 0..cfg.grid.x {
                    run_block(bx, by, bz);
                }
            }
        }
    } else {
        // Flatten the grid and let the pool schedule blocks. With a
        // one-thread pool this degrades to the same in-order bz/by/bx
        // sweep as the sequential loop above.
        use rayon::prelude::*;
        let (gx, gy) = (cfg.grid.x, cfg.grid.y);
        (0..cfg.grid.total()).into_par_iter().for_each(|flat| {
            let bx = flat % gx;
            let by = (flat / gx) % gy;
            let bz = flat / (gx * gy);
            run_block(bx, by, bz);
        });
    }
}

/// Convenience: launch a 1-D grid-mapped kernel where each thread handles at
/// most one index `i < n` (RAJAPerf's standard `blockIdx.x * blockDim.x +
/// threadIdx.x` mapping). The body must tolerate concurrent disjoint writes.
pub fn launch_1d<F>(n: usize, block_size: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let cfg = LaunchConfig::linear(n, block_size);
    launch(&cfg, |block| {
        block.threads(|t, _| {
            let i = t.global_id_x();
            if i < n {
                body(i);
            }
        });
    });
}

/// A `Send + Sync` raw-pointer wrapper granting GPU-kernel-style unchecked
/// access to a host buffer from device code.
///
/// This is the moral equivalent of the raw device pointers CUDA kernels
/// receive: aliasing discipline is the kernel author's responsibility.
#[derive(Clone, Copy)]
pub struct DevicePtr<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: DevicePtr is a capability to perform raw indexed access; the
// `read`/`write` methods carry the actual safety obligations (in-bounds,
// data-race-free access), exactly like a device pointer in CUDA C++.
unsafe impl<T: Send> Send for DevicePtr<T> {}
unsafe impl<T: Sync> Sync for DevicePtr<T> {}

impl<T> DevicePtr<T> {
    /// Wrap a host slice for device access. The borrow is logically exclusive
    /// for the duration of the launch.
    pub fn new(slice: &mut [T]) -> DevicePtr<T> {
        let p = DevicePtr {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        };
        if sanitizer::active() {
            // The buffer arrives initialized: clear any stale uninit
            // tracking of this memory from a previous allocation.
            sanitizer::on_alloc_init(p.ptr as usize, p.len * std::mem::size_of::<T>());
        }
        p
    }

    /// Wrap a host slice whose contents are *logically uninitialized*: the
    /// kernel is expected to write every element it later reads. Under an
    /// active [`sanitizer`] scope, reads that precede any write to the same
    /// element are reported as [`sanitizer::HazardKind::UninitRead`]
    /// (the memory itself is real host memory, so the access stays defined
    /// — this models `compute-sanitizer initcheck`, not UB detection).
    pub fn new_uninit(slice: &mut [T]) -> DevicePtr<T> {
        let p = DevicePtr {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        };
        if sanitizer::active() {
            sanitizer::on_alloc_uninit(
                p.ptr as usize,
                p.len * std::mem::size_of::<T>(),
                std::mem::size_of::<T>(),
            );
        }
        p
    }

    /// Length of the underlying buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    ///
    /// Under an active [`sanitizer`] scope the access is recorded (race,
    /// bounds, and init checks); an out-of-bounds index is reported and
    /// clamped in bounds so execution stays defined.
    ///
    /// # Safety
    /// `i < len`, and no thread may be concurrently writing element `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        let i = if sanitizer::active() {
            sanitizer::on_global_read(self.ptr as usize, std::mem::size_of::<T>(), self.len, i)
        } else {
            i
        };
        debug_assert!(i < self.len, "DevicePtr read out of bounds: {i} >= {}", self.len);
        unsafe { *self.ptr.add(i) }
    }

    /// Write element `i`.
    ///
    /// Under an active [`sanitizer`] scope the access is recorded (race,
    /// bounds, and init checks); an out-of-bounds index is reported and
    /// clamped in bounds so execution stays defined.
    ///
    /// # Safety
    /// `i < len`, and no other thread may concurrently access element `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        let i = if sanitizer::active() {
            sanitizer::on_global_write(self.ptr as usize, std::mem::size_of::<T>(), self.len, i)
        } else {
            i
        };
        debug_assert!(i < self.len, "DevicePtr write out of bounds: {i} >= {}", self.len);
        unsafe { *self.ptr.add(i) = v };
    }

    /// Get a mutable reference to element `i` (treated as a write by the
    /// [`sanitizer`], which also reports and clamps out-of-bounds indices).
    ///
    /// # Safety
    /// `i < len`, exclusive access to element `i` for the reference lifetime.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn at_mut(&self, i: usize) -> &mut T {
        let i = if sanitizer::active() {
            sanitizer::on_global_write(self.ptr as usize, std::mem::size_of::<T>(), self.len, i)
        } else {
            i
        };
        debug_assert!(i < self.len, "DevicePtr at_mut out of bounds: {i} >= {}", self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_config_rounds_up() {
        let cfg = LaunchConfig::linear(1000, 256);
        assert_eq!(cfg.grid.x, 4);
        assert_eq!(cfg.block.x, 256);
        let cfg = LaunchConfig::linear(1024, 256);
        assert_eq!(cfg.grid.x, 4);
        let cfg = LaunchConfig::linear(0, 256);
        assert_eq!(cfg.grid.x, 1);
    }

    #[test]
    fn launch_1d_covers_exactly_n_indices() {
        let n = 1003;
        let mut hits = vec![0u8; n];
        let p = DevicePtr::new(&mut hits);
        launch_1d(n, 128, |i| unsafe { p.write(i, p.read(i) + 1) });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn stats_count_launches_blocks_threads() {
        reset_stats();
        launch_1d(512, 256, |_| {});
        let s = stats();
        assert_eq!(s.launches, 1);
        assert_eq!(s.blocks, 2);
        assert_eq!(s.threads, 512);
    }

    #[test]
    fn shared_memory_persists_across_phases() {
        // Per-block reduction into shared[0] in phase 1; read it in phase 2.
        let n = 256;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut out = vec![0.0f64; 1];
        let out_ptr = DevicePtr::new(&mut out);
        let cfg = LaunchConfig::linear(n, 256).with_shared_f64(1);
        launch(&cfg, |block| {
            block.threads(|t, shared| {
                shared[0] += data[t.global_id_x()];
            });
            block.threads(|t, shared| {
                if t.flat_thread() == 0 {
                    unsafe { out_ptr.write(0, shared[0]) };
                }
            });
            assert_eq!(block.barriers_executed(), 2);
        });
        assert_eq!(out[0], (0..n).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn two_d_thread_identities() {
        let cfg = LaunchConfig::grid_block(Dim3::d2(2, 2), Dim3::d2(4, 4));
        let mut seen = vec![0u8; 8 * 8];
        let p = DevicePtr::new(&mut seen);
        launch(&cfg, |block| {
            block.threads(|t, _| {
                let (gx, gy) = (t.global_id_x(), t.global_id_y());
                unsafe { p.write(gy * 8 + gx, 1) };
            });
        });
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn warp_index_matches_flat_id() {
        let cfg = LaunchConfig::linear(64, 64);
        launch(&cfg, |block| {
            block.threads(|t, _| {
                assert_eq!(t.warp(), t.flat_thread() / WARP_SIZE);
            });
        });
    }

    #[test]
    fn blocks_have_private_shared_memory() {
        let nblocks = 4;
        let mut firsts = vec![-1.0f64; nblocks];
        let p = DevicePtr::new(&mut firsts);
        let cfg = LaunchConfig::grid_block(Dim3::d1(nblocks), Dim3::d1(8)).with_shared_f64(1);
        launch(&cfg, |block| {
            let bx = block.block_idx.x;
            block.threads(|_, shared| {
                shared[0] += 1.0;
            });
            // 8 threads incremented a zero-initialized private slot.
            assert_eq!(block.shared()[0], 8.0);
            unsafe { p.write(bx, block.shared()[0]) };
        });
        assert!(firsts.iter().all(|&f| f == 8.0));
    }
}
