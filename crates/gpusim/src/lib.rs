//! A simulated GPU execution substrate.
//!
//! The paper's RAJAPerf kernels have CUDA/HIP/SYCL variants that execute on
//! real accelerators. This container has no GPU, so this crate provides the
//! closest synthetic equivalent that exercises the same *code structure*: a
//! device with a grid/block/thread launch hierarchy, per-block shared memory,
//! block-level barriers, and a warp width — executed on the host CPU (blocks
//! optionally in parallel via rayon, threads within a block sequentially in
//! barrier-delimited *phases*).
//!
//! What this preserves from the real thing:
//!
//! * Tiled/blocked kernel algorithms (e.g. `MAT_MAT_SHARED`'s shared-memory
//!   tile loop) run exactly as written for a GPU: load-tile phase, barrier,
//!   compute phase, barrier.
//! * Launch configuration (block size tunings — RAJAPerf's GPU `tunings`) is
//!   a first-class parameter, so block-size sweeps remain meaningful.
//! * The device counts launches / blocks / threads, which the performance
//!   model uses for launch-overhead-bound kernels (the paper's Comm HALO
//!   analysis) and which Nsight-Compute-style metrics are derived from.
//!
//! What it deliberately does not do: cycle-level SM simulation. Cache
//! transaction counts for the instruction-roofline analysis are computed
//! analytically in the `perfmodel` crate from each kernel's access
//! descriptors, mirroring how the paper derives them from hardware counters.
//!
//! # Example
//! ```
//! use gpusim::{LaunchConfig, launch};
//! let n = 1000usize;
//! let mut out = vec![0.0f64; n];
//! let cfg = LaunchConfig::linear(n, 256);
//! let out_ptr = gpusim::DevicePtr::new(&mut out);
//! launch(&cfg, |block| {
//!     block.threads(|t, _shared| {
//!         let i = t.global_id_x();
//!         if i < n {
//!             unsafe { out_ptr.write(i, i as f64 * 2.0) };
//!         }
//!     });
//! });
//! assert_eq!(out[10], 20.0);
//! ```

use std::cell::Cell;
use std::ops::{Deref, DerefMut, Index, IndexMut};
use std::sync::atomic::{AtomicU64, Ordering};

pub mod occupancy;
pub mod sanitizer;
pub(crate) mod shadow;
pub mod txn;

/// Threads per warp, matching NVIDIA/AMD-GCN warp/wavefront granularity used
/// by the paper's instruction-roofline metrics (warp instructions = thread
/// instructions / 32).
pub const WARP_SIZE: usize = 32;

/// Default thread-block size used by RAJAPerf GPU tunings.
pub const DEFAULT_BLOCK_SIZE: usize = 256;

/// A 3-component launch dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim3 {
    /// Fastest-varying dimension.
    pub x: usize,
    /// Middle dimension.
    pub y: usize,
    /// Slowest-varying dimension.
    pub z: usize,
}

impl Dim3 {
    /// A 1-D dimension `(x, 1, 1)`.
    pub const fn d1(x: usize) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D dimension `(x, y, 1)`.
    pub const fn d2(x: usize, y: usize) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }

    /// A 3-D dimension.
    pub const fn d3(x: usize, y: usize, z: usize) -> Dim3 {
        Dim3 { x, y, z }
    }

    /// Total element count.
    pub const fn total(&self) -> usize {
        self.x * self.y * self.z
    }
}

/// A kernel launch configuration: grid of blocks, threads per block, and the
/// per-block shared-memory allocation in `f64` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in each grid dimension.
    pub grid: Dim3,
    /// Number of threads in each block dimension.
    pub block: Dim3,
    /// Shared memory per block, in `f64` words.
    pub shared_f64: usize,
}

impl LaunchConfig {
    /// 1-D config covering `n` elements with `block_size` threads per block
    /// (grid size rounded up), the standard RAJAPerf GPU mapping.
    pub fn linear(n: usize, block_size: usize) -> LaunchConfig {
        assert!(block_size > 0, "block size must be positive");
        LaunchConfig {
            grid: Dim3::d1(n.div_ceil(block_size).max(1)),
            block: Dim3::d1(block_size),
            shared_f64: 0,
        }
    }

    /// Explicit grid/block config.
    pub fn grid_block(grid: Dim3, block: Dim3) -> LaunchConfig {
        LaunchConfig {
            grid,
            block,
            shared_f64: 0,
        }
    }

    /// Set the shared-memory allocation (in `f64` words).
    pub fn with_shared_f64(mut self, words: usize) -> LaunchConfig {
        self.shared_f64 = words;
        self
    }
}

/// Identity of one thread within an executing block.
#[derive(Debug, Clone, Copy)]
pub struct ThreadCtx {
    /// Thread index within the block.
    pub thread_idx: Dim3,
    /// Block index within the grid.
    pub block_idx: Dim3,
    /// Block dimensions.
    pub block_dim: Dim3,
    /// Grid dimensions.
    pub grid_dim: Dim3,
}

impl ThreadCtx {
    /// Global 1-D thread id: `block_idx.x * block_dim.x + thread_idx.x`.
    #[inline]
    pub fn global_id_x(&self) -> usize {
        self.block_idx.x * self.block_dim.x + self.thread_idx.x
    }

    /// Global thread id in y.
    #[inline]
    pub fn global_id_y(&self) -> usize {
        self.block_idx.y * self.block_dim.y + self.thread_idx.y
    }

    /// Global thread id in z.
    #[inline]
    pub fn global_id_z(&self) -> usize {
        self.block_idx.z * self.block_dim.z + self.thread_idx.z
    }

    /// Flat thread index within the block.
    #[inline]
    pub fn flat_thread(&self) -> usize {
        (self.thread_idx.z * self.block_dim.y + self.thread_idx.y) * self.block_dim.x
            + self.thread_idx.x
    }

    /// Warp index of this thread within its block.
    #[inline]
    pub fn warp(&self) -> usize {
        self.flat_thread() / WARP_SIZE
    }
}

/// The block's shared-memory allocation, handed to every thread of a phase.
///
/// Element access with `shared[i]` goes through [`Index`]/[`IndexMut`] and
/// is observed by the sanitizer (see [`sanitizer`]) for barrier-hazard
/// detection; slice-wide operations are available through `Deref<[f64]>`
/// but bypass instrumentation, like casting away `volatile` in CUDA.
pub struct SharedMem {
    data: Vec<f64>,
}

thread_local! {
    /// Per-host-thread scratch arena backing [`SharedMem`]. Each block
    /// borrows the arena for its lifetime and returns it on completion, so
    /// steady-state launches perform no shared-memory allocation at all —
    /// the buffer is re-zeroed on reuse to preserve the device's zero-init
    /// semantics. Blocks run one at a time per host thread, so a single
    /// buffer per thread suffices; a nested launch inside a block body
    /// simply falls back to a fresh allocation for the inner blocks.
    static SHARED_ARENA: Cell<Vec<f64>> = const { Cell::new(Vec::new()) };
}

impl SharedMem {
    /// Take the thread's arena, zeroed to `words` elements.
    fn acquire(words: usize) -> SharedMem {
        let mut data = SHARED_ARENA.with(Cell::take);
        data.clear();
        data.resize(words, 0.0);
        SharedMem { data }
    }

    /// Return the backing buffer to the thread's arena for the next block.
    fn release(self) {
        SHARED_ARENA.with(|a| a.set(self.data));
    }

    /// Allocation size in `f64` words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the block has no shared memory.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Index<usize> for SharedMem {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        if sanitizer::active() {
            sanitizer::on_shared_read(i);
        }
        &self.data[i]
    }
}

impl IndexMut<usize> for SharedMem {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        if sanitizer::active() {
            sanitizer::on_shared_write(i);
        }
        &mut self.data[i]
    }
}

impl Deref for SharedMem {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        &self.data
    }
}

impl DerefMut for SharedMem {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// Execution context for one thread block.
///
/// A block's threads run sequentially inside each [`BlockCtx::threads`] call;
/// successive calls are separated by an implicit block-level barrier
/// (`__syncthreads()`), which is exactly the programming discipline barriered
/// CUDA kernels follow.
pub struct BlockCtx {
    /// Index of this block within the grid.
    pub block_idx: Dim3,
    /// Block dimensions.
    pub block_dim: Dim3,
    /// Grid dimensions.
    pub grid_dim: Dim3,
    shared: SharedMem,
    barriers: Cell<u64>,
}

impl BlockCtx {
    /// Run the body once per thread in the block (a barrier-delimited phase).
    /// The body receives the thread identity and the block's shared memory.
    pub fn threads(&mut self, mut body: impl FnMut(ThreadCtx, &mut SharedMem)) {
        let phase = self.barriers.get();
        if !sanitizer::active() {
            // Raw phase loop: no instrumentation hooks anywhere in the body.
            // 1-D blocks (the overwhelmingly common case) additionally skip
            // the y/z loop nesting so the per-thread work is a single
            // counter increment plus the body call.
            if self.block_dim.y == 1 && self.block_dim.z == 1 {
                for tx in 0..self.block_dim.x {
                    let t = ThreadCtx {
                        // NB: index, not extent — y/z are 0, unlike d1().
                        thread_idx: Dim3::d3(tx, 0, 0),
                        block_idx: self.block_idx,
                        block_dim: self.block_dim,
                        grid_dim: self.grid_dim,
                    };
                    body(t, &mut self.shared);
                }
            } else {
                for tz in 0..self.block_dim.z {
                    for ty in 0..self.block_dim.y {
                        for tx in 0..self.block_dim.x {
                            let t = ThreadCtx {
                                thread_idx: Dim3::d3(tx, ty, tz),
                                block_idx: self.block_idx,
                                block_dim: self.block_dim,
                                grid_dim: self.grid_dim,
                            };
                            body(t, &mut self.shared);
                        }
                    }
                }
            }
        } else {
            for tz in 0..self.block_dim.z {
                for ty in 0..self.block_dim.y {
                    for tx in 0..self.block_dim.x {
                        let t = ThreadCtx {
                            thread_idx: Dim3::d3(tx, ty, tz),
                            block_idx: self.block_idx,
                            block_dim: self.block_dim,
                            grid_dim: self.grid_dim,
                        };
                        sanitizer::on_thread_begin(self.block_idx, t.thread_idx, phase);
                        body(t, &mut self.shared);
                    }
                }
            }
            sanitizer::on_phase_end();
        }
        self.barriers.set(phase + 1);
    }

    /// Number of barrier-delimited phases executed so far (diagnostic).
    pub fn barriers_executed(&self) -> u64 {
        self.barriers.get()
    }

    /// Direct read-only access to the block's shared memory between phases.
    pub fn shared(&self) -> &[f64] {
        &self.shared.data
    }

    /// Direct mutable access to the block's shared memory between phases
    /// (single-threaded from the block's perspective — it models the block
    /// leader initializing shared state followed by a barrier).
    pub fn shared_mut(&mut self) -> &mut [f64] {
        &mut self.shared.data
    }
}

/// Cumulative device statistics since the last [`reset_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Kernel launches issued.
    pub launches: u64,
    /// Thread blocks executed.
    pub blocks: u64,
    /// Threads launched, counting grid padding: `grid.total() *
    /// block.total()` per launch, exactly what the hardware schedules.
    pub threads_launched: u64,
    /// Threads that had real work: for [`launch_1d`] the requested `n`
    /// (padding threads fail the bounds guard and retire immediately); for
    /// a bare [`launch`] every thread runs the body, so active = launched.
    pub threads_active: u64,
}

impl DeviceStats {
    /// Threads launched purely as grid-rounding padding (launched − active).
    pub fn threads_padded(&self) -> u64 {
        self.threads_launched - self.threads_active
    }
}

static LAUNCHES: AtomicU64 = AtomicU64::new(0);
static BLOCKS: AtomicU64 = AtomicU64::new(0);
static THREADS_LAUNCHED: AtomicU64 = AtomicU64::new(0);
static THREADS_ACTIVE: AtomicU64 = AtomicU64::new(0);

/// Snapshot the device counters.
pub fn stats() -> DeviceStats {
    DeviceStats {
        launches: LAUNCHES.load(Ordering::Relaxed),
        blocks: BLOCKS.load(Ordering::Relaxed),
        threads_launched: THREADS_LAUNCHED.load(Ordering::Relaxed),
        threads_active: THREADS_ACTIVE.load(Ordering::Relaxed),
    }
}

/// Zero the device counters.
pub fn reset_stats() {
    LAUNCHES.store(0, Ordering::Relaxed);
    BLOCKS.store(0, Ordering::Relaxed);
    THREADS_LAUNCHED.store(0, Ordering::Relaxed);
    THREADS_ACTIVE.store(0, Ordering::Relaxed);
}

/// Record one launch in the device counters. `active` is the number of
/// threads with real work (≤ launched; see [`DeviceStats::threads_active`]).
fn count_launch(cfg: &LaunchConfig, active: u64) {
    // Fault-injection hook, gated like the sanitizer and trace hooks: one
    // relaxed atomic load here, the evaluation behind a cold call. Sits
    // before the counters so an injected launch failure counts nothing.
    if simfault::armed() {
        launch_failpoint();
    }
    let nblocks = cfg.grid.total() as u64;
    LAUNCHES.fetch_add(1, Ordering::Relaxed);
    BLOCKS.fetch_add(nblocks, Ordering::Relaxed);
    THREADS_LAUNCHED.fetch_add(nblocks * cfg.block.total() as u64, Ordering::Relaxed);
    THREADS_ACTIVE.fetch_add(active, Ordering::Relaxed);
    // Event-trace hook, gated sanitizer-style: one relaxed atomic load on
    // the launch path, everything else behind a cold call.
    if caliper::trace::enabled() {
        trace_launch();
    }
}

/// Evaluate the `gpusim.launch` failpoint. `launch` returns `()`, so an
/// `err`-mode injection cannot propagate as a `Result`; it surfaces as a
/// panic that keeps the `simfault:` message prefix, which the suite's
/// isolation layer classifies as a *transient* (retryable) failure — the
/// moral equivalent of a `cudaErrorLaunchFailure` return code.
#[cold]
fn launch_failpoint() {
    if let Err(e) = simfault::fail_point("gpusim.launch") {
        panic!("simfault: {e}");
    }
}

/// Emit the per-launch trace events: an instant marker on the launching
/// thread's lane plus the cumulative device counters as Chrome counter
/// tracks. Cold so the trace-off launch path carries only the gate load.
#[cold]
fn trace_launch() {
    caliper::trace::instant_event("gpusim.launch");
    caliper::trace::counter_event("gpusim.launches", LAUNCHES.load(Ordering::Relaxed) as f64);
    caliper::trace::counter_event("gpusim.blocks", BLOCKS.load(Ordering::Relaxed) as f64);
    caliper::trace::counter_event(
        "gpusim.threads_active",
        THREADS_ACTIVE.load(Ordering::Relaxed) as f64,
    );
}

/// Launch a kernel on the simulated device.
///
/// Blocks execute independently — in parallel across the rayon pool when it
/// has more than one thread, sequentially otherwise. The scheduling order is
/// unspecified, as on a real device, so block bodies must not assume
/// inter-block ordering. The body runs once per block with that block's
/// [`BlockCtx`].
///
/// Sanitized launches (an active [`sanitizer`] scope) always run their
/// blocks sequentially on the launching thread: the sanitizer's shadow state
/// is thread-local, and serializing instrumented launches keeps every access
/// observation in one coherent map (the hazard classes it detects are
/// intra-block, so serializing blocks loses no coverage).
pub fn launch<F>(cfg: &LaunchConfig, body: F)
where
    F: Fn(&mut BlockCtx) + Sync,
{
    // Every thread of a bare launch runs the body: active = launched.
    count_launch(cfg, (cfg.grid.total() * cfg.block.total()) as u64);
    if sanitizer::active() {
        launch_blocks_sanitized(cfg, &body);
    } else {
        launch_blocks_raw(cfg, &body);
    }
}

/// Run one block of `cfg` at grid position `(bx, by, bz)`, borrowing the
/// host thread's pooled shared-memory arena for the block's lifetime.
fn run_block<F>(cfg: &LaunchConfig, body: &F, bx: usize, by: usize, bz: usize)
where
    F: Fn(&mut BlockCtx) + Sync,
{
    // Per-block trace events land on the executing thread's lane, giving the
    // trace one span per block per pool worker. Gated like the launch hook.
    let tracing = caliper::trace::enabled();
    if tracing {
        caliper::trace::begin_event("gpusim.block");
    }
    let mut ctx = BlockCtx {
        block_idx: Dim3::d3(bx, by, bz),
        block_dim: cfg.block,
        grid_dim: cfg.grid,
        shared: SharedMem::acquire(cfg.shared_f64),
        barriers: Cell::new(0),
    };
    body(&mut ctx);
    ctx.shared.release();
    if tracing {
        caliper::trace::end_event("gpusim.block");
    }
}

/// The un-instrumented block scheduler: flatten the grid and let the pool
/// schedule blocks. With a one-thread pool this degrades to the same
/// in-order bz/by/bx sweep as the sanitized sequential loop.
fn launch_blocks_raw<F>(cfg: &LaunchConfig, body: &F)
where
    F: Fn(&mut BlockCtx) + Sync,
{
    use rayon::prelude::*;
    let (gx, gy) = (cfg.grid.x, cfg.grid.y);
    (0..cfg.grid.total()).into_par_iter().for_each(|flat| {
        let bx = flat % gx;
        let by = (flat / gx) % gy;
        let bz = flat / (gx * gy);
        run_block(cfg, body, bx, by, bz);
    });
}

/// The instrumented block scheduler, monomorphized separately from
/// [`launch_blocks_raw`] so the raw path carries no sanitizer branches.
/// Blocks run sequentially on the launching thread: the sanitizer's shadow
/// state is thread-local, and the hazard classes it detects are intra-block,
/// so serializing blocks loses no coverage.
#[cold]
fn launch_blocks_sanitized<F>(cfg: &LaunchConfig, body: &F)
where
    F: Fn(&mut BlockCtx) + Sync,
{
    sanitizer::on_launch(cfg);
    for bz in 0..cfg.grid.z {
        for by in 0..cfg.grid.y {
            for bx in 0..cfg.grid.x {
                run_block(cfg, body, bx, by, bz);
            }
        }
    }
}

/// Whether [`launch_1d`] must take its generic block-structured path even
/// when the fast-path conditions hold. Seeded from the `GPUSIM_GENERIC_LAUNCH`
/// environment variable (any value but `0`); toggled at runtime with
/// [`force_generic_launch`] (the fast-path equivalence tests flip it to
/// compare both paths in one process).
fn generic_launch_flag() -> &'static std::sync::atomic::AtomicBool {
    static FORCE: std::sync::OnceLock<std::sync::atomic::AtomicBool> = std::sync::OnceLock::new();
    FORCE.get_or_init(|| {
        let from_env = std::env::var_os("GPUSIM_GENERIC_LAUNCH").is_some_and(|v| v != "0");
        std::sync::atomic::AtomicBool::new(from_env)
    })
}

/// True when the 1-D fast path is disabled (see [`force_generic_launch`]).
pub fn generic_launch_forced() -> bool {
    generic_launch_flag().load(Ordering::Relaxed)
}

/// Force (or re-allow) the generic block-structured path in [`launch_1d`].
/// At pool width 1 the fast path and the generic path produce
/// bitwise-identical results; this switch exists so tests can prove that.
pub fn force_generic_launch(on: bool) {
    generic_launch_flag().store(on, Ordering::Relaxed);
}

/// Convenience: launch a 1-D grid-mapped kernel where each thread handles at
/// most one index `i < n` (RAJAPerf's standard `blockIdx.x * blockDim.x +
/// threadIdx.x` mapping). The body must tolerate concurrent disjoint writes.
///
/// # Fast path
///
/// A 1-D launch with no shared memory and no active [`sanitizer`] scope has
/// no observable block structure: no barriers, no shared state, and a body
/// that only sees its global index. In that case the device runs each
/// block's threads as one tight contiguous-index loop — no per-thread
/// [`ThreadCtx`] construction, no `Dim3` index math, no bounds guard on the
/// padding threads (they are never materialized, though the stats still
/// count them as launched). Work is chunked deterministically across the
/// rayon pool; with a one-thread pool both paths degrade to the same
/// strictly in-order `0..n` sweep, so results are bitwise identical there
/// (set `GPUSIM_GENERIC_LAUNCH=1` or call [`force_generic_launch`] to
/// compare — the equivalence tests do exactly that).
pub fn launch_1d<F>(n: usize, block_size: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let cfg = LaunchConfig::linear(n, block_size);
    count_launch(&cfg, n as u64);
    // An active event trace takes the generic path too: the fast path has no
    // block structure, so it cannot emit the per-block spans the trace is
    // for. Same discipline as the sanitizer gate — one relaxed load here,
    // zero cost while tracing is off.
    if !sanitizer::active() && !generic_launch_forced() && !caliper::trace::enabled() {
        // `for_each_index` drives each pool chunk with a bare counted loop;
        // the par-iter `SpanIter` equivalent costs ~2.4ns/element extra on
        // slice-indexed bodies (measured on Stream_TRIAD), which at stream
        // sizes erases the win from skipping the block machinery.
        rayon::for_each_index(n, &body);
    } else {
        launch_1d_generic(&cfg, n, &body);
    }
}

/// The block-structured execution of [`launch_1d`]: one guarded
/// [`ThreadCtx`] per thread, including grid-padding threads. Used under the
/// sanitizer (which needs the block/thread coordinates) and when
/// [`force_generic_launch`] is set.
fn launch_1d_generic<F>(cfg: &LaunchConfig, n: usize, body: &F)
where
    F: Fn(usize) + Sync,
{
    let wrapped = |block: &mut BlockCtx| {
        block.threads(|t, _| {
            let i = t.global_id_x();
            if i < n {
                body(i);
            }
        });
    };
    if sanitizer::active() {
        launch_blocks_sanitized(cfg, &wrapped);
    } else {
        launch_blocks_raw(cfg, &wrapped);
    }
}

/// A `Send + Sync` raw-pointer wrapper granting GPU-kernel-style unchecked
/// access to a host buffer from device code.
///
/// This is the moral equivalent of the raw device pointers CUDA kernels
/// receive: aliasing discipline is the kernel author's responsibility.
#[derive(Clone, Copy)]
pub struct DevicePtr<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: DevicePtr is a capability to perform raw indexed access; the
// `read`/`write` methods carry the actual safety obligations (in-bounds,
// data-race-free access), exactly like a device pointer in CUDA C++.
unsafe impl<T: Send> Send for DevicePtr<T> {}
unsafe impl<T: Sync> Sync for DevicePtr<T> {}

/// Evaluate the `gpusim.ecc` failpoint: an armed `flip` entry models an
/// uncorrected ECC error by flipping one deterministically-chosen bit of the
/// buffer being registered with the device. Kernel buffers are plain numeric
/// data, where any bit pattern is a valid value.
#[cold]
fn ecc_failpoint<T>(slice: &mut [T]) {
    // SAFETY: `slice` is an exclusive borrow and the byte view covers
    // exactly its memory; u8 has no validity or alignment requirements.
    let bytes = unsafe {
        std::slice::from_raw_parts_mut(slice.as_mut_ptr() as *mut u8, std::mem::size_of_val(slice))
    };
    simfault::corrupt_bytes("gpusim.ecc", bytes);
}

impl<T> DevicePtr<T> {
    /// Wrap a host slice for device access. The borrow is logically exclusive
    /// for the duration of the launch.
    pub fn new(slice: &mut [T]) -> DevicePtr<T> {
        if simfault::armed() {
            ecc_failpoint(slice);
        }
        let p = DevicePtr {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        };
        if sanitizer::active() {
            // The buffer arrives initialized: clear any stale uninit
            // tracking of this memory from a previous allocation.
            sanitizer::on_alloc_init(p.ptr as usize, p.len * std::mem::size_of::<T>());
        }
        p
    }

    /// Wrap a host slice whose contents are *logically uninitialized*: the
    /// kernel is expected to write every element it later reads. Under an
    /// active [`sanitizer`] scope, reads that precede any write to the same
    /// element are reported as [`sanitizer::HazardKind::UninitRead`]
    /// (the memory itself is real host memory, so the access stays defined
    /// — this models `compute-sanitizer initcheck`, not UB detection).
    pub fn new_uninit(slice: &mut [T]) -> DevicePtr<T> {
        if simfault::armed() {
            ecc_failpoint(slice);
        }
        let p = DevicePtr {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        };
        if sanitizer::active() {
            sanitizer::on_alloc_uninit(
                p.ptr as usize,
                p.len * std::mem::size_of::<T>(),
                std::mem::size_of::<T>(),
            );
        }
        p
    }

    /// Length of the underlying buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    ///
    /// Under an active [`sanitizer`] scope the access is recorded (race,
    /// bounds, and init checks); an out-of-bounds index is reported and
    /// clamped in bounds so execution stays defined.
    ///
    /// # Safety
    /// `i < len`, and no thread may be concurrently writing element `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        let i = if sanitizer::active() {
            sanitizer::on_global_read(self.ptr as usize, std::mem::size_of::<T>(), self.len, i)
        } else {
            i
        };
        debug_assert!(i < self.len, "DevicePtr read out of bounds: {i} >= {}", self.len);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        unsafe { *self.ptr.add(i) }
    }

    /// Write element `i`.
    ///
    /// Under an active [`sanitizer`] scope the access is recorded (race,
    /// bounds, and init checks); an out-of-bounds index is reported and
    /// clamped in bounds so execution stays defined.
    ///
    /// # Safety
    /// `i < len`, and no other thread may concurrently access element `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        let i = if sanitizer::active() {
            sanitizer::on_global_write(self.ptr as usize, std::mem::size_of::<T>(), self.len, i)
        } else {
            i
        };
        debug_assert!(i < self.len, "DevicePtr write out of bounds: {i} >= {}", self.len);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        unsafe { *self.ptr.add(i) = v };
    }

    /// Get a mutable reference to element `i` (treated as a write by the
    /// [`sanitizer`], which also reports and clamps out-of-bounds indices).
    ///
    /// # Safety
    /// `i < len`, exclusive access to element `i` for the reference lifetime.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn at_mut(&self, i: usize) -> &mut T {
        let i = if sanitizer::active() {
            sanitizer::on_global_write(self.ptr as usize, std::mem::size_of::<T>(), self.len, i)
        } else {
            i
        };
        debug_assert!(i < self.len, "DevicePtr at_mut out of bounds: {i} >= {}", self.len);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        unsafe { &mut *self.ptr.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_config_rounds_up() {
        let cfg = LaunchConfig::linear(1000, 256);
        assert_eq!(cfg.grid.x, 4);
        assert_eq!(cfg.block.x, 256);
        let cfg = LaunchConfig::linear(1024, 256);
        assert_eq!(cfg.grid.x, 4);
        let cfg = LaunchConfig::linear(0, 256);
        assert_eq!(cfg.grid.x, 1);
    }

    #[test]
    fn launch_1d_covers_exactly_n_indices() {
        let n = 1003;
        let mut hits = vec![0u8; n];
        let p = DevicePtr::new(&mut hits);
        // SAFETY: the index is in bounds of the allocation the pointer was built
        // from, and each parallel iterate writes a distinct element, so writes
        // never alias.
        launch_1d(n, 128, |i| unsafe { p.write(i, p.read(i) + 1) });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn stats_count_launches_blocks_threads() {
        reset_stats();
        launch_1d(512, 256, |_| {});
        let s = stats();
        assert_eq!(s.launches, 1);
        assert_eq!(s.blocks, 2);
        assert_eq!(s.threads_launched, 512);
        assert_eq!(s.threads_active, 512);
        assert_eq!(s.threads_padded(), 0);
    }

    #[test]
    fn stats_split_padded_from_active_threads() {
        // 1000 elements in 256-thread blocks: 4 blocks, 24 padding threads.
        reset_stats();
        launch_1d(1000, 256, |_| {});
        let s = stats();
        assert_eq!(s.blocks, 4);
        assert_eq!(s.threads_launched, 1024);
        assert_eq!(s.threads_active, 1000);
        assert_eq!(s.threads_padded(), 24);

        // The linear(0, _) edge: the device still schedules one (empty)
        // block of 256 threads, but none of them have work.
        reset_stats();
        launch_1d(0, 256, |_| unreachable!("no index has work"));
        let s = stats();
        assert_eq!(s.launches, 1);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.threads_launched, 256);
        assert_eq!(s.threads_active, 0);
        assert_eq!(s.threads_padded(), 256);

        // A bare launch has no padding: every thread runs the body.
        reset_stats();
        launch(&LaunchConfig::linear(512, 128), |block| {
            block.threads(|_, _| {});
        });
        let s = stats();
        assert_eq!(s.threads_launched, 512);
        assert_eq!(s.threads_active, 512);
    }

    #[test]
    fn generic_launch_path_matches_fast_path() {
        let n = 1003;
        let run = |generic: bool| {
            force_generic_launch(generic);
            let mut out = vec![0.0f64; n];
            let p = DevicePtr::new(&mut out);
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            launch_1d(n, 128, |i| unsafe { p.write(i, (i as f64).sin()) });
            force_generic_launch(false);
            out
        };
        let fast = run(false);
        let generic = run(true);
        assert!(fast
            .iter()
            .zip(&generic)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn shared_memory_persists_across_phases() {
        // Per-block reduction into shared[0] in phase 1; read it in phase 2.
        let n = 256;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut out = vec![0.0f64; 1];
        let out_ptr = DevicePtr::new(&mut out);
        let cfg = LaunchConfig::linear(n, 256).with_shared_f64(1);
        launch(&cfg, |block| {
            block.threads(|t, shared| {
                shared[0] += data[t.global_id_x()];
            });
            block.threads(|t, shared| {
                if t.flat_thread() == 0 {
                    // SAFETY: the index is in bounds of the allocation the pointer was built
                    // from, and each parallel iterate writes a distinct element, so writes
                    // never alias.
                    unsafe { out_ptr.write(0, shared[0]) };
                }
            });
            assert_eq!(block.barriers_executed(), 2);
        });
        assert_eq!(out[0], (0..n).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn two_d_thread_identities() {
        let cfg = LaunchConfig::grid_block(Dim3::d2(2, 2), Dim3::d2(4, 4));
        let mut seen = vec![0u8; 8 * 8];
        let p = DevicePtr::new(&mut seen);
        launch(&cfg, |block| {
            block.threads(|t, _| {
                let (gx, gy) = (t.global_id_x(), t.global_id_y());
                // SAFETY: the index is in bounds of the allocation the pointer was built
                // from, and each parallel iterate writes a distinct element, so writes
                // never alias.
                unsafe { p.write(gy * 8 + gx, 1) };
            });
        });
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn warp_index_matches_flat_id() {
        let cfg = LaunchConfig::linear(64, 64);
        launch(&cfg, |block| {
            block.threads(|t, _| {
                assert_eq!(t.warp(), t.flat_thread() / WARP_SIZE);
            });
        });
    }

    #[test]
    fn blocks_have_private_shared_memory() {
        let nblocks = 4;
        let mut firsts = vec![-1.0f64; nblocks];
        let p = DevicePtr::new(&mut firsts);
        let cfg = LaunchConfig::grid_block(Dim3::d1(nblocks), Dim3::d1(8)).with_shared_f64(1);
        launch(&cfg, |block| {
            let bx = block.block_idx.x;
            block.threads(|_, shared| {
                shared[0] += 1.0;
            });
            // 8 threads incremented a zero-initialized private slot.
            assert_eq!(block.shared()[0], 8.0);
            // SAFETY: the index is in bounds of the allocation the pointer was built
            // from, and each parallel iterate writes a distinct element, so writes
            // never alias.
            unsafe { p.write(bx, block.shared()[0]) };
        });
        assert!(firsts.iter().all(|&f| f == 8.0));
    }
}
