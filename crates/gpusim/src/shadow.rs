//! Shadow state for the simulated-device sanitizer (`simsan`).
//!
//! Two kinds of shadow state back the checks in [`crate::sanitizer`]:
//!
//! * **Per-phase access maps** record, for every memory cell touched inside
//!   the current barrier-delimited phase, which thread last wrote it and
//!   which thread last read it. Because the simulator runs one block at a
//!   time and clears the map at every barrier, an entry can only collide
//!   with an access from another thread *of the same block in the same
//!   phase* — exactly the window in which real GPU threads run unordered
//!   and an unsynchronized conflict is a data race.
//! * **An uninitialized-allocation table** tracks buffers registered through
//!   [`crate::DevicePtr::new_uninit`] with a per-element init bitmap, so
//!   reads that precede any write can be reported (the host memory is
//!   really initialized, so the read itself is defined — the *kernel logic*
//!   is what's wrong, which is what a `cuda-memcheck initcheck` run flags).

use crate::Dim3;
use std::collections::{BTreeMap, HashMap};

/// Per-cell access record within one barrier-delimited phase.
#[derive(Debug, Clone, Copy, Default)]
struct CellAccess {
    /// Thread (by in-block index) that last wrote the cell this phase.
    writer: Option<Dim3>,
    /// Thread that last read the cell this phase.
    reader: Option<Dim3>,
}

/// Conflicts found by recording a write.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteConflict {
    /// A different thread already wrote this cell in the same phase.
    pub prior_writer: Option<Dim3>,
    /// A different thread already read this cell in the same phase.
    pub prior_reader: Option<Dim3>,
}

/// Access map for one memory space, valid for the current phase only.
///
/// Keys are byte addresses for global memory and word indices for shared
/// memory; the map never interprets them, it only compares thread identity.
#[derive(Debug, Default)]
pub struct PhaseAccessMap {
    cells: HashMap<usize, CellAccess>,
}

impl PhaseAccessMap {
    /// Record a read of `key` by thread `who`; returns the conflicting
    /// writer if another thread wrote the cell earlier in this phase.
    pub fn note_read(&mut self, key: usize, who: Dim3) -> Option<Dim3> {
        let cell = self.cells.entry(key).or_default();
        let conflict = cell.writer.filter(|w| *w != who);
        cell.reader = Some(who);
        conflict
    }

    /// Record a write of `key` by thread `who`; returns any conflicting
    /// prior accesses by other threads in this phase.
    pub fn note_write(&mut self, key: usize, who: Dim3) -> WriteConflict {
        let cell = self.cells.entry(key).or_default();
        let conflict = WriteConflict {
            prior_writer: cell.writer.filter(|w| *w != who),
            prior_reader: cell.reader.filter(|r| *r != who),
        };
        cell.writer = Some(who);
        conflict
    }

    /// Forget every access — called at each barrier (phase end), which is
    /// what makes a barrier *fix* the hazards this map detects.
    pub fn clear(&mut self) {
        self.cells.clear();
    }

    /// Number of distinct cells touched this phase (diagnostic).
    #[cfg(test)]
    pub fn touched(&self) -> usize {
        self.cells.len()
    }
}

/// One tracked uninitialized allocation.
#[derive(Debug)]
struct UninitAlloc {
    /// Allocation size in bytes.
    bytes: usize,
    /// Element size in bytes.
    elem: usize,
    /// Per-element "has been written" bits.
    init: Vec<bool>,
}

/// Registry of buffers whose contents are logically uninitialized until
/// first write, keyed by base byte address.
#[derive(Debug, Default)]
pub struct UninitTable {
    allocs: BTreeMap<usize, UninitAlloc>,
}

impl UninitTable {
    /// Track `[base, base + bytes)` as uninitialized, `elem` bytes per
    /// element. Replaces any previous registration at the same base.
    pub fn register(&mut self, base: usize, bytes: usize, elem: usize) {
        if elem == 0 || bytes == 0 {
            return;
        }
        self.remove_overlapping(base, bytes);
        self.allocs.insert(
            base,
            UninitAlloc {
                bytes,
                elem,
                init: vec![false; bytes / elem],
            },
        );
    }

    /// Stop tracking anything overlapping `[base, base + bytes)` — the
    /// memory was handed out again (e.g. through `DevicePtr::new`), so its
    /// contents are the caller's responsibility once more.
    pub fn remove_overlapping(&mut self, base: usize, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let end = base.saturating_add(bytes);
        let stale: Vec<usize> = self
            .allocs
            .range(..end)
            .rev()
            .take_while(|(b, a)| b.saturating_add(a.bytes) > base)
            .map(|(b, _)| *b)
            .collect();
        for b in stale {
            self.allocs.remove(&b);
        }
    }

    /// Mark the element at byte address `addr` as initialized.
    pub fn mark_init(&mut self, addr: usize) {
        if let Some((base, alloc)) = self.allocs.range_mut(..=addr).next_back() {
            let off = addr - base;
            if off < alloc.bytes {
                alloc.init[off / alloc.elem] = true;
            }
        }
    }

    /// Whether the element at byte address `addr` is a tracked,
    /// never-written location.
    pub fn is_uninit(&self, addr: usize) -> bool {
        match self.allocs.range(..=addr).next_back() {
            Some((base, alloc)) => {
                let off = addr - base;
                off < alloc.bytes && !alloc.init[off / alloc.elem]
            }
            None => false,
        }
    }

    /// Number of tracked allocations (diagnostic).
    #[cfg(test)]
    pub fn tracked(&self) -> usize {
        self.allocs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Dim3 = Dim3 { x: 0, y: 0, z: 0 };
    const T1: Dim3 = Dim3 { x: 1, y: 0, z: 0 };

    #[test]
    fn same_thread_accesses_never_conflict() {
        let mut m = PhaseAccessMap::default();
        assert!(m.note_write(100, T0).prior_writer.is_none());
        assert!(m.note_read(100, T0).is_none());
        let c = m.note_write(100, T0);
        assert!(c.prior_writer.is_none() && c.prior_reader.is_none());
    }

    #[test]
    fn cross_thread_conflicts_are_reported_until_cleared() {
        let mut m = PhaseAccessMap::default();
        m.note_write(8, T0);
        assert_eq!(m.note_read(8, T1), Some(T0), "read-after-write");
        let c = m.note_write(8, T1);
        assert_eq!(c.prior_writer, Some(T0), "write-after-write");
        m.clear();
        assert!(m.note_read(8, T1).is_none(), "barrier clears the window");
        assert_eq!(m.touched(), 1);
    }

    #[test]
    fn uninit_table_tracks_per_element_bits() {
        let mut t = UninitTable::default();
        t.register(1000, 64, 8); // 8 f64 elements at bytes 1000..1064
        assert!(t.is_uninit(1000));
        assert!(t.is_uninit(1056));
        assert!(!t.is_uninit(1064), "one past the end is untracked");
        assert!(!t.is_uninit(992), "before the base is untracked");
        t.mark_init(1008);
        assert!(!t.is_uninit(1008));
        assert!(t.is_uninit(1016), "neighbors stay uninit");
    }

    #[test]
    fn reregistration_replaces_overlapping_entries() {
        let mut t = UninitTable::default();
        t.register(1000, 64, 8);
        t.mark_init(1000);
        // Reuse of the same memory: a fresh uninit registration resets bits.
        t.register(1000, 64, 8);
        assert!(t.is_uninit(1000));
        // A plain (initialized) handout removes the tracking entirely.
        t.remove_overlapping(1032, 8);
        assert!(!t.is_uninit(1000));
        assert_eq!(t.tracked(), 0);
    }
}
