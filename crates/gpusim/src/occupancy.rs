//! Occupancy calculation: how many thread blocks fit on one multiprocessor
//! given its thread, warp-slot, and shared-memory limits.
//!
//! RAJAPerf's block-size *tunings* trade off occupancy against per-block
//! resources; this is the calculator behind that trade-off (the CUDA
//! occupancy API's core arithmetic), parameterized for a V100-class SM by
//! default.

/// A multiprocessor's scheduling limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmLimits {
    /// Maximum resident threads.
    pub max_threads: usize,
    /// Maximum resident blocks.
    pub max_blocks: usize,
    /// Shared memory capacity, bytes.
    pub shared_bytes: usize,
    /// Maximum threads per block the hardware accepts.
    pub max_threads_per_block: usize,
}

impl SmLimits {
    /// V100-class streaming multiprocessor (2048 threads, 32 blocks,
    /// 96 KiB shared).
    pub const fn v100() -> SmLimits {
        SmLimits {
            max_threads: 2048,
            max_blocks: 32,
            shared_bytes: 96 * 1024,
            max_threads_per_block: 1024,
        }
    }

    /// MI250X-class compute unit (2048 threads, 64 KiB LDS).
    pub const fn mi250x() -> SmLimits {
        SmLimits {
            max_threads: 2048,
            max_blocks: 32,
            shared_bytes: 64 * 1024,
            max_threads_per_block: 1024,
        }
    }
}

/// The occupancy outcome for one launch configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per multiprocessor.
    pub blocks_per_sm: usize,
    /// Resident threads per multiprocessor.
    pub threads_per_sm: usize,
    /// Fraction of the thread capacity occupied (0..=1).
    pub fraction: f64,
    /// Which limit bound the result.
    pub limited_by: OccupancyLimit,
}

/// The resource that capped the resident block count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimit {
    /// The per-SM thread capacity.
    Threads,
    /// The per-SM block-slot count.
    Blocks,
    /// The shared-memory capacity.
    SharedMemory,
    /// The block is not launchable at all (exceeds a hard limit).
    NotLaunchable,
}

/// Compute occupancy for `threads_per_block` threads and
/// `shared_bytes_per_block` bytes of shared memory per block.
pub fn occupancy(limits: &SmLimits, threads_per_block: usize, shared_bytes_per_block: usize) -> Occupancy {
    if threads_per_block == 0
        || threads_per_block > limits.max_threads_per_block
        || shared_bytes_per_block > limits.shared_bytes
    {
        return Occupancy {
            blocks_per_sm: 0,
            threads_per_sm: 0,
            fraction: 0.0,
            limited_by: OccupancyLimit::NotLaunchable,
        };
    }
    let by_threads = limits.max_threads / threads_per_block;
    let by_blocks = limits.max_blocks;
    let by_shared = limits
        .shared_bytes
        .checked_div(shared_bytes_per_block)
        .unwrap_or(usize::MAX);
    let blocks = by_threads.min(by_blocks).min(by_shared);
    let limited_by = if blocks == by_threads && by_threads <= by_blocks && by_threads <= by_shared {
        OccupancyLimit::Threads
    } else if blocks == by_shared && by_shared < by_blocks {
        OccupancyLimit::SharedMemory
    } else {
        OccupancyLimit::Blocks
    };
    let threads = blocks * threads_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        threads_per_sm: threads,
        fraction: threads as f64 / limits.max_threads as f64,
        limited_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_256_fills_a_v100_sm() {
        let o = occupancy(&SmLimits::v100(), 256, 0);
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.threads_per_sm, 2048);
        assert_eq!(o.fraction, 1.0);
        assert_eq!(o.limited_by, OccupancyLimit::Threads);
    }

    #[test]
    fn tiny_blocks_are_block_slot_limited() {
        // 32-thread blocks: 2048/32 = 64 would fit by threads, but only 32
        // block slots exist — half occupancy, the classic tuning pitfall.
        let o = occupancy(&SmLimits::v100(), 32, 0);
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.threads_per_sm, 1024);
        assert!((o.fraction - 0.5).abs() < 1e-12);
        assert_eq!(o.limited_by, OccupancyLimit::Blocks);
    }

    #[test]
    fn shared_memory_limits_tiled_kernels() {
        // MAT_MAT_SHARED-style tiles: 3 × 16×16 f64 tiles = 6144 B/block,
        // 256 threads. V100: by shared 96K/6144 = 16, by threads 8 →
        // thread-limited. Crank shared usage to dominate:
        let o = occupancy(&SmLimits::v100(), 128, 48 * 1024);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limited_by, OccupancyLimit::SharedMemory);
    }

    #[test]
    fn oversized_blocks_are_not_launchable() {
        let o = occupancy(&SmLimits::v100(), 2048, 0);
        assert_eq!(o.limited_by, OccupancyLimit::NotLaunchable);
        assert_eq!(o.fraction, 0.0);
        let o = occupancy(&SmLimits::mi250x(), 256, 128 * 1024);
        assert_eq!(o.limited_by, OccupancyLimit::NotLaunchable);
    }

    #[test]
    fn block_size_sweep_shape() {
        // Across RAJAPerf's tunings, occupancy peaks at mid block sizes for
        // shared-memory-free kernels.
        let occ: Vec<f64> = [64, 128, 256, 512, 1024]
            .iter()
            .map(|&b| occupancy(&SmLimits::v100(), b, 0).fraction)
            .collect();
        assert_eq!(occ, vec![1.0, 1.0, 1.0, 1.0, 1.0]);
        let occ32 = occupancy(&SmLimits::v100(), 32, 0).fraction;
        assert!(occ32 < 1.0, "only the tiny block loses occupancy");
    }
}
