//! The Caliper **event-trace service**: a per-thread ring buffer of
//! begin/end/counter/instant events with timestamps and lane ids, plus
//! exporters to Chrome Trace Event JSON (`chrome://tracing` / Perfetto) and
//! flamegraph folded stacks.
//!
//! Real Caliper's aggregating services (what [`crate::Session`] implements)
//! collapse every visit of a region into one call-path record. That is the
//! right shape for Thicket's cross-run dataframes, but it discards the
//! *timeline*: when each visit happened, on which thread, and how visits
//! from different threads interleaved — exactly the information needed to
//! diagnose parallel-backend scalability (why a `Par` variant does not
//! scale) or launch-overhead pathologies. This module is the event-level
//! counterpart, modeled on Caliper's `event` + `trace` services.
//!
//! # Design
//!
//! * **Process-global collector, per-thread lanes.** Every thread that
//!   records gets its own *lane*: a fixed-capacity ring buffer it alone
//!   writes. Rayon pool workers get stable lane ids derived from
//!   [`rayon::current_worker_index`] (lane `1 + worker`), so a trace view
//!   shows one swimlane per pool worker; non-pool threads get lanes past
//!   [`NONWORKER_LANE_BASE`] (the first one, normally the main thread, gets
//!   lane 0).
//! * **Zero cost when off.** The global gate is one relaxed atomic load
//!   ([`enabled`]); every producer (the session annotation API, the gpusim
//!   device) checks it before doing any work. Nothing is allocated, timed,
//!   or locked until the first event of an enabled trace.
//! * **Bounded memory.** Each lane's ring holds [`default capacity`]
//!   events; once full, the oldest events are overwritten and counted in
//!   [`LaneSnapshot::dropped`]. Exporters tolerate the resulting unmatched
//!   begin/end events.
//!
//! [`default capacity`]: DEFAULT_LANE_CAPACITY

use simsched::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use simsched::sync::Mutex;
use simsched::time::Instant;
use std::sync::{Arc, OnceLock};

/// Default per-lane ring capacity, in events.
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 20;

/// First lane id handed to threads that are *not* rayon pool workers (other
/// than the very first such thread, which gets lane 0 — normally the main
/// thread). Pool worker `w` always gets lane `1 + w`.
pub const NONWORKER_LANE_BASE: u32 = 1 << 16;

/// What one trace event records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A region opened (Chrome phase `B`).
    Begin,
    /// A region closed (Chrome phase `E`).
    End,
    /// A sampled counter value (Chrome phase `C`).
    Counter(f64),
    /// A point-in-time marker (Chrome phase `i`).
    Instant,
}

impl EventKind {
    /// The Chrome Trace Event phase letter.
    pub fn phase(&self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Counter(_) => "C",
            EventKind::Instant => "i",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event (region/counter/marker) name.
    pub name: String,
    /// What happened.
    pub kind: EventKind,
    /// Microseconds since the collector's epoch (first [`enable`] call).
    pub ts_us: f64,
}

/// A fixed-capacity overwrite-oldest ring of events.
struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the chronologically first event once the ring has wrapped.
    head: usize,
    /// Events overwritten since the last [`clear`].
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent, capacity: usize) {
        if self.buf.len() < capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.len();
            self.dropped += 1;
        }
    }

    fn chronological(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// One thread's lane of the event trace, snapshotted for export.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    /// Stable lane id (Chrome `tid`): `1 + worker` for pool workers, 0 for
    /// the first non-worker thread, `NONWORKER_LANE_BASE + k` otherwise.
    pub id: u32,
    /// Human-readable lane label (`main`, `pool-worker-3`, ...).
    pub label: String,
    /// Events in chronological order.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrite since the last clear.
    pub dropped: u64,
}

struct Lane {
    id: u32,
    label: String,
    ring: Mutex<Ring>,
}

struct Collector {
    epoch: Instant,
    lanes: Mutex<Vec<Arc<Lane>>>,
    nonworker_seq: AtomicU32,
    capacity: AtomicUsize,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        lanes: Mutex::new(Vec::new()),
        nonworker_seq: AtomicU32::new(0),
        capacity: AtomicUsize::new(DEFAULT_LANE_CAPACITY),
    })
}

thread_local! {
    /// This thread's lane, registered with the collector on first use.
    static MY_LANE: std::cell::OnceCell<Arc<Lane>> = const { std::cell::OnceCell::new() };
}

/// Whether the event-trace service is collecting. One relaxed atomic load:
/// this is the producers' fast-path gate, the trace-off zero-cost guarantee.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switch event collection on. The first call fixes the trace epoch
/// (timestamp zero).
pub fn enable() {
    collector();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Switch event collection off. Already-recorded events are retained until
/// [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Discard every recorded event (lane registrations persist — threads keep
/// their lane ids for the process lifetime).
pub fn clear() {
    let c = collector();
    for lane in c.lanes.lock().unwrap().iter() {
        let mut ring = lane.ring.lock().unwrap();
        ring.buf.clear();
        ring.head = 0;
        ring.dropped = 0;
    }
}

/// Cap each lane's ring at `events` entries (applies to subsequent pushes;
/// existing longer rings are kept until they naturally shrink via clear).
pub fn set_lane_capacity(events: usize) {
    collector().capacity.store(events.max(1), Ordering::Relaxed);
}

fn lane_for_current_thread(c: &'static Collector) -> Arc<Lane> {
    MY_LANE.with(|cell| {
        Arc::clone(cell.get_or_init(|| {
            let (id, label) = match rayon::current_worker_index() {
                Some(w) => (1 + w as u32, format!("pool-worker-{w}")),
                None => match c.nonworker_seq.fetch_add(1, Ordering::Relaxed) {
                    0 => (0, "main".to_string()),
                    k => (NONWORKER_LANE_BASE + k, format!("thread-{k}")),
                },
            };
            let lane = Arc::new(Lane {
                id,
                label,
                ring: Mutex::new(Ring {
                    buf: Vec::new(),
                    head: 0,
                    dropped: 0,
                }),
            });
            c.lanes.lock().unwrap().push(Arc::clone(&lane));
            lane
        }))
    })
}

/// Record one event on the calling thread's lane. Cold: callers gate on
/// [`enabled`] first, so this never sits on a trace-off fast path.
#[cold]
pub fn record(name: &str, kind: EventKind) {
    let c = collector();
    let ts_us = c.epoch.elapsed().as_secs_f64() * 1e6;
    let lane = lane_for_current_thread(c);
    let capacity = c.capacity.load(Ordering::Relaxed);
    lane.ring.lock().unwrap().push(
        TraceEvent {
            name: name.to_string(),
            kind,
            ts_us,
        },
        capacity,
    );
}

/// Record a region-begin event (no-op while tracing is off).
#[inline]
pub fn begin_event(name: &str) {
    if enabled() {
        record(name, EventKind::Begin);
    }
}

/// Record a region-end event (no-op while tracing is off).
#[inline]
pub fn end_event(name: &str) {
    if enabled() {
        record(name, EventKind::End);
    }
}

/// Record a counter sample (no-op while tracing is off).
#[inline]
pub fn counter_event(name: &str, value: f64) {
    if enabled() {
        record(name, EventKind::Counter(value));
    }
}

/// Record an instant marker (no-op while tracing is off).
#[inline]
pub fn instant_event(name: &str) {
    if enabled() {
        record(name, EventKind::Instant);
    }
}

/// Snapshot every lane (sorted by lane id), skipping lanes with no events.
pub fn snapshot() -> Vec<LaneSnapshot> {
    let c = collector();
    let mut out: Vec<LaneSnapshot> = c
        .lanes
        .lock()
        .unwrap()
        .iter()
        .map(|lane| {
            let ring = lane.ring.lock().unwrap();
            LaneSnapshot {
                id: lane.id,
                label: lane.label.clone(),
                events: ring.chronological(),
                dropped: ring.dropped,
            }
        })
        .filter(|s| !s.events.is_empty())
        .collect();
    out.sort_by_key(|s| s.id);
    out
}

/// Validate the begin/end discipline of a snapshot: on every lane, events
/// must nest properly and every `Begin` must have a matching `End` with
/// `ts_end >= ts_begin`. Returns the number of complete begin/end pairs.
///
/// This is the invariant the trace exporters rely on and the suite's
/// property test checks across the whole kernel registry. A trace that
/// overflowed its ring (nonzero [`LaneSnapshot::dropped`]) can legitimately
/// violate it; this validator is for bounded traces.
pub fn validate_pairing(lanes: &[LaneSnapshot]) -> Result<usize, String> {
    let mut pairs = 0usize;
    for lane in lanes {
        let mut stack: Vec<(&str, f64)> = Vec::new();
        for ev in &lane.events {
            match ev.kind {
                EventKind::Begin => stack.push((&ev.name, ev.ts_us)),
                EventKind::End => {
                    let (name, ts0) = stack.pop().ok_or_else(|| {
                        format!("lane {}: end '{}' without a begin", lane.label, ev.name)
                    })?;
                    if name != ev.name {
                        return Err(format!(
                            "lane {}: end '{}' does not match open region '{}'",
                            lane.label, ev.name, name
                        ));
                    }
                    if ev.ts_us < ts0 {
                        return Err(format!(
                            "lane {}: region '{}' ends at {} before it begins at {}",
                            lane.label, ev.name, ev.ts_us, ts0
                        ));
                    }
                    pairs += 1;
                }
                EventKind::Counter(_) | EventKind::Instant => {}
            }
        }
        if let Some((name, _)) = stack.last() {
            return Err(format!(
                "lane {}: {} unclosed region(s), innermost '{}'",
                lane.label,
                stack.len(),
                name
            ));
        }
    }
    Ok(pairs)
}

/// Serialize the current event log as Chrome Trace Event JSON — the "JSON
/// Array with metadata" flavor, loadable in `chrome://tracing` and Perfetto.
///
/// Every lane becomes a Chrome thread (`tid` = lane id) named via a
/// `thread_name` metadata event. Regions map to `B`/`E` duration events,
/// counters to `C` events, markers to thread-scoped `i` events.
pub fn export_chrome_json() -> String {
    use serde_json::{json, Value};
    fn event_obj(name: &str, ph: &str, tid: u32, ts: f64) -> std::collections::BTreeMap<String, Value> {
        let mut m = std::collections::BTreeMap::new();
        m.insert("name".to_string(), json!(name));
        m.insert("ph".to_string(), json!(ph));
        m.insert("pid".to_string(), json!(1));
        m.insert("tid".to_string(), json!(tid));
        m.insert("ts".to_string(), json!(ts));
        m
    }
    let lanes = snapshot();
    let dropped: u64 = lanes.iter().map(|l| l.dropped).sum();
    let mut events: Vec<Value> = Vec::new();
    for lane in &lanes {
        let mut meta = event_obj("thread_name", "M", lane.id, 0.0);
        meta.remove("ts");
        meta.insert("args".to_string(), json!({"name": lane.label}));
        events.push(Value::Object(meta));
        for ev in &lane.events {
            let mut obj = event_obj(&ev.name, ev.kind.phase(), lane.id, ev.ts_us);
            match ev.kind {
                EventKind::Begin | EventKind::End => {
                    obj.insert("cat".to_string(), json!("region"));
                }
                EventKind::Counter(v) => {
                    obj.insert("args".to_string(), json!({"value": v}));
                }
                EventKind::Instant => {
                    obj.insert("s".to_string(), json!("t"));
                }
            }
            events.push(Value::Object(obj));
        }
    }
    let mut other = std::collections::BTreeMap::new();
    other.insert(
        "producer".to_string(),
        json!("rajaperf-rs caliper trace service"),
    );
    other.insert("dropped_events".to_string(), json!(dropped));
    let mut doc = std::collections::BTreeMap::new();
    doc.insert("traceEvents".to_string(), Value::Array(events));
    doc.insert("displayTimeUnit".to_string(), json!("ms"));
    doc.insert("otherData".to_string(), Value::Object(other));
    serde_json::to_string_pretty(&Value::Object(doc)).expect("trace serialization cannot fail")
}

/// Serialize the current event log as flamegraph *folded stacks*: one line
/// per distinct call stack, `lane;outer;inner <self-time-us>`, suitable for
/// `flamegraph.pl` / `inferno-flamegraph`. Values are each stack's
/// *exclusive* (self) time in integer microseconds, summed over visits.
///
/// Unmatched events (from ring overwrite, or regions still open when the
/// snapshot was taken) are skipped rather than guessed at.
pub fn export_folded() -> String {
    use std::collections::BTreeMap;
    let mut agg: BTreeMap<String, f64> = BTreeMap::new();
    for lane in snapshot() {
        // Replay the lane's stack: (name, ts_begin, accumulated child time).
        let mut stack: Vec<(String, f64, f64)> = Vec::new();
        for ev in lane.events {
            match ev.kind {
                EventKind::Begin => stack.push((ev.name, ev.ts_us, 0.0)),
                EventKind::End => {
                    let Some(pos) = stack.iter().rposition(|f| f.0 == ev.name) else {
                        continue; // unmatched end: begin was overwritten
                    };
                    stack.truncate(pos + 1);
                    let (name, ts0, child) = stack.pop().expect("pos is in range");
                    let dur = (ev.ts_us - ts0).max(0.0);
                    let mut path = String::with_capacity(lane.label.len() + name.len() + 8);
                    path.push_str(&lane.label);
                    for (frame, _, _) in &stack {
                        path.push(';');
                        path.push_str(frame);
                    }
                    path.push(';');
                    path.push_str(&name);
                    *agg.entry(path).or_default() += (dur - child).max(0.0);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += dur;
                    }
                }
                EventKind::Counter(_) | EventKind::Instant => {}
            }
        }
    }
    let mut out = String::new();
    for (path, self_us) in agg {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&format!("{}", self_us.round() as u64));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; tests in this module serialize on one
    // lock so enable/clear calls do not interleave.
    fn lock() -> simsched::sync::MutexGuard<'static, ()> {
        static LOCK: simsched::sync::Mutex<()> = simsched::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_is_the_default_and_records_nothing() {
        let _g = lock();
        clear();
        disable();
        assert!(!enabled());
        begin_event("r");
        end_event("r");
        counter_event("c", 1.0);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn events_record_in_order_with_monotonic_timestamps() {
        let _g = lock();
        clear();
        enable();
        begin_event("outer");
        begin_event("inner");
        counter_event("bytes", 42.0);
        end_event("inner");
        end_event("outer");
        disable();
        let lanes = snapshot();
        clear();
        let lane = lanes
            .iter()
            .find(|l| l.events.iter().any(|e| e.name == "outer"))
            .expect("recording lane present");
        let names: Vec<&str> = lane.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "bytes", "inner", "outer"]);
        assert!(lane
            .events
            .windows(2)
            .all(|w| w[0].ts_us <= w[1].ts_us));
        assert_eq!(validate_pairing(&lanes).unwrap(), 2);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = lock();
        clear();
        set_lane_capacity(4);
        enable();
        for i in 0..10 {
            instant_event(&format!("ev{i}"));
        }
        disable();
        let lanes = snapshot();
        clear();
        set_lane_capacity(DEFAULT_LANE_CAPACITY);
        let lane = lanes
            .iter()
            .find(|l| l.events.iter().any(|e| e.name.starts_with("ev")))
            .expect("recording lane present");
        let evs: Vec<&TraceEvent> =
            lane.events.iter().filter(|e| e.name.starts_with("ev")).collect();
        assert_eq!(evs.len(), 4, "ring capped at 4 events");
        assert_eq!(evs.last().unwrap().name, "ev9", "newest retained");
        assert!(lane.dropped >= 6, "oldest overwritten: {}", lane.dropped);
    }

    #[test]
    fn validate_pairing_rejects_malformed_traces() {
        let mk = |events: Vec<TraceEvent>| LaneSnapshot {
            id: 0,
            label: "test".into(),
            events,
            dropped: 0,
        };
        let ev = |name: &str, kind: EventKind, ts: f64| TraceEvent {
            name: name.into(),
            kind,
            ts_us: ts,
        };
        // End without begin.
        let bad = mk(vec![ev("x", EventKind::End, 1.0)]);
        assert!(validate_pairing(&[bad]).is_err());
        // Mismatched nesting.
        let bad = mk(vec![
            ev("a", EventKind::Begin, 1.0),
            ev("b", EventKind::End, 2.0),
        ]);
        assert!(validate_pairing(&[bad]).is_err());
        // Unclosed region.
        let bad = mk(vec![ev("a", EventKind::Begin, 1.0)]);
        assert!(validate_pairing(&[bad]).is_err());
        // End before begin (clock went backwards).
        let bad = mk(vec![
            ev("a", EventKind::Begin, 5.0),
            ev("a", EventKind::End, 1.0),
        ]);
        assert!(validate_pairing(&[bad]).is_err());
    }

    #[test]
    fn session_event_mode_records_begin_end_and_counters() {
        let _g = lock();
        clear();
        let s = crate::Session::new();
        assert!(!s.event_trace_enabled());
        s.enable_event_trace();
        {
            let _r = s.region("kernel");
            s.set_metric("Bytes/Rep", 64.0);
        }
        s.disable_event_trace();
        disable();
        let lanes = snapshot();
        clear();
        let lane = lanes
            .iter()
            .find(|l| l.events.iter().any(|e| e.name == "kernel"))
            .expect("session events recorded");
        let kinds: Vec<(&str, &EventKind)> = lane
            .events
            .iter()
            .filter(|e| e.name == "kernel" || e.name == "Bytes/Rep")
            .map(|e| (e.name.as_str(), &e.kind))
            .collect();
        assert_eq!(kinds[0], ("kernel", &EventKind::Begin));
        assert_eq!(kinds[1], ("Bytes/Rep", &EventKind::Counter(64.0)));
        assert_eq!(kinds[2], ("kernel", &EventKind::End));
        assert!(validate_pairing(&lanes).is_ok());
        // Off again: nothing further is recorded.
        {
            let _r = s.region("not_traced");
        }
        assert!(snapshot()
            .iter()
            .all(|l| l.events.iter().all(|e| e.name != "not_traced")));
    }

    #[test]
    fn folded_export_attributes_self_time_to_stacks() {
        let _g = lock();
        clear();
        enable();
        begin_event("root");
        begin_event("leaf");
        std::thread::sleep(std::time::Duration::from_millis(2));
        end_event("leaf");
        end_event("root");
        disable();
        let folded = export_folded();
        clear();
        let lines: Vec<&str> = folded
            .lines()
            .filter(|l| l.contains(";root"))
            .collect();
        assert_eq!(lines.len(), 2, "root and root;leaf stacks: {folded}");
        let leaf_line = lines.iter().find(|l| l.contains("root;leaf")).unwrap();
        let leaf_us: u64 = leaf_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(leaf_us >= 1_000, "leaf self time covers the sleep: {leaf_us}");
    }
}
