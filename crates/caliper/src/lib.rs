//! Caliper-style performance instrumentation.
//!
//! [Caliper](https://github.com/LLNL/Caliper) is LLNL's library-level
//! performance profiling toolkit: applications annotate code *regions*, and
//! Caliper services attach measurements (timers, hardware counters,
//! application metrics) to the call-path those regions form. Each run writes
//! a `.cali` profile that analysis tools (Thicket) consume, with Adiak run
//! metadata embedded as profile *globals*.
//!
//! This crate reproduces that model for the RAJAPerf-rs suite:
//!
//! * [`Session`] — a measurement channel holding the call-path tree and
//!   per-node aggregated statistics. A process-wide default session backs the
//!   free functions ([`begin`], [`end`], [`set_metric`], ...), mirroring how
//!   Caliper's annotation macros write into implicitly-configured channels.
//! * [`Region`] — RAII guard for scoped annotation (`CALI_CXX_MARK_SCOPE`).
//! * [`ConfigManager`] — parses Caliper-style config strings such as
//!   `"runtime-report,output=stdout"` or `"spot(output=run.cali)"` and
//!   controls which outputs `flush` produces.
//! * [`Profile`] — the serialized run profile (globals + per-node records),
//!   our JSON equivalent of a `.cali` file.
//!
//! # Example
//! ```
//! use caliper::Session;
//! let session = Session::new();
//! {
//!     let _r = session.region("Stream_TRIAD");
//!     session.set_metric("Bytes/Rep", 3.0e6);
//!     // ... kernel work ...
//! }
//! let profile = session.profile();
//! assert_eq!(profile.records.len(), 1);
//! assert_eq!(profile.records[0].path, vec!["Stream_TRIAD"]);
//! ```

pub mod trace;

use serde::{Deserialize, Serialize};
use simsched::sync::atomic::{AtomicBool, Ordering};
use simsched::sync::Mutex;
use simsched::time::Instant;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, OnceLock};

/// Synthetic root node that receives metrics recorded while no region is
/// open. Caliper attaches such values to the channel root rather than
/// discarding them; routing them here keeps every [`Record`] path non-empty.
pub const SYNTHETIC_ROOT: &str = "(root)";

/// Aggregated statistics for one metric on one call-path node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricAgg {
    /// Sum of all recorded values.
    pub sum: f64,
    /// Minimum recorded value.
    pub min: f64,
    /// Maximum recorded value.
    pub max: f64,
    /// Number of recorded values.
    pub count: u64,
}

impl MetricAgg {
    fn new(v: f64) -> Self {
        MetricAgg {
            sum: v,
            min: v,
            max: v,
            count: 1,
        }
    }

    fn record(&mut self, v: f64) {
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }

    /// Arithmetic mean of the recorded values.
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Statistics collected for one node of the call-path tree.
#[derive(Debug, Clone, Default)]
struct NodeStats {
    /// Inclusive wall-time aggregation (seconds) over visits.
    time: Option<MetricAgg>,
    /// Number of begin/end visits.
    visits: u64,
    /// Application metrics attached with `set_metric`/`add_metric`.
    metrics: BTreeMap<String, MetricAgg>,
}

/// One record of a serialized profile: a call path plus its metric columns.
///
/// Metric column names follow Caliper's aggregation naming convention:
/// `sum#time.duration`, `avg#time.duration`, `min#...`, `max#...`, and the
/// raw metric name for application metrics (average over visits) alongside
/// `sum#<name>` / `min#<name>` / `max#<name>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Call path from the root region to this node.
    pub path: Vec<String>,
    /// Aggregated metric columns.
    pub metrics: BTreeMap<String, f64>,
}

impl Record {
    /// Final path component (the region's own name).
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }

    /// Look up a metric column.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }
}

/// A serialized run profile — our `.cali` equivalent.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Run-level metadata (the Adiak snapshot), name → JSON value.
    pub globals: BTreeMap<String, serde_json::Value>,
    /// Per-call-path aggregated records, in depth-first path order.
    pub records: Vec<Record>,
}

impl Profile {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serialization cannot fail")
    }

    /// Parse a profile from JSON text.
    pub fn from_json(text: &str) -> Result<Profile, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Write the profile to a file, atomically (see [`write_atomic`]): a
    /// mid-write kill never leaves a torn `.cali.json` behind.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_atomic(path, self.to_json().as_bytes())
    }

    /// Read a profile from a file.
    pub fn read_file(path: &std::path::Path) -> std::io::Result<Profile> {
        let text = std::fs::read_to_string(path)?;
        Profile::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Find the record with the given final path component.
    pub fn find(&self, name: &str) -> Option<&Record> {
        self.records.iter().find(|r| r.name() == name)
    }

    /// A global metadata value as a string, if present.
    pub fn global_str(&self, name: &str) -> Option<&str> {
        self.globals.get(name).and_then(|v| v.as_str())
    }
}

/// Crash-safe file write: the contents land in a temp file in the
/// destination directory, are fsynced, and are renamed over `path` — so a
/// reader (or a process killed mid-write) only ever observes the old
/// contents or the complete new contents, never a torn prefix. Parent
/// directories are created as needed. Every profile, trace, cache, and
/// manifest write in the suite routes through here.
///
/// Carries the `io.write` simfault failpoint: an armed `truncate` entry
/// reproduces the torn write this helper exists to prevent (a strict prefix
/// written straight to `path`, no error surfaced — what a mid-write kill of
/// a bare `fs::write` leaves behind), so integrity validation downstream
/// can be exercised deterministically.
pub fn write_atomic(path: &std::path::Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => {
            std::fs::create_dir_all(d)?;
            Some(d)
        }
        _ => None,
    };
    if let Some(keep) = simfault::truncated_len("io.write", contents.len()) {
        std::fs::write(path, &contents[..keep])?;
        return Ok(());
    }
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    let tmp = path.with_file_name(format!(".{}.tmp.{}", name, std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    match result {
        Ok(()) => {
            // Best-effort directory fsync so the rename itself is durable.
            if let Some(dir) = dir {
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(())
        }
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[derive(Default)]
struct SessionInner {
    /// Call-path tree flattened to path → stats.
    nodes: BTreeMap<Vec<String>, NodeStats>,
    /// Extra globals set directly on the session (merged over Adiak's).
    globals: BTreeMap<String, serde_json::Value>,
}

thread_local! {
    /// Per-thread open-region stack: (session id, name, start time).
    static STACK: std::cell::RefCell<Vec<(u64, String, Instant)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

static NEXT_SESSION_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// A measurement channel: annotation state plus aggregated statistics.
///
/// Cloning a `Session` yields another handle to the same channel.
#[derive(Clone)]
pub struct Session {
    id: u64,
    inner: Arc<Mutex<SessionInner>>,
    /// Opt-in event-trace mode: when set, begin/end/metric calls also record
    /// timestamped events in the global [`trace`] collector.
    events: Arc<AtomicBool>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Create a fresh, empty measurement channel.
    pub fn new() -> Session {
        Session {
            id: NEXT_SESSION_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            inner: Arc::new(Mutex::new(SessionInner::default())),
            events: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Switch this session's event-trace mode on: every subsequent
    /// begin/end/metric call is additionally recorded as a timestamped event
    /// in the global [`trace`] collector (which this also enables). While
    /// off — the default — the only cost on the annotation path is one
    /// relaxed atomic load.
    pub fn enable_event_trace(&self) {
        trace::enable();
        self.events.store(true, Ordering::Relaxed);
    }

    /// Switch this session's event-trace mode off. The global [`trace`]
    /// collector is left as-is (other producers may still be tracing).
    pub fn disable_event_trace(&self) {
        self.events.store(false, Ordering::Relaxed);
    }

    /// Whether this session records trace events.
    pub fn event_trace_enabled(&self) -> bool {
        self.events.load(Ordering::Relaxed)
    }

    /// Open a region named `name` nested under the calling thread's current
    /// path. Prefer [`Session::region`] which closes automatically.
    pub fn begin(&self, name: &str) {
        if self.events.load(Ordering::Relaxed) {
            trace::begin_event(name);
        }
        STACK.with(|s| {
            s.borrow_mut()
                .push((self.id, name.to_string(), Instant::now()));
        });
    }

    /// Close the innermost region *opened through this session*. The
    /// region's inclusive wall time is aggregated into the call-path tree.
    ///
    /// Other sessions' open regions on the same thread are left untouched,
    /// so independent sessions may interleave (each properly nested in
    /// itself) on one thread — as independent Caliper channels can.
    ///
    /// # Panics
    /// Panics if this session has no open region on the calling thread, or
    /// if `name` is not this session's innermost open region (mismatched
    /// begin/end is an annotation bug, as in Caliper, which aborts with an
    /// error in that case).
    pub fn end(&self, name: &str) {
        let (path, elapsed) = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let idx = stack
                .iter()
                .rposition(|f| f.0 == self.id)
                .expect("caliper: end() with no open region in this session");
            let top = stack.remove(idx);
            assert_eq!(
                top.1, name,
                "caliper: mismatched region nesting: ended '{name}', expected '{}'",
                top.1
            );
            let mut path: Vec<String> = stack[..idx]
                .iter()
                .filter(|f| f.0 == self.id)
                .map(|f| f.1.clone())
                .collect();
            path.push(top.1);
            (path, top.2.elapsed().as_secs_f64())
        });
        if self.events.load(Ordering::Relaxed) {
            trace::end_event(name);
        }
        let mut inner = self.inner.lock().unwrap();
        let node = inner.nodes.entry(path).or_default();
        node.visits += 1;
        match &mut node.time {
            Some(agg) => agg.record(elapsed),
            t @ None => *t = Some(MetricAgg::new(elapsed)),
        }
    }

    /// Remove this session's innermost open `name` frame without asserting
    /// or aggregating. Used by [`Region`]'s drop while the thread is already
    /// unwinding: a second panic there would abort the process, turning a
    /// diagnosable kernel failure into a coreless abort.
    fn end_quiet(&self, name: &str) {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(idx) = stack
                .iter()
                .rposition(|f| f.0 == self.id && f.1 == name)
            {
                // Also sweep this session's frames above idx: those are
                // inner regions whose end() the panic skipped. Frames from
                // other sessions stay — they are still live.
                let mut i = stack.len();
                while i > idx {
                    i -= 1;
                    if stack[i].0 == self.id {
                        stack.remove(i);
                    }
                }
            }
        });
    }

    /// Open a region and return an RAII guard that closes it on drop.
    pub fn region(&self, name: &str) -> Region<'_> {
        self.begin(name);
        Region {
            session: self,
            name: name.to_string(),
            done: false,
        }
    }

    /// Current open call path on this thread for this session.
    fn current_path(&self) -> Vec<String> {
        STACK.with(|s| {
            s.borrow()
                .iter()
                .filter(|f| f.0 == self.id)
                .map(|f| f.1.clone())
                .collect()
        })
    }

    /// Call path a metric recorded right now should attach to: the current
    /// open path, or the [`SYNTHETIC_ROOT`] record when no region is open
    /// (an empty path would make every per-record `path.len() - 1`
    /// computation underflow).
    fn metric_path(&self) -> Vec<String> {
        let path = self.current_path();
        if path.is_empty() {
            vec![SYNTHETIC_ROOT.to_string()]
        } else {
            path
        }
    }

    /// Attach a metric value to the current region, replacing any previous
    /// value recorded at this node (set semantics — used for per-run
    /// analytic metrics like `Bytes/Rep` that do not vary between visits).
    pub fn set_metric(&self, name: &str, value: f64) {
        if self.events.load(Ordering::Relaxed) {
            trace::counter_event(name, value);
        }
        let path = self.metric_path();
        let mut inner = self.inner.lock().unwrap();
        let node = inner.nodes.entry(path).or_default();
        node.metrics.insert(name.to_string(), MetricAgg::new(value));
    }

    /// Attach a metric observation to the current region, aggregating
    /// (sum/min/max/avg) with previous observations.
    pub fn add_metric(&self, name: &str, value: f64) {
        if self.events.load(Ordering::Relaxed) {
            trace::counter_event(name, value);
        }
        let path = self.metric_path();
        let mut inner = self.inner.lock().unwrap();
        let node = inner.nodes.entry(path).or_default();
        match node.metrics.get_mut(name) {
            Some(agg) => agg.record(value),
            None => {
                node.metrics.insert(name.to_string(), MetricAgg::new(value));
            }
        }
    }

    /// Set a profile-level global directly (overrides Adiak metadata of the
    /// same name at flush time).
    pub fn set_global(&self, name: &str, value: impl Into<serde_json::Value>) {
        self.inner
            .lock()
            .unwrap()
            .globals
            .insert(name.to_string(), value.into());
    }

    /// Record this profile's rank identity within a multi-rank campaign,
    /// using real Caliper's MPI attribute names (`mpi.rank`,
    /// `mpi.world.size`) so Thicket-side tooling can group and compare
    /// profiles by rank the way it does for actual MPI runs.
    pub fn set_rank(&self, rank: usize, world_size: usize) {
        self.set_global("mpi.rank", rank as i64);
        self.set_global("mpi.world.size", world_size as i64);
    }

    /// Record the cost of an instrumentation layer (e.g. the simulated-device
    /// sanitizer) as profile metadata: stores `<name>_overhead_pct` — the
    /// percentage slowdown of `instrumented` over `baseline` — together with
    /// both raw times, so downstream Thicket analysis can separate tool
    /// overhead from kernel time, the way Caliper annotates its own
    /// measurement overhead.
    pub fn annotate_overhead(
        &self,
        name: &str,
        baseline: std::time::Duration,
        instrumented: std::time::Duration,
    ) {
        let base = baseline.as_secs_f64();
        let inst = instrumented.as_secs_f64();
        let pct = if base > 0.0 {
            ((inst / base) - 1.0).max(0.0) * 100.0
        } else {
            0.0
        };
        self.set_global(&format!("{name}_baseline_s"), base);
        self.set_global(&format!("{name}_time_s"), inst);
        self.set_global(&format!("{name}_overhead_pct"), pct);
    }

    /// Build the current [`Profile`]: Adiak snapshot + session globals +
    /// aggregated records.
    pub fn profile(&self) -> Profile {
        let inner = self.inner.lock().unwrap();
        let mut globals: BTreeMap<String, serde_json::Value> = adiak::snapshot()
            .0
            .into_iter()
            .map(|(k, e)| {
                (
                    k,
                    serde_json::to_value(e.value).expect("adiak value serializes"),
                )
            })
            .collect();
        globals.extend(inner.globals.clone());
        // Exclusive time: each node's inclusive sum minus its direct
        // children's inclusive sums (Caliper's `exclusive#time.duration`).
        let mut child_sums: BTreeMap<&Vec<String>, f64> = BTreeMap::new();
        for (path, stats) in &inner.nodes {
            if path.len() < 2 {
                continue;
            }
            if let Some(t) = &stats.time {
                let parent = inner
                    .nodes
                    .keys()
                    .find(|p| p.len() == path.len() - 1 && path.starts_with(p.as_slice()));
                if let Some(parent) = parent {
                    *child_sums.entry(parent).or_default() += t.sum;
                }
            }
        }
        let records = inner
            .nodes
            .iter()
            .map(|(path, stats)| {
                let mut metrics = BTreeMap::new();
                metrics.insert("count".to_string(), stats.visits as f64);
                if let Some(t) = &stats.time {
                    metrics.insert("sum#time.duration".to_string(), t.sum);
                    metrics.insert("avg#time.duration".to_string(), t.avg());
                    metrics.insert("min#time.duration".to_string(), t.min);
                    metrics.insert("max#time.duration".to_string(), t.max);
                    let excl = (t.sum - child_sums.get(path).copied().unwrap_or(0.0)).max(0.0);
                    metrics.insert("exclusive#time.duration".to_string(), excl);
                }
                for (name, agg) in &stats.metrics {
                    metrics.insert(name.clone(), agg.avg());
                    metrics.insert(format!("sum#{name}"), agg.sum);
                    metrics.insert(format!("min#{name}"), agg.min);
                    metrics.insert(format!("max#{name}"), agg.max);
                }
                Record {
                    path: path.clone(),
                    metrics,
                }
            })
            .collect();
        Profile {
            globals,
            records,
        }
    }

    /// Discard all aggregated data (globals and nodes).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.nodes.clear();
        inner.globals.clear();
    }

    /// Render a `runtime-report`-style aligned text table of the call tree.
    pub fn runtime_report(&self) -> String {
        let profile = self.profile();
        let mut out = String::new();
        let name_w = profile
            .records
            .iter()
            .map(|r| r.name().len() + 2 * r.path.len().saturating_sub(1))
            .max()
            .unwrap_or(4)
            .max("Path".len());
        out.push_str(&format!(
            "{:<name_w$} {:>10} {:>12} {:>12} {:>12}\n",
            "Path", "Count", "Time (sum)", "Time (avg)", "Time (max)"
        ));
        for r in &profile.records {
            let indent = "  ".repeat(r.path.len().saturating_sub(1));
            let label = format!("{indent}{}", r.name());
            out.push_str(&format!(
                "{:<name_w$} {:>10} {:>12.6} {:>12.6} {:>12.6}\n",
                label,
                r.metric("count").unwrap_or(0.0) as u64,
                r.metric("sum#time.duration").unwrap_or(0.0),
                r.metric("avg#time.duration").unwrap_or(0.0),
                r.metric("max#time.duration").unwrap_or(0.0),
            ));
        }
        out
    }
}

/// RAII region guard returned by [`Session::region`].
pub struct Region<'a> {
    session: &'a Session,
    name: String,
    done: bool,
}

impl Region<'_> {
    /// Close the region explicitly before the end of scope.
    pub fn end(mut self) {
        self.session.end(&self.name);
        self.done = true;
    }
}

impl Drop for Region<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        if std::thread::panicking() {
            // end()'s nesting asserts can legitimately fire here (the panic
            // may have skipped inner end() calls); a panic-in-drop during
            // unwinding aborts the process. Drop the frame silently — the
            // visit is lost, but the original panic stays diagnosable.
            self.session.end_quiet(&self.name);
        } else {
            self.session.end(&self.name);
        }
    }
}

fn default_session() -> &'static Session {
    static DEFAULT: OnceLock<Session> = OnceLock::new();
    DEFAULT.get_or_init(Session::new)
}

/// The process-wide default session backing the free annotation functions.
pub fn global() -> &'static Session {
    default_session()
}

/// Open a region on the default session (see [`Session::begin`]).
pub fn begin(name: &str) {
    global().begin(name);
}

/// Close a region on the default session (see [`Session::end`]).
pub fn end(name: &str) {
    global().end(name);
}

/// Scoped region on the default session.
pub fn region(name: &str) -> Region<'static> {
    global().region(name)
}

/// Set a metric on the default session's current region.
pub fn set_metric(name: &str, value: f64) {
    global().set_metric(name, value);
}

/// Slash-joined path of every region open on the calling thread — across
/// all sessions, in the order they were opened — or `None` outside any
/// region. This is the attribution hook diagnostic layers use to tie a
/// low-level event to the kernel/variant the suite was measuring at the
/// time: the lock-order analyzer installs it as `simsched`'s context
/// provider so a reported deadlock cycle names the Caliper region (e.g.
/// `RAJAPerf/Stream/Stream_TRIAD`) each edge was recorded under. It spans
/// sessions deliberately — the suite measures through a private session,
/// and "what was this thread inside" is the question being answered.
pub fn current_region_path() -> Option<String> {
    STACK.with(|s| {
        let stack = s.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(
                stack
                    .iter()
                    .map(|f| f.1.as_str())
                    .collect::<Vec<_>>()
                    .join("/"),
            )
        }
    })
}

/// One parsed output target from a [`ConfigManager`] spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputSpec {
    /// `runtime-report` service: human-readable table.
    RuntimeReport {
        /// `stdout`, `stderr`, or a file path.
        output: String,
    },
    /// `spot` / `hatchet-region-profile` service: machine-readable profile.
    SpotProfile {
        /// File path for the JSON profile.
        output: String,
    },
    /// `trace` service: event timeline from the [`trace`] collector.
    Trace {
        /// File path for the Chrome Trace Event JSON.
        output: String,
        /// Optional file path for flamegraph folded stacks.
        folded: Option<String>,
    },
}

/// Parses Caliper-style configuration strings and drives profile output.
///
/// Supported grammar (a faithful subset of Caliper's ConfigManager):
/// comma-separated services, each optionally parameterized either inline
/// (`spot(output=run.cali)`) or with trailing `key=value` arguments that bind
/// to the most recent service (`runtime-report,output=stdout`).
///
/// Recognized services: `runtime-report`, `spot`, `hatchet-region-profile`,
/// and `trace` (alias `event-trace`), which serializes the global [`trace`]
/// event log as Chrome Trace Event JSON (`output=`) and optionally as
/// flamegraph folded stacks (`folded=`).
#[derive(Debug, Default)]
pub struct ConfigManager {
    outputs: Vec<OutputSpec>,
    error: Option<String>,
}

impl ConfigManager {
    /// Create an empty manager.
    pub fn new() -> ConfigManager {
        ConfigManager::default()
    }

    /// Add a config string. Unknown services record an error retrievable via
    /// [`ConfigManager::error`], matching Caliper's behaviour of reporting
    /// rather than panicking.
    pub fn add(&mut self, spec: &str) -> &mut Self {
        for part in split_top_level(spec) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let is_kv = match (part.find('='), part.find('(')) {
                (Some(eq), Some(paren)) => eq < paren,
                (Some(_), None) => true,
                _ => false,
            };
            if is_kv {
                let (key, value) = part.split_once('=').expect("checked above");
                // Trailing key=value binds to the most recent service.
                match self.outputs.last_mut() {
                    Some(OutputSpec::RuntimeReport { output })
                    | Some(OutputSpec::SpotProfile { output })
                    | Some(OutputSpec::Trace { output, .. })
                        if key.trim() == "output" =>
                    {
                        *output = value.trim().to_string();
                    }
                    Some(OutputSpec::Trace { folded, .. }) if key.trim() == "folded" => {
                        *folded = Some(value.trim().to_string());
                    }
                    _ => {
                        self.error =
                            Some(format!("caliper config: dangling argument '{key}={value}'"));
                    }
                }
                continue;
            }
            let (service, args) = match part.split_once('(') {
                Some((s, rest)) => (
                    s.trim(),
                    rest.trim_end_matches(')')
                        .split(',')
                        .filter_map(|kv| kv.split_once('='))
                        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                        .collect::<BTreeMap<_, _>>(),
                ),
                None => (part, BTreeMap::new()),
            };
            match service {
                "runtime-report" => self.outputs.push(OutputSpec::RuntimeReport {
                    output: args
                        .get("output")
                        .cloned()
                        .unwrap_or_else(|| "stderr".to_string()),
                }),
                "spot" | "hatchet-region-profile" => self.outputs.push(OutputSpec::SpotProfile {
                    output: args
                        .get("output")
                        .cloned()
                        .unwrap_or_else(|| "profile.cali.json".to_string()),
                }),
                "trace" | "event-trace" => self.outputs.push(OutputSpec::Trace {
                    output: args
                        .get("output")
                        .cloned()
                        .unwrap_or_else(|| "trace.json".to_string()),
                    folded: args.get("folded").cloned(),
                }),
                other => {
                    self.error = Some(format!("caliper config: unknown service '{other}'"));
                }
            }
        }
        self
    }

    /// The first configuration error encountered, if any.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// The parsed output specifications.
    pub fn outputs(&self) -> &[OutputSpec] {
        &self.outputs
    }

    /// Whether any configured service exports the event trace. Callers use
    /// this to switch event collection on for the run — the `trace` service
    /// can only export events that were recorded.
    pub fn requests_event_trace(&self) -> bool {
        self.outputs
            .iter()
            .any(|o| matches!(o, OutputSpec::Trace { .. }))
    }

    /// Produce every configured output from `session`'s current data.
    /// Returns the paths of profile files written.
    pub fn flush(&self, session: &Session) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut written = Vec::new();
        for out in &self.outputs {
            match out {
                OutputSpec::RuntimeReport { output } => {
                    let report = session.runtime_report();
                    match output.as_str() {
                        "stdout" => print!("{report}"),
                        "stderr" => eprint!("{report}"),
                        path => {
                            let p = std::path::Path::new(path);
                            write_atomic(p, report.as_bytes())?;
                            written.push(p.to_path_buf());
                        }
                    }
                }
                OutputSpec::SpotProfile { output } => {
                    let p = std::path::Path::new(output);
                    session.profile().write_file(p)?;
                    written.push(p.to_path_buf());
                }
                OutputSpec::Trace { output, folded } => {
                    let p = std::path::Path::new(output);
                    write_atomic(p, trace::export_chrome_json().as_bytes())?;
                    written.push(p.to_path_buf());
                    if let Some(folded) = folded {
                        let p = std::path::Path::new(folded);
                        write_atomic(p, trace::export_folded().as_bytes())?;
                        written.push(p.to_path_buf());
                    }
                }
            }
        }
        Ok(written)
    }
}

/// Annotate the enclosing scope as a Caliper region on the default
/// session (the `CALI_CXX_MARK_SCOPE` equivalent):
///
/// ```
/// fn kernel_step() {
///     caliper::cali_scope!("kernel_step");
///     // ... work measured until the end of the scope ...
/// }
/// kernel_step();
/// ```
#[macro_export]
macro_rules! cali_scope {
    ($name:expr) => {
        let _cali_region_guard = $crate::region($name);
    };
}

/// Split on commas that are not inside parentheses.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotate_overhead_stores_percentage_and_raw_times() {
        let s = Session::new();
        s.annotate_overhead(
            "sanitizer",
            std::time::Duration::from_secs(1),
            std::time::Duration::from_secs(3),
        );
        let p = s.profile();
        assert_eq!(
            p.globals.get("sanitizer_overhead_pct").and_then(|v| v.as_f64()),
            Some(200.0)
        );
        assert_eq!(
            p.globals.get("sanitizer_baseline_s").and_then(|v| v.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            p.globals.get("sanitizer_time_s").and_then(|v| v.as_f64()),
            Some(3.0)
        );
        // A zero baseline cannot divide; the annotation degrades to 0%.
        s.annotate_overhead("degenerate", std::time::Duration::ZERO, std::time::Duration::ZERO);
        let p = s.profile();
        assert_eq!(
            p.globals.get("degenerate_overhead_pct").and_then(|v| v.as_f64()),
            Some(0.0)
        );
    }

    #[test]
    fn set_rank_stores_mpi_attribute_globals() {
        let s = Session::new();
        s.set_rank(3, 8);
        let p = s.profile();
        assert_eq!(p.globals.get("mpi.rank").and_then(|v| v.as_i64()), Some(3));
        assert_eq!(
            p.globals.get("mpi.world.size").and_then(|v| v.as_i64()),
            Some(8)
        );
    }

    #[test]
    fn region_records_time_and_count() {
        let s = Session::new();
        for _ in 0..3 {
            let _r = s.region("k");
        }
        let p = s.profile();
        let r = p.find("k").unwrap();
        assert_eq!(r.metric("count"), Some(3.0));
        assert!(r.metric("sum#time.duration").unwrap() >= 0.0);
        assert!(r.metric("avg#time.duration").unwrap() <= r.metric("max#time.duration").unwrap());
    }

    #[test]
    fn nesting_builds_call_paths() {
        let s = Session::new();
        {
            let _a = s.region("outer");
            let _b = s.region("inner");
        }
        let p = s.profile();
        assert!(p.records.iter().any(|r| r.path == vec!["outer"]));
        assert!(p
            .records
            .iter()
            .any(|r| r.path == vec!["outer".to_string(), "inner".to_string()]));
    }

    #[test]
    #[should_panic(expected = "mismatched region nesting")]
    fn mismatched_end_panics() {
        let s = Session::new();
        s.begin("a");
        s.end("b");
    }

    #[test]
    fn set_metric_has_set_semantics() {
        let s = Session::new();
        let _r = s.region("k");
        s.set_metric("Bytes/Rep", 10.0);
        s.set_metric("Bytes/Rep", 20.0);
        drop(_r);
        let p = s.profile();
        assert_eq!(p.find("k").unwrap().metric("Bytes/Rep"), Some(20.0));
        assert_eq!(p.find("k").unwrap().metric("sum#Bytes/Rep"), Some(20.0));
    }

    #[test]
    fn add_metric_aggregates() {
        let s = Session::new();
        let _r = s.region("k");
        s.add_metric("m", 1.0);
        s.add_metric("m", 3.0);
        drop(_r);
        let p = s.profile();
        let rec = p.find("k").unwrap();
        assert_eq!(rec.metric("sum#m"), Some(4.0));
        assert_eq!(rec.metric("m"), Some(2.0));
        assert_eq!(rec.metric("min#m"), Some(1.0));
        assert_eq!(rec.metric("max#m"), Some(3.0));
    }

    #[test]
    fn profile_json_roundtrip() {
        let s = Session::new();
        s.set_global("variant", "RAJA_Seq");
        {
            let _r = s.region("k");
            s.set_metric("Flops/Rep", 5.0);
        }
        let p = s.profile();
        let back = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.global_str("variant"), Some("RAJA_Seq"));
    }

    #[test]
    fn sessions_are_independent() {
        let a = Session::new();
        let b = Session::new();
        {
            let _r = a.region("only_in_a");
        }
        assert!(a.profile().find("only_in_a").is_some());
        assert!(b.profile().find("only_in_a").is_none());
    }

    #[test]
    fn config_manager_parses_specs() {
        let mut cm = ConfigManager::new();
        cm.add("runtime-report,output=stdout");
        cm.add("spot(output=run.cali.json)");
        assert!(cm.error().is_none());
        assert_eq!(
            cm.outputs(),
            &[
                OutputSpec::RuntimeReport {
                    output: "stdout".into()
                },
                OutputSpec::SpotProfile {
                    output: "run.cali.json".into()
                }
            ]
        );
    }

    #[test]
    fn config_manager_reports_unknown_service() {
        let mut cm = ConfigManager::new();
        cm.add("no-such-service");
        assert!(cm.error().unwrap().contains("no-such-service"));
    }

    #[test]
    fn flush_writes_spot_profile() {
        let dir = std::env::temp_dir().join("caliper_test_flush");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("out.cali.json");
        let s = Session::new();
        {
            let _r = s.region("k");
        }
        let mut cm = ConfigManager::new();
        cm.add(&format!("spot(output={})", path.display()));
        let written = cm.flush(&s).unwrap();
        assert_eq!(written.len(), 1);
        let p = Profile::read_file(&path).unwrap();
        assert!(p.find("k").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn runtime_report_contains_regions() {
        let s = Session::new();
        {
            let _r = s.region("alpha");
        }
        let report = s.runtime_report();
        assert!(report.contains("alpha"));
        assert!(report.contains("Path"));
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        let s = Session::new();
        {
            let _outer = s.region("outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            let _inner = s.region("inner");
            std::thread::sleep(std::time::Duration::from_millis(4));
        }
        let p = s.profile();
        let outer = p.records.iter().find(|r| r.path == vec!["outer"]).unwrap();
        let incl = outer.metric("sum#time.duration").unwrap();
        let excl = outer.metric("exclusive#time.duration").unwrap();
        assert!(excl < incl, "exclusive {excl} < inclusive {incl}");
        assert!(excl >= 0.0);
        // The inner leaf has no children: exclusive == inclusive.
        let inner = p
            .records
            .iter()
            .find(|r| r.path == vec!["outer".to_string(), "inner".to_string()])
            .unwrap();
        assert_eq!(
            inner.metric("exclusive#time.duration"),
            inner.metric("sum#time.duration")
        );
    }

    #[test]
    fn cali_scope_macro_records_a_region() {
        // The macro writes to the default session.
        {
            crate::cali_scope!("macro_region_test");
        }
        let p = crate::global().profile();
        assert!(p
            .records
            .iter()
            .any(|r| r.name() == "macro_region_test"));
    }

    #[test]
    fn threads_share_a_session_with_private_stacks() {
        let s = Session::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..5 {
                        let _r = s.region("worker");
                    }
                });
            }
        });
        let p = s.profile();
        assert_eq!(
            p.find("worker").unwrap().metric("count"),
            Some(20.0),
            "all threads' visits aggregate"
        );
    }

    #[test]
    fn region_end_explicit() {
        let s = Session::new();
        let r = s.region("k");
        r.end();
        assert_eq!(s.profile().find("k").unwrap().metric("count"), Some(1.0));
    }

    /// Regression: two independent sessions with properly-nested but
    /// interleaved regions on one thread used to panic with "end() crosses
    /// session boundary" because end() popped the thread's topmost frame
    /// unconditionally.
    #[test]
    fn interleaved_sessions_on_one_thread() {
        let a = Session::new();
        let b = Session::new();
        a.begin("outer_a");
        b.begin("outer_b");
        a.begin("inner_a");
        a.end("inner_a"); // topmost overall, fine either way
        a.end("outer_a"); // b's outer_b is topmost — must be skipped over
        b.end("outer_b");
        let pa = a.profile();
        let pb = b.profile();
        // Each session sees only its own nesting.
        assert!(pa.records.iter().any(|r| r.path == vec!["outer_a"]));
        assert!(pa
            .records
            .iter()
            .any(|r| r.path == vec!["outer_a".to_string(), "inner_a".to_string()]));
        assert!(pb.records.iter().any(|r| r.path == vec!["outer_b"]));
        assert_eq!(pb.records.len(), 1, "b never sees a's regions");
    }

    /// Regression: a panic inside a region body used to abort the process —
    /// `Region::drop` called `end()`, whose asserts can themselves panic
    /// while the thread is already unwinding.
    #[test]
    fn panicking_region_body_unwinds_instead_of_aborting() {
        let s = Session::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _outer = s.region("outer");
            s.begin("inner_without_guard"); // its end() will be skipped
            let _leaf = s.region("leaf");
            panic!("kernel failure");
        }));
        assert!(result.is_err(), "the original panic propagates");
        // The stack is clean again: the session remains usable.
        {
            let _r = s.region("after_panic");
        }
        assert_eq!(
            s.profile().find("after_panic").unwrap().metric("count"),
            Some(1.0)
        );
        assert!(
            s.profile()
                .find("after_panic")
                .unwrap()
                .path
                .len()
                == 1,
            "no stale frames nest later regions"
        );
    }

    /// Regression: `set_metric`/`add_metric` with no open region created an
    /// empty-path record, and `runtime_report`'s `path.len() - 1` underflowed.
    #[test]
    fn rootless_metrics_go_to_synthetic_root() {
        let s = Session::new();
        s.set_metric("problem_size", 1.0e6);
        s.add_metric("warmup_time", 0.25);
        let p = s.profile();
        let root = p.find(SYNTHETIC_ROOT).expect("synthetic root record");
        assert_eq!(root.path, vec![SYNTHETIC_ROOT.to_string()]);
        assert_eq!(root.metric("problem_size"), Some(1.0e6));
        assert_eq!(root.metric("sum#warmup_time"), Some(0.25));
        // The report renders without panicking and shows the root.
        let report = s.runtime_report();
        assert!(report.contains(SYNTHETIC_ROOT));
    }

    #[test]
    fn config_manager_parses_trace_service() {
        let mut cm = ConfigManager::new();
        cm.add("trace(output=t.json,folded=t.folded)");
        assert!(cm.error().is_none());
        assert_eq!(
            cm.outputs(),
            &[OutputSpec::Trace {
                output: "t.json".into(),
                folded: Some("t.folded".into())
            }]
        );
        // Trailing key=value binding, Caliper-style.
        let mut cm = ConfigManager::new();
        cm.add("trace,output=x.json,folded=x.folded");
        assert!(cm.error().is_none());
        assert_eq!(
            cm.outputs(),
            &[OutputSpec::Trace {
                output: "x.json".into(),
                folded: Some("x.folded".into())
            }]
        );
    }
}
