//! `caliper::write_atomic`: crash-safe writes, and the `io.write` failpoint
//! that reproduces the torn write the helper exists to prevent. Fault state
//! is process-global, so the failpoint test serializes behind a gate.

use caliper::{write_atomic, Profile};
use simsched::sync::Mutex;

fn gate() -> simsched::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("caliper_atomic_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn write_atomic_replaces_contents_and_leaves_no_temp_files() {
    let dir = tmpdir("basic");
    let path = dir.join("nested").join("out.json");
    write_atomic(&path, b"first version").unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), b"first version");
    write_atomic(&path, b"second version, longer than the first").unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        b"second version, longer than the first"
    );
    let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .filter(|n| n.to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_write_file_roundtrips_through_atomic_path() {
    let dir = tmpdir("profile");
    let path = dir.join("run.cali.json");
    let mut p = Profile::default();
    p.globals
        .insert("variant".into(), serde_json::Value::String("Base_Seq".into()));
    p.write_file(&path).unwrap();
    let back = Profile::read_file(&path).unwrap();
    assert_eq!(back.global_str("variant"), Some("Base_Seq"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncate_failpoint_tears_the_write_deterministically() {
    let _g = gate();
    let dir = tmpdir("torn");
    let path = dir.join("torn.json");
    let contents = vec![b'x'; 4096];

    simfault::install_spec("io.write=truncate:1.0,seed=21").unwrap();
    write_atomic(&path, &contents).unwrap();
    let torn_a = std::fs::read(&path).unwrap();
    simfault::install_spec("io.write=truncate:1.0,seed=21").unwrap();
    write_atomic(&path, &contents).unwrap();
    let torn_b = std::fs::read(&path).unwrap();
    simfault::disarm();

    assert!(
        torn_a.len() < contents.len(),
        "torn write must be a strict prefix"
    );
    assert_eq!(torn_a, torn_b, "same seed tears at the same offset");

    // Disarmed, the same write is whole again.
    write_atomic(&path, &contents).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), contents);
    let _ = std::fs::remove_dir_all(&dir);
}
