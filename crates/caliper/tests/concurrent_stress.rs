//! Native multi-threaded stress of concurrent Caliper sessions: N threads
//! driving interleaved sessions with metrics and the event-trace service
//! enabled, all at once. The model-checked twin of this test
//! (`crates/simsched/tests/caliper_model.rs`) explores every interleaving of
//! a small instance; this one hammers a big instance on real threads to
//! catch what the bounded model can't reach (allocator effects, real
//! contention, the trace ring under concurrent writers).

use caliper::trace;
use caliper::Session;

const THREADS: usize = 8;
const ITERS: usize = 200;

#[test]
fn concurrent_interleaved_sessions_with_trace() {
    // Shared channel all threads aggregate into, plus one private channel
    // per thread, interleaved with the shared one on the same thread —
    // the PR 4 interleaved-session shape under real concurrency.
    let shared = Session::new();
    shared.enable_event_trace();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = shared.clone();
            scope.spawn(move || {
                let own = Session::new();
                for i in 0..ITERS {
                    shared.begin("shared_outer");
                    own.begin("own_outer");
                    {
                        let _leaf = shared.region("leaf");
                        shared.add_metric("reps", 1.0);
                    }
                    own.set_metric("iter", i as f64);
                    // Close in the opposite order the two sessions opened:
                    // legal, because each session is properly nested in
                    // itself and stacks are per-session.
                    shared.end("shared_outer");
                    own.end("own_outer");
                }
                let own_profile = own.profile();
                let rec = own_profile.find("own_outer").expect("private session node");
                assert_eq!(
                    rec.metric("count"),
                    Some(ITERS as f64),
                    "thread {t}: private session sees exactly its own visits"
                );
            });
        }
    });
    shared.disable_event_trace();
    trace::disable();

    let p = shared.profile();
    let outer = p.find("shared_outer").expect("shared node");
    assert_eq!(
        outer.metric("count"),
        Some((THREADS * ITERS) as f64),
        "every thread's visits aggregate into the shared session"
    );
    let leaf = p
        .records
        .iter()
        .find(|r| r.path == vec!["shared_outer".to_string(), "leaf".to_string()])
        .expect("nested leaf node");
    assert_eq!(leaf.metric("count"), Some((THREADS * ITERS) as f64));
    assert_eq!(leaf.metric("sum#reps"), Some((THREADS * ITERS) as f64));

    // The trace recorded each thread's events on its own lane, properly
    // paired. (Ring capacity is ~1M events/lane; this writes ~1.6k/lane, so
    // nothing was dropped and strict pairing must hold.)
    let lanes = trace::snapshot();
    trace::clear();
    let traced: Vec<_> = lanes
        .iter()
        .filter(|l| l.events.iter().any(|e| e.name == "shared_outer"))
        .collect();
    assert!(
        traced.len() >= THREADS,
        "each stressing thread gets its own lane: {}",
        traced.len()
    );
    for lane in &traced {
        assert_eq!(lane.dropped, 0, "lane {}: no ring overflow", lane.label);
    }
    let pairs = trace::validate_pairing(&lanes).expect("per-lane begin/end discipline");
    // 2 shared begin/end pairs per iteration per thread ("shared_outer" and
    // "leaf"); the private sessions trace nothing (event mode is per-session).
    assert_eq!(pairs, THREADS * ITERS * 2, "every traced pair is complete");
}
