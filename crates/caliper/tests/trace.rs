//! Golden-file test for the Chrome Trace Event exporter.
//!
//! Timestamps and absolute lane ids are nondeterministic (wall clock; which
//! thread registers its lane first depends on test scheduling), so the
//! golden comparison projects each exported event onto its *stable* fields:
//! name, phase, lane (densely renumbered by first appearance), and nesting
//! depth. Everything else — field presence, document structure, phase
//! letters, event order — is pinned exactly.

use caliper::trace;
use simsched::sync::Mutex;

/// The trace collector is process-global; tests in this binary serialize on
/// one lock so enable/clear calls do not interleave.
static LOCK: Mutex<()> = Mutex::new(());

/// Project a Chrome Trace JSON document onto its stable fields, one event
/// per line: `<ph> t<lane> d<depth> <name>`, lanes renumbered densely in
/// order of first appearance.
fn project(json: &str) -> String {
    let doc: serde_json::Value = serde_json::from_str(json).expect("exported JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let mut tid_order: Vec<i64> = Vec::new();
    let mut depth: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let mut out = String::new();
    for ev in events {
        let name = ev.get("name").and_then(|v| v.as_str()).expect("name");
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
        let tid = ev.get("tid").and_then(|v| v.as_i64()).expect("tid");
        let lane = match tid_order.iter().position(|&t| t == tid) {
            Some(i) => i,
            None => {
                tid_order.push(tid);
                tid_order.len() - 1
            }
        };
        let d = depth.entry(lane).or_default();
        if ph == "E" {
            *d = d.checked_sub(1).expect("E matches an earlier B");
        }
        out.push_str(&format!("{ph} t{lane} d{d} {name}\n"));
        if ph == "B" {
            *d += 1;
        }
    }
    out
}

#[test]
fn chrome_export_matches_golden_projection() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::clear();
    let s = caliper::Session::new();
    s.enable_event_trace();
    {
        let _suite = s.region("RAJAPerf");
        let _group = s.region("Stream");
        {
            let _k = s.region("Stream_TRIAD");
            s.set_metric("Bytes/Rep", 24.0);
            trace::instant_event("gpusim.launch");
        }
        {
            let _k = s.region("Stream_ADD");
            s.set_metric("Bytes/Rep", 24.0);
        }
    }
    s.disable_event_trace();
    trace::disable();
    let json = trace::export_chrome_json();
    trace::clear();

    assert_eq!(project(&json), include_str!("golden/chrome_trace.golden"));

    // Structural fields the projection does not cover.
    let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    assert_eq!(
        doc.get("otherData")
            .and_then(|v| v.get("dropped_events"))
            .and_then(|v| v.as_i64()),
        Some(0)
    );
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    // The lane's metadata event names the lane.
    let meta = &events[0];
    assert_eq!(meta.get("ph").and_then(|v| v.as_str()), Some("M"));
    assert!(meta
        .get("args")
        .and_then(|a| a.get("name"))
        .and_then(|v| v.as_str())
        .is_some());
    // Duration events carry monotone non-decreasing timestamps.
    let ts: Vec<f64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) != Some("M"))
        .map(|e| e.get("ts").and_then(|v| v.as_f64()).expect("ts"))
        .collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
}

#[test]
fn folded_export_has_full_stacks() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::clear();
    let s = caliper::Session::new();
    s.enable_event_trace();
    {
        let _a = s.region("RAJAPerf");
        let _b = s.region("Stream");
        let _c = s.region("Stream_TRIAD");
    }
    s.disable_event_trace();
    trace::disable();
    let folded = trace::export_folded();
    trace::clear();
    let stacks: Vec<&str> = folded
        .lines()
        .filter_map(|l| l.rsplit_once(' ').map(|(s, _)| s))
        .collect();
    let lane = stacks
        .iter()
        .find(|s| s.ends_with(";RAJAPerf"))
        .expect("root stack present")
        .rsplit_once(";RAJAPerf")
        .unwrap()
        .0
        .to_string();
    assert!(stacks.contains(&format!("{lane};RAJAPerf").as_str()));
    assert!(stacks.contains(&format!("{lane};RAJAPerf;Stream").as_str()));
    assert!(stacks.contains(&format!("{lane};RAJAPerf;Stream;Stream_TRIAD").as_str()));
    // Every value parses as integer microseconds.
    assert!(folded
        .lines()
        .all(|l| l.rsplit(' ').next().unwrap().parse::<u64>().is_ok()));
}
