//! Transport abstraction: the gather protocol's framing, independent of
//! what carries it.
//!
//! The rank-sharded sweep speaks one wire format — JSON objects, one per
//! line — over two very different carriers: in-memory `simcomm` byte
//! messages between threads (the default `--rank-isolation=threads`), and
//! OS pipes between a supervising parent and spawned child-rank processes
//! (`--rank-isolation=process`). This module is the carrier-independent
//! half: [`write_frame`]/[`read_frame`] define the framing once, and
//! [`FrameTransport`] wraps any `Read`/`Write` pair (a child's stdio, a
//! unix-socket stream, an in-memory cursor in tests) with per-direction
//! [`CommStats`] accounting so pipe traffic is countable exactly like
//! thread-rank message traffic.
//!
//! # Framing
//!
//! One frame = one JSON value serialized without embedded newlines,
//! terminated by `\n`. Line framing (rather than length prefixes) is
//! deliberate: it matches the `rajaperfd` wire protocol, keeps frames
//! greppable in a captured pipe, and makes a torn final line — the
//! signature of a `kill -9`ed writer — detectable as a frame error rather
//! than silently parseable garbage.
//!
//! # Failure semantics
//!
//! * [`read_frame`] returns `Ok(None)` on clean EOF (writer closed the
//!   carrier between frames) and `Err` on a torn or non-JSON line, so a
//!   reader can distinguish "peer finished" from "peer died mid-frame".
//! * [`write_frame`] surfaces `EPIPE`/`BrokenPipe` as an ordinary
//!   `io::Error`. Rust ignores `SIGPIPE` by default, so writing to a dead
//!   peer's pipe is an error return, never a process kill — the supervisor
//!   relies on this to treat a dying child as a restartable event.

use crate::CommStats;
use serde_json::Value;
use std::io::{self, BufRead, Write};

/// Serialize `frame` as one newline-terminated line and flush it.
///
/// Serde never emits raw newlines inside a JSON string (they escape to
/// `\n`), so the line boundary is unambiguous.
pub fn write_frame<W: Write>(w: &mut W, frame: &Value) -> io::Result<u64> {
    let mut line = serde_json::to_string(frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()?;
    Ok(line.len() as u64)
}

/// Read one frame. `Ok(None)` on clean EOF; an error for a torn final
/// line (EOF with no trailing `\n`) or a line that is not valid JSON.
pub fn read_frame<R: BufRead>(r: &mut R) -> io::Result<Option<(Value, u64)>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "torn frame: carrier closed mid-line",
        ));
    }
    let v: Value = serde_json::from_str(line.trim_end()).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame is not valid JSON: {e}"),
        )
    })?;
    Ok(Some((v, n as u64)))
}

/// A framed, stat-counting transport over any `Read`/`Write` pair.
///
/// The supervisor holds one per child rank (writer = the child's stdin,
/// reader = its stdout); a child-rank worker holds the mirror image over
/// its own stdio. `stats` counts sent/received frames and bytes from the
/// holder's perspective, giving process-mode campaigns the same per-rank
/// traffic accounting thread-mode campaigns get from [`crate::Comm`].
#[derive(Debug)]
pub struct FrameTransport<R, W> {
    reader: R,
    writer: W,
    stats: CommStats,
}

impl<R: BufRead, W: Write> FrameTransport<R, W> {
    /// Wrap a reader/writer pair with zeroed counters.
    pub fn new(reader: R, writer: W) -> FrameTransport<R, W> {
        FrameTransport {
            reader,
            writer,
            stats: CommStats::new(),
        }
    }

    /// Send one frame, counting it.
    pub fn send(&mut self, frame: &Value) -> io::Result<()> {
        let bytes = write_frame(&mut self.writer, frame)?;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes;
        Ok(())
    }

    /// Receive one frame (`Ok(None)` on clean EOF), counting it.
    pub fn recv(&mut self) -> io::Result<Option<Value>> {
        match read_frame(&mut self.reader)? {
            Some((v, bytes)) => {
                self.stats.messages_received += 1;
                self.stats.bytes_received += bytes;
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// Traffic counters accumulated so far, from this side's perspective.
    pub fn stats(&self) -> CommStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use std::io::BufReader;

    #[test]
    fn frames_roundtrip_and_count() {
        let mut wire = Vec::new();
        let a = json!({"cell": 3});
        let b = json!({"result": json!({"cell": 3, "outcome": json!({"kernels_run": 1})})});
        write_frame(&mut wire, &a).unwrap();
        write_frame(&mut wire, &b).unwrap();

        let mut t = FrameTransport::new(BufReader::new(wire.as_slice()), Vec::new());
        assert_eq!(t.recv().unwrap(), Some(a.clone()));
        assert_eq!(t.recv().unwrap(), Some(b));
        assert_eq!(t.recv().unwrap(), None, "clean EOF");
        let s = t.stats();
        assert_eq!(s.messages_received, 2);
        assert_eq!(s.bytes_received, wire.len() as u64);

        t.send(&a).unwrap();
        assert_eq!(t.stats().messages_sent, 1);
        assert!(t.stats().bytes_sent > 0);
    }

    #[test]
    fn embedded_newlines_escape_and_stay_one_line() {
        let mut wire = Vec::new();
        let v = json!({"error": "line one\nline two"});
        write_frame(&mut wire, &v).unwrap();
        assert_eq!(
            wire.iter().filter(|&&b| b == b'\n').count(),
            1,
            "newline inside a JSON string must escape, not split the frame"
        );
        let mut r = BufReader::new(wire.as_slice());
        assert_eq!(read_frame(&mut r).unwrap().unwrap().0, v);
    }

    #[test]
    fn torn_final_line_is_an_error_not_eof() {
        let wire = b"{\"cell\":1}\n{\"cell\":2".to_vec();
        let mut r = BufReader::new(wire.as_slice());
        assert_eq!(read_frame(&mut r).unwrap().unwrap().0, json!({"cell": 1}));
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
    }

    #[test]
    fn non_json_line_is_a_typed_error() {
        let wire = b"not a frame\n".to_vec();
        let mut r = BufReader::new(wire.as_slice());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn write_to_closed_carrier_is_an_error_not_a_panic() {
        // A writer that refuses everything models a dead child's pipe.
        struct Dead;
        impl std::io::Write for Dead {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "EPIPE"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut t = FrameTransport::new(BufReader::new(&b""[..]), Dead);
        let err = t.send(&json!({"cell": 0})).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(t.stats().messages_sent, 0, "failed sends are not counted");
    }
}
