//! 3-D halo-exchange geometry: domain decomposition, neighbour ranks, and
//! pack/unpack index lists.
//!
//! RAJAPerf's halo kernels operate on a 3-D box of owned cells surrounded by
//! a ghost layer of width `halo_width`. For each of the 26 neighbour
//! directions the kernels need two index lists into the *extended* grid
//! (owned + ghosts): the owned boundary cells to pack into the outgoing
//! message, and the ghost cells to unpack the incoming message into. This
//! module computes those lists, plus a periodic cartesian rank decomposition
//! (`MPI_Cart_create`-style) for resolving neighbour ranks.

/// All 26 non-zero direction offsets of a 3×3×3 stencil, in a fixed
/// deterministic order (z-major).
pub fn directions() -> Vec<[i32; 3]> {
    let mut dirs = Vec::with_capacity(26);
    for dz in -1..=1i32 {
        for dy in -1..=1i32 {
            for dx in -1..=1i32 {
                if dx != 0 || dy != 0 || dz != 0 {
                    dirs.push([dx, dy, dz]);
                }
            }
        }
    }
    dirs
}

/// One neighbour exchange: direction, and pack/unpack index lists into the
/// extended (ghosted) grid.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Neighbour direction, each component in {-1, 0, 1}.
    pub offset: [i32; 3],
    /// Linear indices (into the extended grid) of owned boundary cells to
    /// send toward `offset`.
    pub pack_list: Vec<usize>,
    /// Linear indices of ghost cells receiving data from the neighbour at
    /// `offset`.
    pub unpack_list: Vec<usize>,
}

/// Halo geometry for one rank's box.
#[derive(Debug, Clone)]
pub struct HaloGeometry {
    /// Owned cells per dimension.
    pub extent: [usize; 3],
    /// Ghost-layer width.
    pub halo_width: usize,
    /// Extended grid dimensions (`extent + 2 * halo_width`).
    pub total: [usize; 3],
    /// The 26 neighbour exchanges in [`directions`] order.
    pub exchanges: Vec<Exchange>,
}

impl HaloGeometry {
    /// Build the geometry for a box of `extent` owned cells with ghost
    /// layers of `halo_width`.
    ///
    /// # Panics
    /// Panics if any extent is smaller than the halo width (the pack slabs
    /// would overlap).
    pub fn new(extent: [usize; 3], halo_width: usize) -> HaloGeometry {
        assert!(halo_width > 0, "halo width must be positive");
        assert!(
            extent.iter().all(|&e| e >= halo_width),
            "extent {extent:?} must be >= halo width {halo_width}"
        );
        let total = [
            extent[0] + 2 * halo_width,
            extent[1] + 2 * halo_width,
            extent[2] + 2 * halo_width,
        ];
        let lin = |x: usize, y: usize, z: usize| (z * total[1] + y) * total[0] + x;
        // Per-dimension index ranges for pack (owned boundary slab) and
        // unpack (ghost slab) in a given direction component.
        let pack_range = |dir: i32, ext: usize| -> std::ops::Range<usize> {
            match dir {
                -1 => halo_width..2 * halo_width,
                0 => halo_width..halo_width + ext,
                1 => halo_width + ext - halo_width..halo_width + ext,
                _ => unreachable!(),
            }
        };
        let unpack_range = |dir: i32, ext: usize| -> std::ops::Range<usize> {
            match dir {
                -1 => 0..halo_width,
                0 => halo_width..halo_width + ext,
                1 => halo_width + ext..halo_width + ext + halo_width,
                _ => unreachable!(),
            }
        };
        let exchanges = directions()
            .into_iter()
            .map(|offset| {
                let mut pack_list = Vec::new();
                let mut unpack_list = Vec::new();
                for z in pack_range(offset[2], extent[2]) {
                    for y in pack_range(offset[1], extent[1]) {
                        for x in pack_range(offset[0], extent[0]) {
                            pack_list.push(lin(x, y, z));
                        }
                    }
                }
                for z in unpack_range(offset[2], extent[2]) {
                    for y in unpack_range(offset[1], extent[1]) {
                        for x in unpack_range(offset[0], extent[0]) {
                            unpack_list.push(lin(x, y, z));
                        }
                    }
                }
                Exchange {
                    offset,
                    pack_list,
                    unpack_list,
                }
            })
            .collect();
        HaloGeometry {
            extent,
            halo_width,
            total,
            exchanges,
        }
    }

    /// Number of cells in the extended grid.
    pub fn total_cells(&self) -> usize {
        self.total.iter().product()
    }

    /// Total elements packed across all 26 directions (the per-variable
    /// message volume of one exchange).
    pub fn pack_volume(&self) -> usize {
        self.exchanges.iter().map(|e| e.pack_list.len()).sum()
    }

    /// Linear index of an owned-region cell given owned-space coordinates.
    pub fn owned_index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.extent[0] && y < self.extent[1] && z < self.extent[2]);
        let h = self.halo_width;
        ((z + h) * self.total[1] + (y + h)) * self.total[0] + (x + h)
    }
}

/// A periodic cartesian decomposition of ranks (`MPI_Cart_create` with
/// periods = true), used to resolve each direction's neighbour rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankDecomp {
    /// Ranks per dimension.
    pub dims: [usize; 3],
}

impl RankDecomp {
    /// Create a decomposition; `dims` components must be positive.
    pub fn new(dims: [usize; 3]) -> RankDecomp {
        assert!(dims.iter().all(|&d| d > 0), "decomp dims must be positive");
        RankDecomp { dims }
    }

    /// Total rank count.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Rank id of cartesian coordinates.
    pub fn rank_of(&self, coords: [usize; 3]) -> usize {
        debug_assert!((0..3).all(|d| coords[d] < self.dims[d]));
        (coords[2] * self.dims[1] + coords[1]) * self.dims[0] + coords[0]
    }

    /// Cartesian coordinates of a rank id.
    pub fn coords_of(&self, rank: usize) -> [usize; 3] {
        debug_assert!(rank < self.size());
        [
            rank % self.dims[0],
            (rank / self.dims[0]) % self.dims[1],
            rank / (self.dims[0] * self.dims[1]),
        ]
    }

    /// Neighbour rank in direction `offset`, with periodic wraparound.
    pub fn neighbor(&self, rank: usize, offset: [i32; 3]) -> usize {
        let c = self.coords_of(rank);
        let mut n = [0usize; 3];
        for d in 0..3 {
            let dim = self.dims[d] as i64;
            n[d] = ((c[d] as i64 + offset[d] as i64).rem_euclid(dim)) as usize;
        }
        self.rank_of(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_six_directions() {
        let dirs = directions();
        assert_eq!(dirs.len(), 26);
        assert!(!dirs.contains(&[0, 0, 0]));
        // Each direction's opposite is present.
        for d in &dirs {
            assert!(dirs.contains(&[-d[0], -d[1], -d[2]]));
        }
    }

    #[test]
    fn pack_and_unpack_counts_match_by_direction() {
        let g = HaloGeometry::new([4, 5, 6], 1);
        for e in &g.exchanges {
            // This rank's unpack list for `offset` must match the
            // neighbour's pack list for `-offset` in size; with equal box
            // extents that equals this rank's own pack list for `-offset`.
            let opposite = g
                .exchanges
                .iter()
                .find(|o| o.offset == [-e.offset[0], -e.offset[1], -e.offset[2]])
                .unwrap();
            assert_eq!(e.unpack_list.len(), opposite.pack_list.len());
        }
    }

    #[test]
    fn face_edge_corner_sizes() {
        let g = HaloGeometry::new([4, 4, 4], 1);
        let size_of = |off: [i32; 3]| {
            g.exchanges
                .iter()
                .find(|e| e.offset == off)
                .unwrap()
                .pack_list
                .len()
        };
        assert_eq!(size_of([1, 0, 0]), 16, "face: 4x4");
        assert_eq!(size_of([1, 1, 0]), 4, "edge: 4x1");
        assert_eq!(size_of([1, 1, 1]), 1, "corner: 1");
    }

    #[test]
    fn pack_lists_are_owned_cells_and_unpack_lists_are_ghosts() {
        let g = HaloGeometry::new([3, 3, 3], 1);
        let h = g.halo_width;
        let in_owned = |idx: usize| {
            let x = idx % g.total[0];
            let y = (idx / g.total[0]) % g.total[1];
            let z = idx / (g.total[0] * g.total[1]);
            x >= h && x < h + g.extent[0] && y >= h && y < h + g.extent[1] && z >= h
                && z < h + g.extent[2]
        };
        for e in &g.exchanges {
            assert!(e.pack_list.iter().all(|&i| in_owned(i)));
            assert!(e.unpack_list.iter().all(|&i| !in_owned(i)));
        }
    }

    #[test]
    fn unpack_lists_are_disjoint_across_directions() {
        let g = HaloGeometry::new([4, 4, 4], 2);
        let mut seen = std::collections::HashSet::new();
        for e in &g.exchanges {
            for &i in &e.unpack_list {
                assert!(seen.insert(i), "ghost cell {i} unpacked twice");
            }
        }
    }

    #[test]
    fn unpack_covers_all_ghost_cells() {
        let g = HaloGeometry::new([4, 4, 4], 1);
        let ghost_cells = g.total_cells() - g.extent.iter().product::<usize>();
        let unpacked: usize = g.exchanges.iter().map(|e| e.unpack_list.len()).sum();
        assert_eq!(unpacked, ghost_cells);
    }

    #[test]
    fn owned_index_addresses_interior() {
        let g = HaloGeometry::new([3, 3, 3], 1);
        assert_eq!(g.owned_index(0, 0, 0), (5 + 1) * 5 + 1);
    }

    #[test]
    fn rank_decomp_roundtrip_and_wrap() {
        let d = RankDecomp::new([2, 3, 2]);
        assert_eq!(d.size(), 12);
        for r in 0..d.size() {
            assert_eq!(d.rank_of(d.coords_of(r)), r);
        }
        // Periodic wrap in x from coordinate 0 going -1.
        let r = d.rank_of([0, 1, 1]);
        let n = d.neighbor(r, [-1, 0, 0]);
        assert_eq!(d.coords_of(n), [1, 1, 1]);
    }

    #[test]
    fn full_exchange_roundtrip_over_simcomm() {
        // 2x1x1 periodic decomposition: each rank's +x neighbour is the
        // other rank. Pack → exchange → unpack, then verify ghosts hold the
        // neighbour's boundary values.
        let decomp = RankDecomp::new([2, 1, 1]);
        let extent = [2, 2, 2];
        let out = crate::run(decomp.size(), |mut comm| {
            let g = HaloGeometry::new(extent, 1);
            let mut grid = vec![-1.0f64; g.total_cells()];
            // Owned cells hold rank*1000 + owned linear id.
            for z in 0..extent[2] {
                for y in 0..extent[1] {
                    for x in 0..extent[0] {
                        let owned_id = (z * extent[1] + y) * extent[0] + x;
                        grid[g.owned_index(x, y, z)] =
                            comm.rank() as f64 * 1000.0 + owned_id as f64;
                    }
                }
            }
            // Post receives, send packs (tag = direction index).
            let mut reqs = Vec::new();
            for (tag, e) in g.exchanges.iter().enumerate() {
                let nbr = decomp.neighbor(comm.rank(), e.offset);
                reqs.push(comm.irecv(nbr, tag as i32));
            }
            for (tag, e) in g.exchanges.iter().enumerate() {
                let nbr = decomp.neighbor(comm.rank(), e.offset);
                // The message the neighbour expects under `tag` is the one
                // for its own direction `tag`, whose source packs with the
                // opposite direction: pack our opposite list.
                let opp = [-e.offset[0], -e.offset[1], -e.offset[2]];
                let src_list = &g
                    .exchanges
                    .iter()
                    .find(|x| x.offset == opp)
                    .unwrap()
                    .pack_list;
                let buf: Vec<f64> = src_list.iter().map(|&i| grid[i]).collect();
                comm.isend(nbr, tag as i32, &buf);
            }
            for (e, req) in g.exchanges.iter().zip(reqs) {
                let buf = comm.wait(req).unwrap();
                assert_eq!(buf.len(), e.unpack_list.len());
                for (&idx, &v) in e.unpack_list.iter().zip(&buf) {
                    grid[idx] = v;
                }
            }
            // Every ghost cell must now be filled.
            grid.iter().all(|&v| v >= 0.0)
        });
        assert!(out.iter().all(|&ok| ok));
    }
}
