//! A simulated message-passing substrate (the suite's MPI stand-in).
//!
//! RAJAPerf's Comm group (HALO_PACKING, HALO_EXCHANGE, HALO_SENDRECV and the
//! FUSED variants) exercises distributed-memory halo-exchange patterns:
//! packing boundary elements into per-neighbour buffers, exchanging them
//! with MPI point-to-point messages, and unpacking into ghost cells. The
//! paper also runs the *whole* suite under MPI (112 ranks on the CPU
//! systems, one rank per GPU on the others — Table III).
//!
//! This container has one core and no MPI, so this crate implements message
//! passing over OS threads: [`run`] spawns one thread per rank, and each
//! rank's [`Comm`] handle provides blocking send/recv with tag matching,
//! non-blocking isend/irecv with [`Request`]s, barriers, and allreduce —
//! the subset the halo kernels need. Per-rank traffic counters feed the
//! performance model's communication-cost term (`latency + bytes/BW` per
//! message), which is how the paper's "HALO kernels are dominated by MPI
//! time" observation is reproduced.
//!
//! [`halo`] builds the 3-D domain-decomposition geometry: neighbour ranks
//! and pack/unpack index lists for all 26 adjacencies of a box with ghost
//! layers — the same lists RAJAPerf's halo kernels compute.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

pub mod halo;

/// A tagged message in flight.
#[derive(Debug)]
struct Message {
    src: usize,
    tag: i32,
    payload: Vec<f64>,
}

/// Per-rank traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent by this rank.
    pub messages_sent: u64,
    /// Total payload bytes sent by this rank.
    pub bytes_sent: u64,
}

/// A rank's endpoint within a communicator.
pub struct Comm {
    rank: usize,
    size: usize,
    /// Sender to every rank (index = destination).
    senders: Vec<Sender<Message>>,
    /// This rank's inbox.
    inbox: Receiver<Message>,
    /// Out-of-order messages awaiting a matching recv.
    pending: Vec<Message>,
    barrier: Arc<Barrier>,
    stats: CommStats,
}

/// Handle for a non-blocking operation, completed by [`Comm::wait`].
#[derive(Debug)]
pub enum Request {
    /// A send; completes immediately (buffered sends, like `MPI_Ibsend`).
    Send,
    /// A receive of a message from `src` with matching `tag`.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: i32,
    },
}

impl Comm {
    /// This rank's id (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Blocking tagged send (buffered; cannot deadlock on itself).
    pub fn send(&mut self, dest: usize, tag: i32, payload: &[f64]) {
        assert!(dest < self.size, "send to invalid rank {dest}");
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += std::mem::size_of_val(payload) as u64;
        self.senders[dest]
            .send(Message {
                src: self.rank,
                tag,
                payload: payload.to_vec(),
            })
            .expect("peer rank hung up");
    }

    /// Blocking tagged receive from a specific source.
    pub fn recv(&mut self, src: usize, tag: i32) -> Vec<f64> {
        // Check messages that arrived earlier but did not match then.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            return self.pending.swap_remove(pos).payload;
        }
        loop {
            let msg = self.inbox.recv().expect("peer rank hung up");
            if msg.src == src && msg.tag == tag {
                return msg.payload;
            }
            self.pending.push(msg);
        }
    }

    /// Non-blocking send (`MPI_Isend` with buffering).
    pub fn isend(&mut self, dest: usize, tag: i32, payload: &[f64]) -> Request {
        self.send(dest, tag, payload);
        Request::Send
    }

    /// Post a non-blocking receive (`MPI_Irecv`); complete it with
    /// [`Comm::wait`].
    pub fn irecv(&mut self, src: usize, tag: i32) -> Request {
        Request::Recv { src, tag }
    }

    /// Complete a request, returning the payload for receives.
    pub fn wait(&mut self, req: Request) -> Option<Vec<f64>> {
        match req {
            Request::Send => None,
            Request::Recv { src, tag } => Some(self.recv(src, tag)),
        }
    }

    /// Complete a batch of requests, returning received payloads in request
    /// order (`MPI_Waitall`).
    pub fn wait_all(&mut self, reqs: Vec<Request>) -> Vec<Option<Vec<f64>>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Synchronize all ranks (`MPI_Barrier`).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Sum-allreduce a scalar across ranks (`MPI_Allreduce(..., MPI_SUM)`).
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        const REDUCE_TAG: i32 = -101;
        if self.size == 1 {
            return value;
        }
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                acc += self.recv(src, REDUCE_TAG)[0];
            }
            for dest in 1..self.size {
                self.send(dest, REDUCE_TAG + 1, &[acc]);
            }
            acc
        } else {
            self.send(0, REDUCE_TAG, &[value]);
            self.recv(0, REDUCE_TAG + 1)[0]
        }
    }
}

/// Run `body` once per rank on `nranks` threads, collecting each rank's
/// return value in rank order. This is the `mpirun -np N` equivalent.
///
/// # Panics
/// Propagates a panic from any rank.
pub fn run<T, F>(nranks: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    assert!(nranks > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(nranks);
    let mut receivers = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let barrier = Arc::new(Barrier::new(nranks));
    let mut comms: Vec<Comm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Comm {
            rank,
            size: nranks,
            senders: senders.clone(),
            inbox,
            pending: Vec::new(),
            barrier: barrier.clone(),
            stats: CommStats::default(),
        })
        .collect();
    drop(senders);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for comm in comms.drain(..) {
            let body = &body;
            handles.push(scope.spawn(move || body(comm)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run(1, |comm| comm.rank() + comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass_delivers_in_rank_order() {
        let n = 4;
        let out = run(n, |mut comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, &[comm.rank() as f64]);
            comm.recv(prev, 7)[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn tag_matching_reorders_messages() {
        let out = run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0]);
                comm.send(1, 2, &[2.0]);
                0.0
            } else {
                // Receive in the opposite order they were sent.
                let b = comm.recv(0, 2)[0];
                let a = comm.recv(0, 1)[0];
                a * 10.0 + b
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn isend_irecv_waitall() {
        let out = run(2, |mut comm| {
            let peer = 1 - comm.rank();
            let payload = vec![comm.rank() as f64; 8];
            let s = comm.isend(peer, 0, &payload);
            let r = comm.irecv(peer, 0);
            let results = comm.wait_all(vec![s, r]);
            results[1].as_ref().unwrap()[0]
        });
        assert_eq!(out, vec![1.0, 0.0]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let out = run(5, |mut comm| comm.allreduce_sum(comm.rank() as f64 + 1.0));
        assert!(out.iter().all(|&v| v == 15.0));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        run(4, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all arrivals.
            assert_eq!(before.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let out = run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[0.0; 10]);
                comm.stats()
            } else {
                comm.recv(0, 0);
                comm.stats()
            }
        });
        assert_eq!(out[0].messages_sent, 1);
        assert_eq!(out[0].bytes_sent, 80);
        assert_eq!(out[1].messages_sent, 0);
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn send_to_invalid_rank_panics() {
        // The offending rank panics with "send to invalid rank"; `run`
        // surfaces that as a join failure.
        run(1, |mut comm| comm.send(5, 0, &[1.0]));
    }
}
