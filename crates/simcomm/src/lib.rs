//! A simulated message-passing substrate (the suite's MPI stand-in).
//!
//! RAJAPerf's Comm group (HALO_PACKING, HALO_EXCHANGE, HALO_SENDRECV and the
//! FUSED variants) exercises distributed-memory halo-exchange patterns:
//! packing boundary elements into per-neighbour buffers, exchanging them
//! with MPI point-to-point messages, and unpacking into ghost cells. The
//! paper also runs the *whole* suite under MPI (112 ranks on the CPU
//! systems, one rank per GPU on the others — Table III).
//!
//! This container has one core and no MPI, so this crate implements message
//! passing over OS threads: [`run`] spawns one thread per rank, and each
//! rank's [`Comm`] handle provides blocking send/recv with tag matching,
//! non-blocking isend/irecv with [`Request`]s, barriers, and allreduce —
//! the subset the halo kernels and the rank-sharded sweep orchestrator
//! need. Per-rank traffic counters (both directions) feed the performance
//! model's communication-cost term (`latency + bytes/BW` per message),
//! which is how the paper's "HALO kernels are dominated by MPI time"
//! observation is reproduced.
//!
//! # Hardened rank runtime
//!
//! A real `mpirun` kills the job when one rank dies; a naive thread
//! simulation instead deadlocks — peers block forever in `Barrier::wait`
//! or a channel `recv` that no one will ever satisfy. This runtime makes
//! rank death a *detectable, attributed* event:
//!
//! * the barrier is poison-aware ([`PoisonBarrier`]): the first rank to
//!   panic poisons it, waking every current and future waiter;
//! * blocked receivers are woken by an abort sentinel injected into every
//!   inbox when a rank dies;
//! * sends to a dead rank's dropped inbox abort the sender instead of
//!   cascading `expect("peer rank hung up")` panics.
//!
//! Secondary casualties unwind with a private [`RankAbort`] payload that
//! the runtime recognizes and discards; [`try_run`] reports the *original*
//! failure as a rank-attributed [`RankPanic`].
//!
//! # Tag discipline
//!
//! User-facing tags must be `>= 0`. The negative tag space is reserved for
//! the runtime (collectives, abort sentinels), so user traffic can never
//! collide with an in-flight `allreduce_sum` again.
//!
//! # Transports
//!
//! The in-memory channels here are one carrier of the sweep's gather
//! protocol; [`transport`] is the carrier-independent other half — line-
//! delimited JSON framing with [`CommStats`] accounting over any
//! `Read`/`Write` pair — used by process-isolated campaigns to speak the
//! same protocol over child-process pipes.
//!
//! [`halo`] builds the 3-D domain-decomposition geometry: neighbour ranks
//! and pack/unpack index lists for all 26 adjacencies of a box with ghost
//! layers — the same lists RAJAPerf's halo kernels compute.

use crossbeam::channel::{unbounded, Receiver, Sender};
use simsched::sync::{Condvar, Mutex};
use std::cell::Cell;
use std::sync::{Arc, PoisonError};

pub mod halo;
pub mod transport;

/// Tags below zero belong to the runtime; user-facing operations must use
/// tags `>= 0`.
pub const FIRST_USER_TAG: i32 = 0;
/// Reserved tag: gather leg of [`Comm::allreduce_sum`].
const REDUCE_GATHER_TAG: i32 = -101;
/// Reserved tag: broadcast leg of [`Comm::allreduce_sum`].
const REDUCE_BCAST_TAG: i32 = -100;
/// Reserved tag: abort sentinel waking receivers blocked on a dead peer.
const ABORT_TAG: i32 = i32::MIN;

/// A message payload: numeric halo data or opaque bytes (the rank-sharded
/// sweep gathers its per-cell results as serialized JSON bytes).
#[derive(Debug, Clone)]
enum Payload {
    F64(Vec<f64>),
    Bytes(Vec<u8>),
}

impl Payload {
    fn len_bytes(&self) -> u64 {
        match self {
            Payload::F64(v) => (v.len() * std::mem::size_of::<f64>()) as u64,
            Payload::Bytes(b) => b.len() as u64,
        }
    }
}

/// A tagged message in flight.
#[derive(Debug)]
struct Message {
    src: usize,
    tag: i32,
    payload: Payload,
}

/// Per-rank traffic statistics, counted on both sides of the wire: a rank
/// that receives 26 halo faces is distinguishable from one that receives
/// none, which the perfmodel communication-cost term needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent by this rank.
    pub messages_sent: u64,
    /// Total payload bytes sent by this rank.
    pub bytes_sent: u64,
    /// Messages received (delivered to the application) by this rank.
    pub messages_received: u64,
    /// Total payload bytes received by this rank.
    pub bytes_received: u64,
}

impl CommStats {
    /// The all-zero counter set (`const`, for static initializers).
    pub const fn new() -> CommStats {
        CommStats {
            messages_sent: 0,
            bytes_sent: 0,
            messages_received: 0,
            bytes_received: 0,
        }
    }

    /// Counters accumulated since `earlier` (saturating per field).
    pub fn since(self, earlier: CommStats) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            messages_received: self
                .messages_received
                .saturating_sub(earlier.messages_received),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
        }
    }

    /// Fold another counter set into this one.
    pub fn add(&mut self, other: CommStats) {
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.messages_received += other.messages_received;
        self.bytes_received += other.bytes_received;
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == CommStats::new()
    }
}

thread_local! {
    /// Cumulative per-thread communication counters: every [`run`] /
    /// [`try_run`] completed *from this thread* folds its ranks' totals in.
    /// The suite snapshots this around each kernel execution to attribute
    /// measured `comm.*` metrics to the kernel's Caliper region.
    static THREAD_STATS: Cell<CommStats> = const { Cell::new(CommStats::new()) };
}

/// Cumulative communication counters of every communicator run completed
/// from the calling thread. Take a snapshot before and after a region and
/// subtract ([`CommStats::since`]) to attribute traffic to it.
pub fn thread_stats() -> CommStats {
    THREAD_STATS.with(|s| s.get())
}

/// Fold externally measured counters into the calling thread's cumulative
/// stats. The suite's watchdog relays a spawned attempt's delta back to the
/// runner thread with this.
pub fn add_thread_stats(delta: CommStats) {
    THREAD_STATS.with(|s| {
        let mut v = s.get();
        v.add(delta);
        s.set(v);
    });
}

/// A rank-attributed failure from [`try_run`]: the first rank that
/// panicked, with its panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPanic {
    /// The rank whose panic killed the run.
    pub rank: usize,
    /// Its panic message.
    pub message: String,
}

impl std::fmt::Display for RankPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message)
    }
}

impl std::error::Error for RankPanic {}

/// Private unwind payload for secondary casualties: a rank aborted because
/// a *peer* died (poisoned barrier, abort sentinel, dead inbox). The
/// runtime discards these instead of reporting them as the root failure.
struct RankAbort(String);

fn abort(cause: String) -> ! {
    std::panic::panic_any(RankAbort(cause))
}

/// A barrier whose waiters can be woken by rank death. `std::sync::Barrier`
/// has no such escape hatch: a waiter whose peer panicked blocks forever.
struct PoisonBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    nranks: usize,
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(nranks: usize) -> PoisonBarrier {
        PoisonBarrier {
            state: Mutex::labeled(
                BarrierState {
                    nranks,
                    arrived: 0,
                    generation: 0,
                    poisoned: false,
                },
                "simcomm.barrier",
            ),
            cv: Condvar::new(),
        }
    }

    /// Wait for all ranks. `Err` means a rank died while anyone was (or
    /// will be) waiting; the barrier never completes again.
    fn wait(&self) -> Result<(), ()> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.poisoned {
            return Err(());
        }
        st.arrived += 1;
        if st.arrived == st.nranks {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.poisoned && st.generation == gen {
            Err(())
        } else {
            Ok(())
        }
    }

    /// Mark the barrier dead and wake every waiter.
    fn poison(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.poisoned = true;
        self.cv.notify_all();
    }
}

/// Runtime state shared by all ranks of one [`run`]: the poison machinery
/// and the per-rank stats board the runtime reads back after the join.
struct RunShared {
    barrier: PoisonBarrier,
    /// First rank to panic wins; secondary aborts never overwrite it.
    panic_slot: Mutex<Option<RankPanic>>,
    /// The runtime's own sender clones, used to inject abort sentinels into
    /// every inbox when a rank dies (a dead rank's own clones are gone).
    abort_senders: Mutex<Vec<Sender<Message>>>,
    /// Final per-rank stats, written by `Comm::drop` (normal return *and*
    /// unwind both drop the handle).
    stats: Mutex<Vec<CommStats>>,
}

/// A rank's endpoint within a communicator.
pub struct Comm {
    rank: usize,
    size: usize,
    /// Sender to every rank (index = destination).
    senders: Vec<Sender<Message>>,
    /// This rank's inbox.
    inbox: Receiver<Message>,
    /// Out-of-order messages awaiting a matching recv.
    pending: Vec<Message>,
    shared: Arc<RunShared>,
    stats: CommStats,
}

/// Handle for a non-blocking operation, completed by [`Comm::wait`].
#[derive(Debug)]
pub enum Request {
    /// A send; completes immediately (buffered sends, like `MPI_Ibsend`).
    Send,
    /// A receive of a message from `src` with matching `tag`.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: i32,
    },
}

impl Comm {
    /// This rank's id (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    fn assert_user_tag(tag: i32) {
        assert!(
            tag >= FIRST_USER_TAG,
            "tag {tag} is reserved: negative tags belong to simcomm \
             collectives and runtime control traffic"
        );
    }

    /// Internal send, reserved tags allowed. A dead destination (its inbox
    /// dropped mid-unwind) aborts this rank instead of panicking opaquely.
    fn send_raw(&mut self, dest: usize, tag: i32, payload: Payload) {
        assert!(dest < self.size, "send to invalid rank {dest}");
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += payload.len_bytes();
        if self.senders[dest]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .is_err()
        {
            abort(format!("rank {dest} hung up (inbox dropped)"));
        }
    }

    /// Internal receive, reserved tags allowed. Wakes on abort sentinels.
    fn recv_raw(&mut self, src: usize, tag: i32) -> Payload {
        assert!(src < self.size, "recv from invalid rank {src}");
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            let payload = self.pending.swap_remove(pos).payload;
            self.stats.messages_received += 1;
            self.stats.bytes_received += payload.len_bytes();
            return payload;
        }
        loop {
            let msg = match self.inbox.recv() {
                Ok(m) => m,
                Err(_) => abort("all peer ranks hung up".to_string()),
            };
            if msg.tag == ABORT_TAG {
                abort(format!("rank {} aborted the run", msg.src));
            }
            if msg.src == src && msg.tag == tag {
                self.stats.messages_received += 1;
                self.stats.bytes_received += msg.payload.len_bytes();
                return msg.payload;
            }
            self.pending.push(msg);
        }
    }

    /// Blocking tagged send (buffered; cannot deadlock on itself). The tag
    /// must be `>= 0`; negative tags are reserved for the runtime.
    pub fn send(&mut self, dest: usize, tag: i32, payload: &[f64]) {
        Self::assert_user_tag(tag);
        self.send_raw(dest, tag, Payload::F64(payload.to_vec()));
    }

    /// Blocking tagged receive from a specific source (tag `>= 0`).
    pub fn recv(&mut self, src: usize, tag: i32) -> Vec<f64> {
        Self::assert_user_tag(tag);
        match self.recv_raw(src, tag) {
            Payload::F64(v) => v,
            Payload::Bytes(_) => panic!(
                "payload type mismatch: rank {src} sent bytes on tag {tag}, \
                 receiver expected f64"
            ),
        }
    }

    /// Blocking tagged byte send (tag `>= 0`). The rank-sharded sweep
    /// gathers per-cell results as serialized JSON with this.
    pub fn send_bytes(&mut self, dest: usize, tag: i32, payload: &[u8]) {
        Self::assert_user_tag(tag);
        self.send_raw(dest, tag, Payload::Bytes(payload.to_vec()));
    }

    /// Blocking tagged byte receive from a specific source (tag `>= 0`).
    pub fn recv_bytes(&mut self, src: usize, tag: i32) -> Vec<u8> {
        Self::assert_user_tag(tag);
        match self.recv_raw(src, tag) {
            Payload::Bytes(b) => b,
            Payload::F64(_) => panic!(
                "payload type mismatch: rank {src} sent f64 on tag {tag}, \
                 receiver expected bytes"
            ),
        }
    }

    /// Non-blocking send (`MPI_Isend` with buffering; tag `>= 0`).
    pub fn isend(&mut self, dest: usize, tag: i32, payload: &[f64]) -> Request {
        self.send(dest, tag, payload);
        Request::Send
    }

    /// Post a non-blocking receive (`MPI_Irecv`, tag `>= 0`); complete it
    /// with [`Comm::wait`].
    pub fn irecv(&mut self, src: usize, tag: i32) -> Request {
        Self::assert_user_tag(tag);
        Request::Recv { src, tag }
    }

    /// Complete a request, returning the payload for receives.
    pub fn wait(&mut self, req: Request) -> Option<Vec<f64>> {
        match req {
            Request::Send => None,
            Request::Recv { src, tag } => Some(self.recv(src, tag)),
        }
    }

    /// Complete a batch of requests, returning received payloads in request
    /// order (`MPI_Waitall`).
    pub fn wait_all(&mut self, reqs: Vec<Request>) -> Vec<Option<Vec<f64>>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Synchronize all ranks (`MPI_Barrier`). If any rank dies, every
    /// waiter aborts instead of blocking forever.
    pub fn barrier(&self) {
        if self.shared.barrier.wait().is_err() {
            abort("barrier poisoned by a peer rank's panic".to_string());
        }
    }

    /// Sum-allreduce a scalar across ranks (`MPI_Allreduce(..., MPI_SUM)`).
    /// Runs entirely on reserved negative tags, so it can never be satisfied
    /// by (or swallow) user traffic.
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        if self.size == 1 {
            return value;
        }
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                acc += match self.recv_raw(src, REDUCE_GATHER_TAG) {
                    Payload::F64(v) => v[0],
                    Payload::Bytes(_) => unreachable!("collectives carry f64"),
                };
            }
            for dest in 1..self.size {
                self.send_raw(dest, REDUCE_BCAST_TAG, Payload::F64(vec![acc]));
            }
            acc
        } else {
            self.send_raw(0, REDUCE_GATHER_TAG, Payload::F64(vec![value]));
            match self.recv_raw(0, REDUCE_BCAST_TAG) {
                Payload::F64(v) => v[0],
                Payload::Bytes(_) => unreachable!("collectives carry f64"),
            }
        }
    }
}

impl Drop for Comm {
    fn drop(&mut self) {
        // Publish final counters whether the rank returned or unwound; the
        // runtime reads the board after the join.
        let mut board = self
            .shared
            .stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        board[self.rank] = self.stats;
    }
}

/// Record a failure as the run's root cause (first writer wins — poisoning
/// happens *after* the slot write, so secondary casualties always find it
/// occupied; a secondary abort that finds it empty is a genuine protocol
/// bug like sending to a rank that already returned), then wake everyone:
/// poison the barrier and inject an abort sentinel into every inbox so
/// blocked receivers unwind too.
fn poison_run(shared: &RunShared, rank: usize, message: String) {
    {
        let mut slot = shared
            .panic_slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(RankPanic { rank, message });
        }
    }
    shared.barrier.poison();
    let senders = shared
        .abort_senders
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    for s in senders.iter() {
        let _ = s.send(Message {
            src: rank,
            tag: ABORT_TAG,
            payload: Payload::Bytes(Vec::new()),
        });
    }
}

/// Run `body` once per rank on `nranks` threads, collecting each rank's
/// return value in rank order along with each rank's final [`CommStats`].
/// This is the `mpirun -np N` equivalent, hardened: a panicking rank can
/// no longer hang the run — peers blocked in [`Comm::barrier`] or
/// [`Comm::recv`] are woken and the first failure comes back as a
/// rank-attributed [`RankPanic`].
///
/// The ranks' summed traffic is also folded into the calling thread's
/// cumulative [`thread_stats`] so callers can attribute communication to
/// enclosing regions.
pub fn try_run_with_stats<T, F>(nranks: usize, body: F) -> Result<(Vec<T>, Vec<CommStats>), RankPanic>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    assert!(nranks > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(nranks);
    let mut receivers = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(RunShared {
        barrier: PoisonBarrier::new(nranks),
        panic_slot: Mutex::labeled(None, "simcomm.panic_slot"),
        abort_senders: Mutex::labeled(senders.clone(), "simcomm.abort_senders"),
        stats: Mutex::labeled(vec![CommStats::new(); nranks], "simcomm.stats"),
    });
    let mut comms: Vec<Comm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Comm {
            rank,
            size: nranks,
            senders: senders.clone(),
            inbox,
            pending: Vec::new(),
            shared: shared.clone(),
            stats: CommStats::new(),
        })
        .collect();
    drop(senders);

    let values: Vec<Option<T>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for comm in comms.drain(..) {
            let body = &body;
            let shared = &shared;
            let rank = comm.rank;
            let handle = std::thread::Builder::new()
                .name(format!("simcomm-rank-{rank}"))
                .spawn_scoped(scope, move || {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(comm))) {
                        Ok(v) => Some(v),
                        Err(payload) => {
                            if let Some(a) = payload.downcast_ref::<RankAbort>() {
                                // Secondary casualty: re-poison (idempotent)
                                // so propagation chains across ranks.
                                poison_run(shared, rank, format!("aborted: {}", a.0));
                            } else {
                                let msg = message_of(&*payload);
                                poison_run(shared, rank, msg);
                            }
                            None
                        }
                    }
                })
                .expect("spawn simcomm rank thread");
            handles.push(handle);
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(None))
            .collect()
    });

    // Drop the runtime's sender clones before reading results: the run is
    // over, nothing may inject further.
    shared
        .abort_senders
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();

    let stats = shared
        .stats
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut total = CommStats::new();
    for s in &stats {
        total.add(*s);
    }
    add_thread_stats(total);

    let root = shared
        .panic_slot
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(p) = root {
        return Err(p);
    }
    let mut out = Vec::with_capacity(nranks);
    for (rank, v) in values.into_iter().enumerate() {
        match v {
            Some(v) => out.push(v),
            None => {
                return Err(RankPanic {
                    rank,
                    message: "rank produced no value".to_string(),
                })
            }
        }
    }
    Ok((out, stats))
}

/// [`try_run_with_stats`] without the stats board.
pub fn try_run<T, F>(nranks: usize, body: F) -> Result<Vec<T>, RankPanic>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    try_run_with_stats(nranks, body).map(|(v, _)| v)
}

/// Run `body` once per rank on `nranks` threads, collecting each rank's
/// return value in rank order. This is the `mpirun -np N` equivalent.
///
/// # Panics
/// Re-panics with the first failing rank's original message if any rank
/// panicked (like `mpirun` aborting the job). The message is deliberately
/// *not* decorated with the rank number: when a seeded fault fells several
/// ranks symmetrically, which one loses the race is nondeterministic, and
/// callers (the suite's retry classifier, seeded-determinism checks)
/// depend on the propagated text being stable — and on `simfault:`-style
/// prefixes staying at the front. Use [`try_run`] for rank attribution.
pub fn run<T, F>(nranks: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    try_run(nranks, body).unwrap_or_else(|p| panic!("{}", p.message))
}

/// Extract a readable message from an unwind payload.
fn message_of(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn single_rank_runs() {
        let out = run(1, |comm| comm.rank() + comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass_delivers_in_rank_order() {
        let n = 4;
        let out = run(n, |mut comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, &[comm.rank() as f64]);
            comm.recv(prev, 7)[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn tag_matching_reorders_messages() {
        let out = run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0]);
                comm.send(1, 2, &[2.0]);
                0.0
            } else {
                // Receive in the opposite order they were sent.
                let b = comm.recv(0, 2)[0];
                let a = comm.recv(0, 1)[0];
                a * 10.0 + b
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn isend_irecv_waitall() {
        let out = run(2, |mut comm| {
            let peer = 1 - comm.rank();
            let payload = vec![comm.rank() as f64; 8];
            let s = comm.isend(peer, 0, &payload);
            let r = comm.irecv(peer, 0);
            let results = comm.wait_all(vec![s, r]);
            results[1].as_ref().unwrap()[0]
        });
        assert_eq!(out, vec![1.0, 0.0]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let out = run(5, |mut comm| comm.allreduce_sum(comm.rank() as f64 + 1.0));
        assert!(out.iter().all(|&v| v == 15.0));
    }

    #[test]
    fn allreduce_coexists_with_user_tag_traffic() {
        // User messages on tag 0 in flight *around* an allreduce: with the
        // collectives on reserved tags, neither can swallow the other.
        let out = run(3, |mut comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 0, &[100.0 + comm.rank() as f64]);
            let red = comm.allreduce_sum(1.0);
            let ring = comm.recv(prev, 0)[0];
            (red, ring)
        });
        for (rank, (red, ring)) in out.iter().enumerate() {
            assert_eq!(*red, 3.0);
            assert_eq!(*ring, 100.0 + ((rank + 2) % 3) as f64);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        run(4, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all arrivals.
            assert_eq!(before.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn stats_count_messages_and_bytes_in_both_directions() {
        let out = run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[0.0; 10]);
                comm.stats()
            } else {
                comm.recv(0, 0);
                comm.stats()
            }
        });
        assert_eq!(out[0].messages_sent, 1);
        assert_eq!(out[0].bytes_sent, 80);
        assert_eq!(out[0].messages_received, 0);
        assert_eq!(out[1].messages_sent, 0);
        assert_eq!(out[1].messages_received, 1);
        assert_eq!(out[1].bytes_received, 80);
    }

    #[test]
    fn bytes_roundtrip_and_are_counted() {
        let (out, stats) = try_run_with_stats(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 3, b"gather me");
                Vec::new()
            } else {
                comm.recv_bytes(0, 3)
            }
        })
        .unwrap();
        assert_eq!(out[1], b"gather me");
        assert_eq!(stats[0].bytes_sent, 9);
        assert_eq!(stats[1].bytes_received, 9);
        assert_eq!(stats[1].messages_received, 1);
    }

    #[test]
    fn thread_stats_accumulate_run_totals() {
        let before = thread_stats();
        run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[0.0; 4]);
            } else {
                comm.recv(0, 0);
            }
        });
        let delta = thread_stats().since(before);
        assert_eq!(delta.messages_sent, 1);
        assert_eq!(delta.bytes_sent, 32);
        assert_eq!(delta.messages_received, 1);
        assert_eq!(delta.bytes_received, 32);
    }

    #[test]
    #[should_panic(expected = "send to invalid rank")]
    fn send_to_invalid_rank_panics() {
        // The offending rank panics with "send to invalid rank"; `run`
        // re-panics with that original message (rank attribution lives on
        // `try_run`'s `RankPanic`).
        run(1, |mut comm| comm.send(5, 0, &[1.0]));
    }

    #[test]
    fn user_negative_tag_is_rejected_not_swallowed() {
        // Tag -101 collides with the allreduce gather leg; it must be
        // rejected at the send site, never silently matched.
        let err = try_run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, -101, &[1.0]);
            }
        })
        .unwrap_err();
        assert_eq!(err.rank, 0);
        assert!(err.message.contains("reserved"), "{}", err.message);

        let err = try_run(1, |mut comm| {
            comm.irecv(0, -1);
        })
        .unwrap_err();
        assert!(err.message.contains("reserved"), "{}", err.message);
    }

    #[test]
    fn rank_panic_mid_barrier_returns_rank_attributed_error() {
        // Regression: rank 1 of 4 dies before the barrier while the other
        // three are blocked in `wait`. The old std::sync::Barrier hung
        // forever; the poisoned barrier must surface the failure within
        // the watchdog budget.
        // Deliberately real wall-clock: the property under test is "returns
        // promptly in real time", same as the exec watchdog tests.
        #[allow(clippy::disallowed_methods)]
        let started = std::time::Instant::now();
        let err = try_run(4, |comm| {
            if comm.rank() == 1 {
                panic!("rank 1 exploded");
            }
            comm.barrier();
        })
        .unwrap_err();
        assert_eq!(err.rank, 1);
        assert!(err.message.contains("rank 1 exploded"), "{}", err.message);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "poisoned barrier must wake waiters promptly, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn rank_panic_unblocks_peers_in_recv() {
        // Peers blocked in recv on the dead rank are woken by the abort
        // sentinel instead of waiting for a message that will never come.
        #[allow(clippy::disallowed_methods)]
        let started = std::time::Instant::now();
        let err = try_run(3, |mut comm| {
            match comm.rank() {
                1 => panic!("rank 1 died before sending"),
                _ => {
                    let _ = comm.recv(1, 0);
                }
            };
        })
        .unwrap_err();
        assert_eq!(err.rank, 1);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "blocked receivers must be woken promptly, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn try_run_returns_values_and_stats_on_success() {
        let (values, stats) = try_run_with_stats(2, |mut comm| {
            let peer = 1 - comm.rank();
            comm.send(peer, 0, &[comm.rank() as f64]);
            comm.recv(peer, 0)[0]
        })
        .unwrap();
        assert_eq!(values, vec![1.0, 0.0]);
        assert!(stats.iter().all(|s| s.messages_sent == 1));
        assert!(stats.iter().all(|s| s.messages_received == 1));
    }
}
