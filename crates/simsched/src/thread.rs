//! Shimmed thread spawn/join.
//!
//! Passthrough to `std::thread` normally. Inside a model-checked body the
//! spawned thread is registered with the scheduler (spawn and join are
//! scheduling points; the child parks before running any user code until
//! the schedule grants it a first slice) while still running on a real OS
//! thread underneath.

use std::io;

/// Handle to a shimmed spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    #[cfg(simsched)]
    sim_tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, returning its result (or its panic
    /// payload). Under the model checker, joining is a scheduling point
    /// enabled only once the target thread has finished — a join that can
    /// never be enabled shows up as a reported deadlock.
    pub fn join(self) -> std::thread::Result<T> {
        #[cfg(simsched)]
        if let Some(target) = self.sim_tid {
            if crate::sched::in_model() {
                crate::sched::yield_op(crate::sched::Op::Join { target });
            }
        }
        self.inner.join()
    }

    /// Whether the thread has exited.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Spawn a thread running `f`; shimmed equivalent of `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("simsched: thread spawn failed")
}

/// Thread factory mirroring the `std::thread::Builder` subset the pool uses.
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// New builder with default settings.
    pub fn new() -> Builder {
        Builder { name: None }
    }

    /// Name the thread (shows up in panic messages and debuggers).
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawn the thread.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        #[cfg(simsched)]
        if crate::sched::in_model() {
            let (sim_tid, inner) = crate::sched::spawn_sim(self.name, f)?;
            return Ok(JoinHandle {
                inner,
                sim_tid: Some(sim_tid),
            });
        }
        let mut b = std::thread::Builder::new();
        if let Some(name) = self.name {
            b = b.name(name);
        }
        Ok(JoinHandle {
            inner: b.spawn(f)?,
            #[cfg(simsched)]
            sim_tid: None,
        })
    }
}
