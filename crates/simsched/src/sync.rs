//! Drop-in `std::sync` wrappers that make synchronization *observable*.
//!
//! In a normal build every type here is a passthrough to its `std`
//! counterpart: the atomics and `Condvar` delegate with `#[inline]`
//! one-liners, and `Mutex::lock` adds exactly one relaxed atomic load — the
//! gate for the [`crate::lockorder`] recorder (the `simfault` zero-cost-off
//! discipline). Compiled with `--cfg simsched`, operations issued by a
//! thread running inside [`crate::check`] additionally become *scheduling
//! points*: the thread parks and the model checker decides who runs next,
//! which is what lets the checker explore interleavings exhaustively.
//!
//! The API mirrors `std::sync` (poisoning `LockResult`s included) so the
//! pool, the trace service, and `simfault` could switch by changing
//! imports.

// This module IS the sanctioned wrapper over the raw std primitives that
// clippy.toml bans everywhere else; it must name them to wrap them.
#![allow(clippy::disallowed_types)]

use std::fmt;
use std::mem::ManuallyDrop;
use std::sync::{LockResult, PoisonError};
use std::time::Duration;

use crate::lockorder;

#[cfg(simsched)]
use crate::sched;

/// Lazily-assigned stable resource id (mutex/condvar/atomic), `const`-safe.
struct ResourceId(std::sync::OnceLock<u64>);

impl ResourceId {
    const fn new() -> ResourceId {
        ResourceId(std::sync::OnceLock::new())
    }

    fn get(&self, label: Option<&'static str>) -> u64 {
        *self.0.get_or_init(|| {
            let id = crate::next_resource_id();
            if let Some(label) = label {
                crate::registry::register(id, label);
            }
            id
        })
    }
}

/// A mutual-exclusion lock with the `std::sync::Mutex` API plus a stable
/// id, an optional diagnostic label, lock-order recording, and (under
/// `--cfg simsched`) model-checker scheduling points.
pub struct Mutex<T: ?Sized> {
    label: Option<&'static str>,
    id: ResourceId,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create an unlabeled mutex (shows as `lock#N` in diagnostics).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            label: None,
            id: ResourceId::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Create a mutex carrying a diagnostic label — lock-order reports and
    /// checker traces render it as `label#N`.
    pub const fn labeled(value: T, label: &'static str) -> Mutex<T> {
        Mutex {
            label: Some(label),
            id: ResourceId::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub(crate) fn resource_id(&self) -> u64 {
        self.id.get(self.label)
    }

    /// Acquire the lock, blocking until available. Mirrors
    /// [`std::sync::Mutex::lock`], including poisoning semantics.
    #[inline]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        #[cfg(simsched)]
        if sched::in_model() {
            return self.lock_model();
        }
        if lockorder::enabled() {
            return self.lock_recorded();
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard::new(self, g, false)),
            Err(p) => Err(PoisonError::new(MutexGuard::new(
                self,
                p.into_inner(),
                false,
            ))),
        }
    }

    /// Attempt the lock without blocking. Mirrors
    /// [`std::sync::Mutex::try_lock`] except that under the model checker a
    /// `try_lock` is a scheduling point like any other acquisition.
    #[inline]
    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, std::sync::TryLockError<()>> {
        #[cfg(simsched)]
        if sched::in_model() {
            // Under the checker, whether `try_lock` wins is a scheduling
            // decision; modeling it as a full acquisition keeps exploration
            // sound (it only removes the "failed try" interleavings).
            return self.lock_model().map_err(|_| std::sync::TryLockError::Poisoned(
                PoisonError::new(()),
            ));
        }
        let recorded = lockorder::enabled();
        if recorded {
            lockorder::acquiring(self.resource_id());
        }
        match self.inner.try_lock() {
            Ok(g) => Ok(MutexGuard::new(self, g, recorded)),
            Err(e) => {
                if recorded {
                    lockorder::released(self.resource_id());
                }
                match e {
                    std::sync::TryLockError::Poisoned(p) => {
                        drop(p);
                        Err(std::sync::TryLockError::Poisoned(PoisonError::new(())))
                    }
                    std::sync::TryLockError::WouldBlock => {
                        Err(std::sync::TryLockError::WouldBlock)
                    }
                }
            }
        }
    }

    /// Cold path: acquisition with the lock-order recorder on.
    #[cold]
    fn lock_recorded(&self) -> LockResult<MutexGuard<'_, T>> {
        let id = self.resource_id();
        lockorder::acquiring(id);
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard::new(self, g, true)),
            Err(p) => Err(PoisonError::new(MutexGuard::new(self, p.into_inner(), true))),
        }
    }

    /// Model-checked acquisition: park at a scheduling point until the
    /// checker grants this lock, then take the (now uncontended) inner lock.
    #[cfg(simsched)]
    fn lock_model(&self) -> LockResult<MutexGuard<'_, T>> {
        let id = self.resource_id();
        let recorded = lockorder::enabled();
        if recorded {
            lockorder::acquiring(id);
        }
        sched::yield_op(sched::Op::Lock { mutex: id });
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard::new(self, g, recorded)),
            Err(p) => Err(PoisonError::new(MutexGuard::new(
                self,
                p.into_inner(),
                recorded,
            ))),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &&self.inner).finish()
    }
}

/// RAII guard for [`Mutex`]; releases on drop (recording the release when
/// the lock-order recorder captured the acquisition).
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    recorded: bool,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn new(
        lock: &'a Mutex<T>,
        inner: std::sync::MutexGuard<'a, T>,
        recorded: bool,
    ) -> MutexGuard<'a, T> {
        MutexGuard {
            lock,
            inner: ManuallyDrop::new(inner),
            recorded,
        }
    }

    /// Disassemble without running `Drop` — used by [`Condvar::wait`] which
    /// must hand the raw `std` guard to the OS wait primitive.
    fn into_parts(mut self) -> (&'a Mutex<T>, std::sync::MutexGuard<'a, T>, bool) {
        let lock = self.lock;
        let recorded = self.recorded;
        // SAFETY: `self` is forgotten immediately after the take, so the
        // ManuallyDrop slot is never read (or dropped) again.
        let inner = unsafe { ManuallyDrop::take(&mut self.inner) };
        std::mem::forget(self);
        (lock, inner, recorded)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: drop runs at most once; `inner` was initialized in `new`
        // and is never taken out except by `into_parts`, which forgets
        // `self` so this Drop does not run.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        #[cfg(simsched)]
        if sched::in_model() {
            sched::op_unlock(self.lock.resource_id());
        }
        if self.recorded {
            lockorder::released(self.lock.resource_id());
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Result of a [`Condvar::wait_timeout`]: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with the `std::sync::Condvar` API. Under the model
/// checker, waits and notifications are scheduling points, waiting threads
/// are tracked explicitly, and `wait_timeout`'s timeout becomes an
/// exploration choice — or is disabled entirely in *strict* mode, where a
/// protocol that leans on a timeout to paper over a lost wakeup deadlocks
/// and is reported.
pub struct Condvar {
    // Only read under the model checker; passthrough notify/wait never
    // needs the id.
    #[cfg_attr(not(simsched), allow(dead_code))]
    label: Option<&'static str>,
    #[cfg_attr(not(simsched), allow(dead_code))]
    id: ResourceId,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create an unlabeled condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            label: None,
            id: ResourceId::new(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Create a condition variable carrying a diagnostic label.
    pub const fn labeled(label: &'static str) -> Condvar {
        Condvar {
            label: Some(label),
            id: ResourceId::new(),
            inner: std::sync::Condvar::new(),
        }
    }

    #[cfg_attr(not(simsched), allow(dead_code))]
    fn resource_id(&self) -> u64 {
        self.id.get(self.label)
    }

    /// Block until notified. Mirrors [`std::sync::Condvar::wait`].
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        #[cfg(simsched)]
        if sched::in_model() {
            return Ok(self.wait_model(guard, false).0);
        }
        let (lock, inner, recorded) = guard.into_parts();
        if recorded {
            // Waiting releases the mutex: the lock-order recorder must not
            // treat locks taken while we sleep as nested under it.
            lockorder::released(lock.resource_id());
        }
        let result = self.inner.wait(inner);
        if recorded {
            lockorder::acquiring(lock.resource_id());
        }
        match result {
            Ok(g) => Ok(MutexGuard::new(lock, g, recorded)),
            Err(p) => Err(PoisonError::new(MutexGuard::new(
                lock,
                p.into_inner(),
                recorded,
            ))),
        }
    }

    /// Block until notified or `timeout` elapses. Mirrors
    /// [`std::sync::Condvar::wait_timeout`].
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        #[cfg(simsched)]
        if sched::in_model() {
            let (g, timed_out) = self.wait_model(guard, true);
            return Ok((g, WaitTimeoutResult { timed_out }));
        }
        let (lock, inner, recorded) = guard.into_parts();
        if recorded {
            lockorder::released(lock.resource_id());
        }
        let result = self.inner.wait_timeout(inner, timeout);
        if recorded {
            lockorder::acquiring(lock.resource_id());
        }
        match result {
            Ok((g, t)) => Ok((
                MutexGuard::new(lock, g, recorded),
                WaitTimeoutResult {
                    timed_out: t.timed_out(),
                },
            )),
            Err(p) => {
                let (g, t) = p.into_inner();
                Err(PoisonError::new((
                    MutexGuard::new(lock, g, recorded),
                    WaitTimeoutResult {
                        timed_out: t.timed_out(),
                    },
                )))
            }
        }
    }

    /// Wake one waiting thread (under the checker: the longest-waiting).
    #[inline]
    pub fn notify_one(&self) {
        #[cfg(simsched)]
        if sched::in_model() {
            sched::yield_op(sched::Op::NotifyOne {
                condvar: self.resource_id(),
            });
            return;
        }
        self.inner.notify_one();
    }

    /// Wake every waiting thread.
    #[inline]
    pub fn notify_all(&self) {
        #[cfg(simsched)]
        if sched::in_model() {
            sched::yield_op(sched::Op::NotifyAll {
                condvar: self.resource_id(),
            });
            return;
        }
        self.inner.notify_all();
    }

    /// Model-checked wait: release at a scheduling point, park as a tracked
    /// waiter, and resume (re-acquiring) when the checker delivers a
    /// notification — or a timeout/spurious wake, when the exploration
    /// config allows those transitions.
    #[cfg(simsched)]
    fn wait_model<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        has_timeout: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let cv = self.resource_id();
        let (lock, inner, recorded) = guard.into_parts();
        let mutex = lock.resource_id();
        if recorded {
            lockorder::released(mutex);
        }
        sched::yield_op(sched::Op::CvWait {
            condvar: cv,
            mutex,
            has_timeout,
        });
        // The checker has marked the mutex released; physically release it
        // before parking so the next grantee's uncontended-lock invariant
        // holds.
        drop(inner);
        let timed_out = sched::block_on_condvar(cv);
        if recorded {
            lockorder::acquiring(mutex);
        }
        let g = lock
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (MutexGuard::new(lock, g, recorded), timed_out)
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

pub mod atomic {
    //! Shimmed atomics. Passthrough in normal builds (`#[inline]` delegates,
    //! no gate at all — `fetch_sub` on the pool's `remaining` counter stays
    //! a bare `lock xadd`); scheduling points under the model checker.

    pub use std::sync::atomic::Ordering;

    #[cfg(simsched)]
    use crate::sched;

    #[cfg(simsched)]
    use super::ResourceId;

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Shimmed atomic: `std` passthrough normally, a scheduling
            /// point per operation under the model checker.
            pub struct $name {
                inner: $std,
                #[cfg(simsched)]
                id: ResourceId,
            }

            impl $name {
                /// Create a new atomic.
                pub const fn new(v: $prim) -> $name {
                    $name {
                        inner: <$std>::new(v),
                        #[cfg(simsched)]
                        id: ResourceId::new(),
                    }
                }

                #[cfg(simsched)]
                fn yield_point(&self, read_only: bool) {
                    if sched::in_model() {
                        sched::yield_op(sched::Op::Atomic {
                            resource: self.id.get(None),
                            read_only,
                        });
                    }
                }

                /// Atomic load.
                #[inline]
                pub fn load(&self, order: Ordering) -> $prim {
                    #[cfg(simsched)]
                    self.yield_point(true);
                    self.inner.load(order)
                }

                /// Atomic store.
                #[inline]
                pub fn store(&self, v: $prim, order: Ordering) {
                    #[cfg(simsched)]
                    self.yield_point(false);
                    self.inner.store(v, order)
                }

                /// Atomic swap.
                #[inline]
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    #[cfg(simsched)]
                    self.yield_point(false);
                    self.inner.swap(v, order)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    macro_rules! shim_atomic_int {
        ($name:ident, $std:ty, $prim:ty) => {
            shim_atomic!($name, $std, $prim);

            impl $name {
                /// Atomic add; returns the previous value.
                #[inline]
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    #[cfg(simsched)]
                    self.yield_point(false);
                    self.inner.fetch_add(v, order)
                }

                /// Atomic subtract; returns the previous value.
                #[inline]
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    #[cfg(simsched)]
                    self.yield_point(false);
                    self.inner.fetch_sub(v, order)
                }
            }
        };
    }

    shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    shim_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    shim_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    shim_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
}
