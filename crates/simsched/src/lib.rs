//! `simsched` — the concurrency-soundness layer for the RAJAPerf-rs host
//! runtime.
//!
//! The suite's measurement substrate — the work-stealing pool in
//! `vendor/rayon`, the `caliper::trace` event rings, `simfault`'s scope
//! publication — is hand-rolled shared-state code. Campaigns only mean
//! something if that substrate is sound, so this crate gives it the same
//! systematic rigor `simsan` gave the simulated device:
//!
//! 1. **A synchronization shim** ([`sync`], [`time`], [`thread`]):
//!    drop-in wrappers for `std::sync::{Mutex, Condvar}`, the common
//!    atomics, `Instant`, and `thread::spawn`. In a normal build they are
//!    `#[inline]` passthroughs to `std` (the only addition is one relaxed
//!    atomic load on `Mutex::lock` gating the lock-order recorder — the
//!    same zero-cost-off discipline as `simsan`/`trace`/`simfault`).
//!    Compiled with `--cfg simsched`, every lock/wait/notify/atomic op of a
//!    thread running inside a model check is routed through the recording
//!    scheduler instead.
//!
//! 2. **A bounded model checker** ([`check`], behind `--cfg simsched`):
//!    loom/shuttle-style stateless exploration. The threads of a test body
//!    run as real OS threads, but exactly one is runnable at a time; at
//!    every shim operation the running thread parks and the scheduler picks
//!    the next thread per the current schedule. Schedules are explored by
//!    depth-first search with *sleep-set pruning* (commuting independent
//!    operations are not re-explored) and *context-switch bounding*
//!    (preemptions per schedule are capped), or sampled by a seeded
//!    deterministic random walk — seedable and replayable like `simfault`.
//!    Deadlocks (which is how a lost wakeup surfaces when condvar timeouts
//!    are modeled strictly) are reported with every thread's pending
//!    operation and the schedule that led there.
//!
//! 3. **A lock-order deadlock analyzer** ([`lockorder`], available in every
//!    build): while enabled, `Mutex` acquisitions feed a happens-before
//!    lock-acquisition graph; a cycle means two call paths take the same
//!    locks in opposite orders — a *potential* deadlock even if this run
//!    got lucky (TSan's deadlock detector shape). Each edge stores both
//!    acquisition backtraces and the kernel/region label active at
//!    acquisition time, and each discovery emits a `simsched.*` trace
//!    instant so cycles land on the event timeline.
//!
//! # Known gaps
//!
//! The checker explores sequentially-consistent interleavings only: relaxed
//! /acquire/release distinctions are not modeled (loom models them; we
//! document the gap and lean on Miri for per-access UB). `notify_one`
//! deterministically wakes the longest-waiting thread rather than branching
//! over all waiters. Scheduling points exist only at shim operations, so
//! code that synchronizes through raw `std` primitives is invisible — which
//! is exactly what the clippy `disallowed-types` gate forbids in the
//! instrumented modules.

pub mod lockorder;
pub mod sync;
pub mod thread;
pub mod time;

#[cfg(simsched)]
pub mod sched;

#[cfg(simsched)]
pub use sched::{check, Checker, Failure, Mode, Report};

use std::sync::atomic::{AtomicU64, Ordering};

/// Stable ids for every shim resource (mutexes, condvars, atomics), handed
/// out lazily on first use so `const fn new` stays const.
pub(crate) fn next_resource_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

// The registry guards the shim's own metadata; routing it through the
// shim would recurse.
#[allow(clippy::disallowed_types)]
pub(crate) mod registry {
    //! id → human label registry shared by the lock-order analyzer and the
    //! checker's failure reports.

    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    fn labels() -> &'static Mutex<HashMap<u64, &'static str>> {
        static LABELS: OnceLock<Mutex<HashMap<u64, &'static str>>> = OnceLock::new();
        LABELS.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub(crate) fn register(id: u64, label: &'static str) {
        labels()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, label);
    }

    /// Render a resource as `label#id` (or `lock#id` when unlabeled).
    pub(crate) fn describe(id: u64) -> String {
        let map = labels()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match map.get(&id) {
            Some(l) => format!("{l}#{id}"),
            None => format!("lock#{id}"),
        }
    }
}

/// Hook type for [`set_instant_sink`]: receives `simsched.*` event names.
pub type InstantSink = fn(name: &str);

/// Hook type for [`set_context_provider`]: returns the current execution
/// context label (the suite installs the innermost open Caliper region, so
/// lock-order findings carry kernel/region attribution).
pub type ContextProvider = fn() -> Option<String>;

// Fn-pointer hooks so simsched never depends on caliper (caliper depends on
// simsched). Plain atomics hold them: fn pointers are word-sized.
static INSTANT_SINK: AtomicU64 = AtomicU64::new(0);
static CONTEXT_PROVIDER: AtomicU64 = AtomicU64::new(0);

/// Register (or clear) the sink that receives `simsched.*` instant events —
/// the suite wires this to `caliper::trace::instant_event` so lock-order
/// discoveries land on the PR 4 event timeline.
pub fn set_instant_sink(sink: Option<InstantSink>) {
    INSTANT_SINK.store(sink.map_or(0, |f| f as usize as u64), Ordering::Release);
}

/// Register (or clear) the provider of the current kernel/region label used
/// to attribute lock-order edges.
pub fn set_context_provider(provider: Option<ContextProvider>) {
    CONTEXT_PROVIDER.store(provider.map_or(0, |f| f as usize as u64), Ordering::Release);
}

pub(crate) fn emit_instant(name: &str) {
    let raw = INSTANT_SINK.load(Ordering::Acquire);
    if raw != 0 {
        // SAFETY: the only writer is `set_instant_sink`, which stores either
        // 0 or a valid `InstantSink` fn pointer; fn pointers are never
        // deallocated, so any nonzero value read here is callable.
        let f: InstantSink = unsafe { std::mem::transmute::<usize, InstantSink>(raw as usize) };
        f(name);
    }
}

pub(crate) fn current_context() -> Option<String> {
    let raw = CONTEXT_PROVIDER.load(Ordering::Acquire);
    if raw != 0 {
        // SAFETY: as in `emit_instant` — the only nonzero values stored are
        // valid `ContextProvider` fn pointers.
        let f: ContextProvider =
            unsafe { std::mem::transmute::<usize, ContextProvider>(raw as usize) };
        f()
    } else {
        None
    }
}
