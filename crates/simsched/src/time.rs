//! Shimmed monotonic clock.
//!
//! [`Instant`] is a `std::time::Instant` passthrough in normal builds. Under
//! the model checker real time would make runs irreproducible (and a
//! `wait_timeout` would actually sleep), so inside a [`crate::check`] body
//! `Instant::now` reads a *virtual clock* instead: a per-run counter bumped
//! on every read, deterministic for a given schedule. One tick renders as
//! 100ns so trace timestamps stay strictly monotonic and visually distinct.

use std::time::Duration;

/// Nanoseconds per virtual-clock tick under the model checker.
#[cfg(simsched)]
const NANOS_PER_TICK: u64 = 100;

/// Shimmed monotonic instant; mirrors the `std::time::Instant` subset the
/// instrumented crates use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Instant {
    #[cfg(not(simsched))]
    inner: std::time::Instant,
    #[cfg(simsched)]
    repr: Repr,
}

#[cfg(simsched)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Repr {
    Real(std::time::Instant),
    /// Virtual tick inside a model-checked run.
    Virtual(u64),
}

impl Instant {
    /// The current instant (virtual inside a model-checked run).
    #[inline]
    pub fn now() -> Instant {
        #[cfg(simsched)]
        {
            if crate::sched::in_model() {
                return Instant {
                    repr: Repr::Virtual(crate::sched::virtual_now()),
                };
            }
            // The shim is the one sanctioned wrapper around the raw clock.
            #[allow(clippy::disallowed_methods)]
            Instant {
                repr: Repr::Real(std::time::Instant::now()),
            }
        }
        #[cfg(not(simsched))]
        {
            // The shim is the one sanctioned wrapper around the raw clock.
            #[allow(clippy::disallowed_methods)]
            Instant {
                inner: std::time::Instant::now(),
            }
        }
    }

    /// Time elapsed since this instant was captured.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    /// Time between `earlier` and this instant; zero if `earlier` is later
    /// (matching `saturating_duration_since`, which is what every caller in
    /// this workspace wants from `duration_since` anyway).
    #[inline]
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.saturating_duration_since(earlier)
    }

    /// Time between `earlier` and this instant, zero if `earlier` is later.
    #[inline]
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        #[cfg(simsched)]
        {
            match (self.repr, earlier.repr) {
                (Repr::Real(a), Repr::Real(b)) => a.saturating_duration_since(b),
                (Repr::Virtual(a), Repr::Virtual(b)) => {
                    Duration::from_nanos(a.saturating_sub(b) * NANOS_PER_TICK)
                }
                // Mixed real/virtual instants (captured across a model-run
                // boundary) have no meaningful distance.
                _ => Duration::ZERO,
            }
        }
        #[cfg(not(simsched))]
        {
            self.inner.saturating_duration_since(earlier.inner)
        }
    }
}
