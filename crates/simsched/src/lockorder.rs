//! Runtime lock-order deadlock analyzer (the TSan deadlock-detector shape).
//!
//! While enabled, every shim [`crate::sync::Mutex`] acquisition records an
//! edge `H -> A` for each lock `H` the thread already holds: "somewhere, `A`
//! is acquired while holding `H`". A cycle in that graph means two call
//! paths take the same locks in opposite orders — a *potential* deadlock
//! even if this particular run never interleaved them fatally, which is
//! exactly why a passing test run is not evidence of absence.
//!
//! Each edge stores, from its first observation: the backtrace of the
//! acquisition that was *holding* `H`, the backtrace of the acquisition of
//! `A`, the thread name, and the kernel/region context supplied by the
//! [`crate::set_context_provider`] hook (the suite wires this to the
//! innermost open Caliper region). Cycle discovery emits a
//! `simsched.lockorder.cycle` instant through [`crate::set_instant_sink`] so
//! findings land on the event-trace timeline next to the kernel that
//! triggered them.
//!
//! Cost model: one relaxed atomic load per `Mutex::lock` when disabled
//! (the shim's only overhead); when enabled, a backtrace capture per
//! acquisition — this is an opt-in diagnostic mode (`--lock-order`), not a
//! measurement mode, and the report says so.

use std::backtrace::Backtrace;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
// The analyzer's own tables can't go through the shim they instrument.
#[allow(clippy::disallowed_types)]
use std::sync::{Mutex, OnceLock, PoisonError};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether acquisition recording is on. One relaxed load; this is the gate
/// `Mutex::lock` checks on its fast path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start recording lock acquisitions into the order graph.
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Stop recording. The graph and any discovered cycles are kept until
/// [`reset`] so a report can still be rendered.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Drop the recorded graph, cycles, and per-thread state from past runs.
pub fn reset() {
    let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
    g.edges.clear();
    g.adj.clear();
    g.cycles.clear();
}

thread_local! {
    /// Locks this thread currently holds, in acquisition order, each with
    /// the backtrace of its acquisition.
    static HELD: std::cell::RefCell<Vec<(u64, Arc<Backtrace>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// One observed "acquired `to` while holding `from`" relation.
struct Edge {
    /// Backtrace of the acquisition that was holding `from`.
    from_stack: Arc<Backtrace>,
    /// Backtrace of the acquisition of `to`.
    to_stack: Arc<Backtrace>,
    /// Thread name at first observation.
    thread: String,
    /// Kernel/region context at first observation, via the context hook.
    context: Option<String>,
    /// How many times this ordering was observed.
    count: u64,
}

/// A discovered cycle: the edge chain `n0 -> n1 -> ... -> n0`.
struct Cycle {
    nodes: Vec<u64>,
}

#[derive(Default)]
struct Graph {
    edges: HashMap<(u64, u64), Edge>,
    adj: HashMap<u64, HashSet<u64>>,
    cycles: Vec<Cycle>,
}

// The analyzer's own state must sit on a raw std mutex: recording an
// acquisition of a shim mutex from inside the recorder would recurse.
#[allow(clippy::disallowed_types)]
fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

/// Record that the current thread is acquiring `id`. Called by the shim
/// (only when [`enabled`], or unconditionally inside a model-checked run).
pub(crate) fn acquiring(id: u64) {
    let stack = Arc::new(Backtrace::force_capture());
    let held: Vec<(u64, Arc<Backtrace>)> =
        HELD.with(|h| h.borrow().iter().map(|(i, s)| (*i, Arc::clone(s))).collect());
    // Count cycles found under the graph lock, emit the trace instants
    // after releasing it: the instant sink typically leads back into shim
    // mutexes (the trace ring), whose recording would re-enter this graph
    // lock — a self-deadlock in the deadlock detector.
    let mut new_cycles = 0usize;
    if !held.is_empty() {
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        for (from, from_stack) in &held {
            if *from == id {
                // Recursive re-acquisition attempt of the same lock is a
                // self-deadlock with std mutexes, but it is the OS lock's
                // problem to surface; the order graph tracks distinct locks.
                continue;
            }
            let is_new = match g.edges.get_mut(&(*from, id)) {
                Some(e) => {
                    e.count += 1;
                    false
                }
                None => {
                    g.edges.insert(
                        (*from, id),
                        Edge {
                            from_stack: Arc::clone(from_stack),
                            to_stack: Arc::clone(&stack),
                            thread: std::thread::current()
                                .name()
                                .unwrap_or("<unnamed>")
                                .to_string(),
                            context: crate::current_context(),
                            count: 1,
                        },
                    );
                    g.adj.entry(*from).or_default().insert(id);
                    true
                }
            };
            if is_new {
                if let Some(cycle) = find_cycle(&g, id, *from) {
                    let mut nodes = vec![*from];
                    nodes.extend(cycle);
                    let known = g.cycles.iter().any(|c| same_cycle(&c.nodes, &nodes));
                    if !known {
                        g.cycles.push(Cycle { nodes });
                        new_cycles += 1;
                    }
                }
            }
        }
    }
    for _ in 0..new_cycles {
        crate::emit_instant("simsched.lockorder.cycle");
    }
    HELD.with(|h| h.borrow_mut().push((id, stack)));
}

/// Record that the current thread released `id`. Tolerates releases with no
/// matching recorded acquisition (recorder enabled mid-critical-section).
pub(crate) fn released(id: u64) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|(i, _)| *i == id) {
            held.remove(pos);
        }
    });
}

/// DFS from `start` looking for `target` along recorded edges; returns the
/// node path `start .. target` if a path exists (which, together with the
/// just-inserted `target -> start` edge, closes a cycle).
fn find_cycle(g: &Graph, start: u64, target: u64) -> Option<Vec<u64>> {
    let mut stack = vec![(start, vec![start])];
    let mut visited = HashSet::new();
    while let Some((node, path)) = stack.pop() {
        if node == target {
            return Some(path);
        }
        if !visited.insert(node) {
            continue;
        }
        if let Some(nexts) = g.adj.get(&node) {
            let mut nexts: Vec<u64> = nexts.iter().copied().collect();
            nexts.sort_unstable();
            for n in nexts {
                if !visited.contains(&n) {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push((n, p));
                }
            }
        }
    }
    None
}

/// Two node sequences describe the same cycle if one is a rotation of the
/// other (cycles have no canonical starting node).
fn same_cycle(a: &[u64], b: &[u64]) -> bool {
    if a.len() != b.len() || a.is_empty() {
        return a.len() == b.len();
    }
    (0..a.len()).any(|r| (0..a.len()).all(|i| a[(r + i) % a.len()] == b[i]))
}

/// Number of distinct lock-order cycles discovered so far.
pub fn cycle_count() -> usize {
    graph()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .cycles
        .len()
}

/// Render the full report: every discovered cycle with, per edge, the
/// observation count, thread, kernel/region context, and both acquisition
/// backtraces. `None` when no cycle was found.
pub fn report() -> Option<String> {
    let g = graph().lock().unwrap_or_else(PoisonError::into_inner);
    if g.cycles.is_empty() {
        return None;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simsched lock-order analysis: {} potential deadlock cycle(s) detected",
        g.cycles.len()
    );
    for (ci, cycle) in g.cycles.iter().enumerate() {
        let chain = cycle
            .nodes
            .iter()
            .chain(cycle.nodes.first())
            .map(|id| crate::registry::describe(*id))
            .collect::<Vec<_>>()
            .join(" -> ");
        let _ = writeln!(out, "\ncycle {}: {}", ci + 1, chain);
        for i in 0..cycle.nodes.len() {
            let from = cycle.nodes[i];
            let to = cycle.nodes[(i + 1) % cycle.nodes.len()];
            let Some(e) = g.edges.get(&(from, to)) else {
                continue;
            };
            let _ = writeln!(
                out,
                "  edge {} -> {} (observed {}x, thread `{}`{})",
                crate::registry::describe(from),
                crate::registry::describe(to),
                e.count,
                e.thread,
                match &e.context {
                    Some(c) => format!(", context `{c}`"),
                    None => String::new(),
                },
            );
            let _ = writeln!(
                out,
                "    holding {} acquired at:\n{}",
                crate::registry::describe(from),
                indent(&format!("{}", e.from_stack), 6)
            );
            let _ = writeln!(
                out,
                "    acquiring {} at:\n{}",
                crate::registry::describe(to),
                indent(&format!("{}", e.to_stack), 6)
            );
        }
    }
    Some(out)
}

fn indent(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
