//! The recording scheduler and bounded model checker (`--cfg simsched`).
//!
//! Loom/shuttle-style stateless exploration. The body passed to [`check`]
//! runs repeatedly; its threads are real OS threads, but exactly one is
//! runnable at a time: every shim operation parks the thread at a
//! *scheduling point* and a controller (on the test thread) picks which
//! pending operation executes next. A schedule is the sequence of those
//! picks; the explorer enumerates schedules depth-first, replaying a prefix
//! and branching at the deepest decision with untried alternatives.
//!
//! Two standard reductions keep the space tractable:
//!
//! - **Sleep sets** (Godefroid): after exploring transition `a` at a state,
//!   sibling branches need not re-explore `b` first when `a` and `b` are
//!   independent (different threads, no shared resource, or both read-only
//!   atomic ops) — the `b;a` ordering commutes with the already-explored
//!   `a;b`.
//! - **Preemption bounding** (CHESS): schedules with more than N
//!   *involuntary* context switches (switching away from a thread that
//!   could have continued) are not explored. Most real concurrency bugs
//!   need very few preemptions; N=2 is the classic sweet spot.
//!
//! Condvar timeouts are a modeling choice: in **strict** mode (default) a
//! `wait_timeout` never times out, so a protocol that leans on its timeout
//! to recover from a lost wakeup deadlocks — and the deadlock is reported
//! with every thread's pending operation. In **lenient** mode
//! ([`Checker::timeouts`]) a timeout is one more explorable transition.
//!
//! Determinism: for a fixed body, bounds, and seed, exploration order and
//! every reported schedule are reproducible — same discipline as
//! `simfault`.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
// The scheduler's own handshake state cannot go through the shim it drives.
#[allow(clippy::disallowed_types)]
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex};

pub(crate) type Tid = usize;

/// A pending shim operation — the label on a scheduling point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// First slice of a newly spawned thread.
    Begin,
    Lock {
        mutex: u64,
    },
    CvWait {
        condvar: u64,
        mutex: u64,
        has_timeout: bool,
    },
    NotifyOne {
        condvar: u64,
    },
    NotifyAll {
        condvar: u64,
    },
    Atomic {
        resource: u64,
        read_only: bool,
    },
    Spawn,
    Join {
        target: Tid,
    },
}

#[derive(Clone, Debug)]
enum Status {
    /// Parked at a scheduling point with a pending operation.
    AtYield(Op),
    /// Granted; executing user code until the next scheduling point.
    Running,
    /// Parked inside `Condvar::wait*`, tracked as a waiter.
    BlockedCv {
        condvar: u64,
        mutex: u64,
        has_timeout: bool,
    },
    Finished,
}

struct ThreadState {
    status: Status,
    name: String,
    /// Set when this thread's last condvar wake was a timeout.
    timed_out: bool,
    /// Timeout/spurious wakes consumed this run (bounded by the checker's
    /// budget, or lenient-mode exploration would never terminate: a waiter
    /// could time out, re-wait, and time out forever).
    wake_budget_used: usize,
}

struct RunState {
    threads: Vec<ThreadState>,
    /// mutex resource id -> owning thread.
    lock_owner: HashMap<u64, Tid>,
    /// condvar resource id -> FIFO of blocked waiters.
    waiters: HashMap<u64, VecDeque<Tid>>,
    /// Thread allowed to proceed past its park, not yet consumed.
    granted: Option<Tid>,
    /// Set when the controller discards the run; parked threads unwind.
    abandoned: bool,
    /// Virtual clock for `simsched::time::Instant` (bumped per read).
    vclock: u64,
    /// First failure observed (thread panic), recorded by the wrapper.
    failure: Option<Failure>,
    /// Executed transitions, human-readable, for failure reports.
    schedule: Vec<String>,
    last_tid: Option<Tid>,
    preemptions: usize,
}

impl RunState {
    fn new() -> RunState {
        RunState {
            threads: Vec::new(),
            lock_owner: HashMap::new(),
            waiters: HashMap::new(),
            granted: None,
            abandoned: false,
            vclock: 0,
            failure: None,
            schedule: Vec::new(),
            last_tid: None,
            preemptions: 0,
        }
    }

    fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
    }
}

struct RunInner {
    state: StdMutex<RunState>,
    cv: StdCondvar,
}

#[derive(Clone)]
struct SimCtx {
    run: Arc<RunInner>,
    tid: Tid,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<SimCtx>> =
        const { std::cell::RefCell::new(None) };
}

fn current() -> Option<SimCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling thread is running inside a model-checked body. The
/// shim's dispatch test: `false` means passthrough.
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Panic payload used to unwind sim threads when a run is abandoned
/// (deadlock found, branch pruned, or another thread failed).
pub(crate) struct SimAbort;

fn lock_state(run: &RunInner) -> std::sync::MutexGuard<'_, RunState> {
    run.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Park until the controller grants this thread its next slice (or the run
/// is abandoned, in which case unwind with [`SimAbort`]).
fn await_grant(run: &RunInner, tid: Tid) {
    let mut st = lock_state(run);
    loop {
        if st.abandoned {
            drop(st);
            std::panic::panic_any(SimAbort);
        }
        if st.granted == Some(tid) {
            st.granted = None;
            run.cv.notify_all();
            return;
        }
        st = run
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// Park the calling thread at a scheduling point with pending operation
/// `op`; returns when the controller schedules it.
///
/// No-op while the thread is unwinding: drop glue (e.g. a pool joining its
/// workers) runs on the real primitives instead of re-entering the
/// scheduler, because a second `SimAbort` during an abort unwind would be a
/// double panic (process abort). Abandonment has already woken every parked
/// thread, so the real-primitive cleanup cannot block indefinitely.
pub(crate) fn yield_op(op: Op) {
    if std::thread::panicking() {
        return;
    }
    let ctx = current().expect("simsched: yield_op outside a model-checked run");
    {
        let mut st = lock_state(&ctx.run);
        st.threads[ctx.tid].status = Status::AtYield(op);
        ctx.run.cv.notify_all();
    }
    await_grant(&ctx.run, ctx.tid);
}

/// Record a mutex release (not a scheduling point: the release happens
/// inside the running slice; the next decision sees the updated owner map).
pub(crate) fn op_unlock(mutex: u64) {
    // See yield_op: guard drops during an unwind must not re-enter the
    // scheduler.
    if std::thread::panicking() {
        return;
    }
    let ctx = current().expect("simsched: op_unlock outside a model-checked run");
    let mut st = lock_state(&ctx.run);
    st.lock_owner.remove(&mutex);
    ctx.run.cv.notify_all();
}

/// Park as a condvar waiter after the `CvWait` grant (the caller has
/// dropped the real mutex guard). Returns when the re-lock is granted;
/// the return value is whether the wake was a timeout.
pub(crate) fn block_on_condvar(_condvar: u64) -> bool {
    // See yield_op: during an unwind the preceding CvWait yield was a no-op,
    // so no grant is coming — report a spurious (non-timeout) wake and let
    // the caller's predicate loop decide.
    if std::thread::panicking() {
        return false;
    }
    let ctx = current().expect("simsched: condvar block outside a model-checked run");
    await_grant(&ctx.run, ctx.tid);
    let timed_out = lock_state(&ctx.run).threads[ctx.tid].timed_out;
    timed_out
}

/// Bump and read the per-run virtual clock.
pub(crate) fn virtual_now() -> u64 {
    match current() {
        Some(ctx) => {
            let mut st = lock_state(&ctx.run);
            st.vclock += 1;
            st.vclock
        }
        None => 0,
    }
}

/// Register and start a sim thread: a `Spawn` scheduling point, then a new
/// thread slot whose first slice (`Begin`) is granted by the schedule.
pub(crate) fn spawn_sim<F, T>(
    name: Option<String>,
    f: F,
) -> std::io::Result<(Tid, std::thread::JoinHandle<T>)>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = current().expect("simsched: spawn_sim outside a model-checked run");
    yield_op(Op::Spawn);
    let child = {
        let mut st = lock_state(&ctx.run);
        let tid = st.threads.len();
        st.threads.push(ThreadState {
            status: Status::AtYield(Op::Begin),
            name: name.clone().unwrap_or_else(|| format!("sim-{tid}")),
            timed_out: false,
            wake_budget_used: 0,
        });
        ctx.run.cv.notify_all();
        tid
    };
    let run = Arc::clone(&ctx.run);
    let mut b = std::thread::Builder::new();
    if let Some(n) = name {
        b = b.name(n);
    }
    let handle = b.spawn(move || sim_thread_body(run, child, f))?;
    Ok((child, handle))
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn sim_thread_body<T>(run: Arc<RunInner>, tid: Tid, f: impl FnOnce() -> T) -> T {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(SimCtx {
            run: Arc::clone(&run),
            tid,
        })
    });
    // The initial grant wait must sit inside the catch: a run abandoned
    // before this thread's first slice unwinds it with SimAbort, and the
    // thread must still mark itself Finished or the controller would wait
    // for it forever.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        await_grant(&run, tid);
        f()
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let panic_msg = match &result {
        Err(p) if !p.is::<SimAbort>() => Some(panic_message(p.as_ref())),
        _ => None,
    };
    {
        let mut st = lock_state(&run);
        if let Some(msg) = panic_msg {
            if st.failure.is_none() {
                st.failure = Some(Failure::Panic {
                    thread: format!("t{tid}:{}", st.threads[tid].name),
                    message: msg,
                    schedule: st.schedule.clone(),
                });
            }
            st.abandoned = true;
        }
        st.threads[tid].status = Status::Finished;
        run.cv.notify_all();
    }
    match result {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// A schedulable transition at a decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Trans {
    /// Execute thread's pending operation.
    Step(Tid),
    /// Fire a blocked `wait_timeout`'s timeout (lenient mode only).
    Timeout(Tid),
    /// Spuriously wake a blocked waiter (opt-in).
    Spurious(Tid),
}

/// A transition plus its resource signature, for independence tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Cand {
    trans: Trans,
    r1: u64,
    r2: u64,
    /// False only for read-only atomic ops (two reads commute).
    write: bool,
    /// Thread-lifecycle ops (Begin/Spawn/Join) are never treated as
    /// independent — cheap conservatism.
    lifecycle: bool,
}

fn tid_of(c: &Cand) -> Tid {
    match c.trans {
        Trans::Step(t) | Trans::Timeout(t) | Trans::Spurious(t) => t,
    }
}

/// `a` and `b` commute: executing them in either order reaches the same
/// state, and neither disables the other.
fn independent(a: &Cand, b: &Cand) -> bool {
    if tid_of(a) == tid_of(b) || a.lifecycle || b.lifecycle {
        return false;
    }
    let shares = |x: u64| x != 0 && (x == b.r1 || x == b.r2);
    if !shares(a.r1) && !shares(a.r2) {
        return true;
    }
    !a.write && !b.write
}

/// All enabled transitions at a quiescent state, in deterministic order.
fn candidates(st: &RunState, timeouts: bool, spurious: bool, wake_budget: usize) -> Vec<Cand> {
    let mut v = Vec::new();
    for (tid, t) in st.threads.iter().enumerate() {
        match &t.status {
            Status::AtYield(op) => {
                let cand = match *op {
                    Op::Begin | Op::Spawn => Some(Cand {
                        trans: Trans::Step(tid),
                        r1: 0,
                        r2: 0,
                        write: true,
                        lifecycle: true,
                    }),
                    Op::Lock { mutex } => (!st.lock_owner.contains_key(&mutex)).then_some(Cand {
                        trans: Trans::Step(tid),
                        r1: mutex,
                        r2: 0,
                        write: true,
                        lifecycle: false,
                    }),
                    Op::CvWait { condvar, mutex, .. } => Some(Cand {
                        trans: Trans::Step(tid),
                        r1: condvar,
                        r2: mutex,
                        write: true,
                        lifecycle: false,
                    }),
                    Op::NotifyOne { condvar } | Op::NotifyAll { condvar } => Some(Cand {
                        trans: Trans::Step(tid),
                        r1: condvar,
                        r2: 0,
                        write: true,
                        lifecycle: false,
                    }),
                    Op::Atomic { resource, read_only } => Some(Cand {
                        trans: Trans::Step(tid),
                        r1: resource,
                        r2: 0,
                        write: !read_only,
                        lifecycle: false,
                    }),
                    Op::Join { target } => {
                        matches!(st.threads[target].status, Status::Finished).then_some(Cand {
                            trans: Trans::Step(tid),
                            r1: 0,
                            r2: 0,
                            write: true,
                            lifecycle: true,
                        })
                    }
                };
                v.extend(cand);
            }
            Status::BlockedCv {
                condvar,
                has_timeout,
                ..
            } => {
                if *has_timeout && timeouts && t.wake_budget_used < wake_budget {
                    v.push(Cand {
                        trans: Trans::Timeout(tid),
                        r1: *condvar,
                        r2: 0,
                        write: true,
                        lifecycle: false,
                    });
                }
                if spurious && t.wake_budget_used < wake_budget {
                    v.push(Cand {
                        trans: Trans::Spurious(tid),
                        r1: *condvar,
                        r2: 0,
                        write: true,
                        lifecycle: false,
                    });
                }
            }
            Status::Running | Status::Finished => {}
        }
    }
    v
}

fn op_desc(op: &Op) -> String {
    let d = crate::registry::describe;
    match *op {
        Op::Begin => "begin".to_string(),
        Op::Lock { mutex } => format!("lock({})", d(mutex)),
        Op::CvWait {
            condvar,
            mutex,
            has_timeout,
        } => format!(
            "{}({}, releasing {})",
            if has_timeout { "wait_timeout" } else { "wait" },
            d(condvar),
            d(mutex)
        ),
        Op::NotifyOne { condvar } => format!("notify_one({})", d(condvar)),
        Op::NotifyAll { condvar } => format!("notify_all({})", d(condvar)),
        Op::Atomic {
            resource,
            read_only,
        } => format!(
            "atomic-{}({})",
            if read_only { "load" } else { "rmw" },
            d(resource)
        ),
        Op::Spawn => "spawn".to_string(),
        Op::Join { target } => format!("join(t{target})"),
    }
}

/// Move a blocked waiter to the re-lock scheduling point.
fn wake_waiter(st: &mut RunState, w: Tid, timed_out: bool) {
    let Status::BlockedCv { mutex, .. } = st.threads[w].status else {
        unreachable!("simsched: waking a thread that is not blocked on a condvar");
    };
    st.threads[w].timed_out = timed_out;
    st.threads[w].status = Status::AtYield(Op::Lock { mutex });
}

/// Apply a chosen transition's effects; returns its description.
fn apply(st: &mut RunState, cand: &Cand) -> String {
    match cand.trans {
        Trans::Step(tid) => {
            let Status::AtYield(op) = st.threads[tid].status else {
                unreachable!("simsched: granting a thread that is not at a yield point");
            };
            let desc = format!("t{tid}:{} {}", st.threads[tid].name, op_desc(&op));
            match op {
                Op::Lock { mutex } => {
                    st.lock_owner.insert(mutex, tid);
                    st.threads[tid].status = Status::Running;
                }
                Op::CvWait {
                    condvar,
                    mutex,
                    has_timeout,
                } => {
                    st.lock_owner.remove(&mutex);
                    st.waiters.entry(condvar).or_default().push_back(tid);
                    st.threads[tid].status = Status::BlockedCv {
                        condvar,
                        mutex,
                        has_timeout,
                    };
                }
                Op::NotifyOne { condvar } => {
                    // Deterministic: wake the longest-waiting thread (a
                    // documented modeling choice; real condvars may wake
                    // any waiter).
                    let woken = st.waiters.get_mut(&condvar).and_then(VecDeque::pop_front);
                    if let Some(w) = woken {
                        wake_waiter(st, w, false);
                    }
                    st.threads[tid].status = Status::Running;
                }
                Op::NotifyAll { condvar } => {
                    let woken: Vec<Tid> = st
                        .waiters
                        .get_mut(&condvar)
                        .map(std::mem::take)
                        .unwrap_or_default()
                        .into();
                    for w in woken {
                        wake_waiter(st, w, false);
                    }
                    st.threads[tid].status = Status::Running;
                }
                Op::Begin | Op::Spawn | Op::Atomic { .. } | Op::Join { .. } => {
                    st.threads[tid].status = Status::Running;
                }
            }
            desc
        }
        Trans::Timeout(tid) | Trans::Spurious(tid) => {
            let Status::BlockedCv {
                condvar,
                has_timeout,
                ..
            } = st.threads[tid].status
            else {
                unreachable!("simsched: timeout on a thread not blocked on a condvar");
            };
            if let Some(q) = st.waiters.get_mut(&condvar) {
                q.retain(|w| *w != tid);
            }
            st.threads[tid].wake_budget_used += 1;
            let is_timeout = matches!(cand.trans, Trans::Timeout(_)) && has_timeout;
            wake_waiter(st, tid, is_timeout);
            format!(
                "t{tid}:{} {}({})",
                st.threads[tid].name,
                if is_timeout { "timeout" } else { "spurious-wake" },
                crate::registry::describe(condvar)
            )
        }
    }
}

fn quiescent(st: &RunState) -> bool {
    st.granted.is_none()
        && st.threads.iter().all(|t| {
            matches!(
                t.status,
                Status::AtYield(_) | Status::BlockedCv { .. } | Status::Finished
            )
        })
}

fn pending_desc(st: &RunState) -> Vec<String> {
    st.threads
        .iter()
        .enumerate()
        .filter_map(|(tid, t)| match &t.status {
            Status::AtYield(op) => Some(format!(
                "t{tid}:{} blocked at {}",
                t.name,
                op_desc(op)
            )),
            Status::BlockedCv {
                condvar,
                mutex,
                has_timeout,
            } => Some(format!(
                "t{tid}:{} waiting on {} (mutex {}, {})",
                t.name,
                crate::registry::describe(*condvar),
                crate::registry::describe(*mutex),
                if *has_timeout {
                    "wait_timeout, timeouts disabled in strict mode"
                } else {
                    "no timeout"
                }
            )),
            Status::Running => Some(format!("t{tid}:{} running (?)", t.name)),
            Status::Finished => None,
        })
        .collect()
}

/// Why a check failed.
#[derive(Clone, Debug)]
pub enum Failure {
    /// No thread can make progress. The classic lost-wakeup shape: every
    /// runnable op needs a lock someone holds, or every thread is parked on
    /// a condvar nobody will signal.
    Deadlock {
        /// Executed transitions leading to the deadlock.
        schedule: Vec<String>,
        /// Each unfinished thread's pending operation.
        pending: Vec<String>,
    },
    /// A thread panicked (assertion failure in the body counts).
    Panic {
        thread: String,
        message: String,
        schedule: Vec<String>,
    },
    /// A single run exceeded the step bound (livelock guard).
    StepLimit { limit: usize, schedule: Vec<String> },
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Deadlock { schedule, pending } => {
                writeln!(f, "deadlock: no thread can make progress")?;
                for p in pending {
                    writeln!(f, "  {p}")?;
                }
                writeln!(f, "schedule ({} transitions):", schedule.len())?;
                for s in schedule {
                    writeln!(f, "  {s}")?;
                }
                Ok(())
            }
            Failure::Panic {
                thread,
                message,
                schedule,
            } => {
                writeln!(f, "panic in {thread}: {message}")?;
                writeln!(f, "schedule ({} transitions):", schedule.len())?;
                for s in schedule {
                    writeln!(f, "  {s}")?;
                }
                Ok(())
            }
            Failure::StepLimit { limit, schedule } => {
                writeln!(
                    f,
                    "step limit ({limit}) exceeded — possible livelock; last transitions:"
                )?;
                for s in schedule.iter().rev().take(20).rev() {
                    writeln!(f, "  {s}")?;
                }
                Ok(())
            }
        }
    }
}

/// Outcome of a [`Checker::check`] exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Runs executed (including pruned ones).
    pub schedules: u64,
    /// Total transitions executed across all runs.
    pub transitions: u64,
    /// Runs abandoned by sleep-set pruning (their interleavings are covered
    /// by sibling branches).
    pub pruned: u64,
    /// True when the exploration exhausted the bounded space (exhaustive
    /// mode, no failure, schedule cap not hit).
    pub complete: bool,
    /// First failure found, if any; exploration stops at the first.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panic with the rendered failure if the exploration found one.
    pub fn assert_ok(&self) {
        if let Some(fail) = &self.failure {
            panic!(
                "simsched: model check failed after {} schedule(s):\n{fail}",
                self.schedules
            );
        }
    }

    /// The failure, panicking if the check unexpectedly passed.
    pub fn expect_failure(&self) -> &Failure {
        self.failure
            .as_ref()
            .expect("simsched: expected the model check to fail, but it passed")
    }
}

/// Exploration strategy.
#[derive(Clone, Copy, Debug)]
pub enum Mode {
    /// Depth-first enumeration of all schedules within the bounds.
    Exhaustive,
    /// Seeded deterministic random walk: `iterations` independent runs.
    Random { seed: u64, iterations: u64 },
}

/// Builder for a bounded model check.
#[derive(Clone, Debug)]
pub struct Checker {
    preemption_bound: Option<usize>,
    timeouts: bool,
    spurious: bool,
    wake_budget: usize,
    max_steps: usize,
    max_schedules: u64,
    mode: Mode,
}

impl Default for Checker {
    fn default() -> Checker {
        Checker::new()
    }
}

impl Checker {
    /// Defaults: exhaustive, preemption bound 2, strict timeouts, no
    /// spurious wakes, 10k steps/run, 200k schedules cap.
    pub fn new() -> Checker {
        Checker {
            preemption_bound: Some(2),
            timeouts: false,
            spurious: false,
            wake_budget: 2,
            max_steps: 10_000,
            max_schedules: 200_000,
            mode: Mode::Exhaustive,
        }
    }

    /// Cap involuntary context switches per schedule (`None` = unbounded).
    pub fn preemption_bound(mut self, bound: Option<usize>) -> Checker {
        self.preemption_bound = bound;
        self
    }

    /// Lenient mode: allow `wait_timeout` timeouts as transitions. Strict
    /// mode (the default, `false`) turns a timeout-papered lost wakeup into
    /// a reported deadlock.
    pub fn timeouts(mut self, allow: bool) -> Checker {
        self.timeouts = allow;
        self
    }

    /// Also explore spurious condvar wakeups (off by default; turns an
    /// unguarded `wait` into a found bug even in protocols with no timeout).
    pub fn spurious(mut self, allow: bool) -> Checker {
        self.spurious = allow;
        self
    }

    /// Per-run transition cap (livelock guard).
    pub fn max_steps(mut self, steps: usize) -> Checker {
        self.max_steps = steps;
        self
    }

    /// Total schedule cap; hitting it reports `complete: false`.
    pub fn max_schedules(mut self, cap: u64) -> Checker {
        self.max_schedules = cap;
        self
    }

    /// Cap timeout + spurious wakes per thread per run (default 2). The
    /// bound is what keeps lenient-mode exploration finite; it also means a
    /// protocol whose only recovery is an unbounded retry-on-timeout loop
    /// is reported as a deadlock — bounded checking rightly refuses to
    /// accept "it times out and retries forever" as a liveness argument.
    pub fn wake_budget(mut self, budget: usize) -> Checker {
        self.wake_budget = budget;
        self
    }

    /// Select the exploration strategy.
    pub fn mode(mut self, mode: Mode) -> Checker {
        self.mode = mode;
        self
    }

    /// Explore schedules of `body` until the space is exhausted (within
    /// bounds), a failure is found, or a cap is hit.
    pub fn check<F>(self, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        let mut report = Report {
            schedules: 0,
            transitions: 0,
            pruned: 0,
            complete: false,
            failure: None,
        };
        match self.mode {
            Mode::Exhaustive => {
                let mut frames: Vec<Frame> = Vec::new();
                loop {
                    let outcome = self.execute_run(&body, Some(&mut frames), &mut None, &mut report);
                    report.schedules += 1;
                    match outcome {
                        RunResult::Failed(fail) => {
                            report.failure = Some(fail);
                            break;
                        }
                        RunResult::Completed | RunResult::Pruned => {}
                    }
                    // Backtrack to the deepest decision with an untried
                    // alternative.
                    while let Some(f) = frames.last() {
                        if f.idx + 1 < f.cands.len() {
                            break;
                        }
                        frames.pop();
                    }
                    match frames.last_mut() {
                        Some(f) => f.idx += 1,
                        None => {
                            report.complete = true;
                            break;
                        }
                    }
                    if report.schedules >= self.max_schedules {
                        break;
                    }
                }
            }
            Mode::Random { seed, iterations } => {
                let mut rng = seed_mix(seed);
                for _ in 0..iterations {
                    let outcome = self.execute_run(&body, None, &mut Some(&mut rng), &mut report);
                    report.schedules += 1;
                    if let RunResult::Failed(fail) = outcome {
                        report.failure = Some(fail);
                        break;
                    }
                }
                report.complete = report.failure.is_none();
            }
        }
        report
    }

    /// Drive one run: spawn the root thread, grant transitions per the
    /// replay prefix / DFS / RNG until completion, failure, or prune.
    fn execute_run(
        &self,
        body: &Arc<dyn Fn() + Send + Sync>,
        mut frames: Option<&mut Vec<Frame>>,
        rng: &mut Option<&mut u64>,
        report: &mut Report,
    ) -> RunResult {
        let run = Arc::new(RunInner {
            state: StdMutex::new(RunState::new()),
            cv: StdCondvar::new(),
        });
        lock_state(&run).threads.push(ThreadState {
            status: Status::AtYield(Op::Begin),
            name: "main".to_string(),
            timed_out: false,
            wake_budget_used: 0,
        });
        let root = {
            let run = Arc::clone(&run);
            let body = Arc::clone(body);
            std::thread::Builder::new()
                .name("sim-main".to_string())
                .spawn(move || sim_thread_body(run, 0, move || body()))
                .expect("simsched: failed to spawn model root thread")
        };
        let mut depth = 0usize;
        let mut cur_sleep: HashSet<Cand> = HashSet::new();
        let mut outcome = RunResult::Completed;
        loop {
            let mut st = lock_state(&run);
            while !quiescent(&st) {
                st = run
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if let Some(fail) = st.failure.clone() {
                outcome = RunResult::Failed(fail);
                abandon(&run, st);
                break;
            }
            if st.all_finished() {
                drop(st);
                break;
            }
            if depth >= self.max_steps {
                outcome = RunResult::Failed(Failure::StepLimit {
                    limit: self.max_steps,
                    schedule: st.schedule.clone(),
                });
                abandon(&run, st);
                break;
            }
            let raw = candidates(&st, self.timeouts, self.spurious, self.wake_budget);
            if raw.is_empty() {
                outcome = RunResult::Failed(Failure::Deadlock {
                    schedule: st.schedule.clone(),
                    pending: pending_desc(&st),
                });
                abandon(&run, st);
                break;
            }
            // Preemption bound: once spent, keep scheduling the last thread
            // while it stays enabled.
            let mut pf = raw.clone();
            if let Some(bound) = self.preemption_bound {
                if st.preemptions >= bound {
                    if let Some(lt) = st.last_tid {
                        if raw.iter().any(|c| tid_of(c) == lt) {
                            pf.retain(|c| tid_of(c) == lt);
                        }
                    }
                }
            }
            let chosen: Cand = if let Some(rng) = rng.as_deref_mut() {
                pf[(next_rand(rng) % pf.len() as u64) as usize]
            } else {
                let frames = frames.as_deref_mut().expect("exhaustive mode has frames");
                if depth < frames.len() {
                    // Replay: rebuild the sleep set for the next depth from
                    // this frame's recorded decision.
                    let f = &frames[depth];
                    let chosen = f.cands[f.idx];
                    cur_sleep = advance_sleep(&f.sleep, &f.cands[..f.idx], &chosen);
                    chosen
                } else {
                    let cands: Vec<Cand> = pf
                        .iter()
                        .filter(|c| !cur_sleep.contains(c))
                        .copied()
                        .collect();
                    if cands.is_empty() {
                        // Every enabled transition is asleep: this state's
                        // orderings are covered by sibling branches.
                        report.pruned += 1;
                        outcome = RunResult::Pruned;
                        abandon(&run, st);
                        break;
                    }
                    let chosen = cands[0];
                    frames.push(Frame {
                        cands,
                        idx: 0,
                        sleep: cur_sleep.clone(),
                    });
                    cur_sleep = advance_sleep(&cur_sleep, &[], &chosen);
                    chosen
                }
            };
            let desc = apply(&mut st, &chosen);
            st.schedule.push(desc);
            report.transitions += 1;
            let t = tid_of(&chosen);
            if let Some(lt) = st.last_tid {
                if lt != t && raw.iter().any(|c| tid_of(c) == lt) {
                    st.preemptions += 1;
                }
            }
            st.last_tid = Some(t);
            if let Trans::Step(tid) = chosen.trans {
                st.granted = Some(tid);
            }
            run.cv.notify_all();
            drop(st);
            depth += 1;
        }
        // Reap the root OS thread; abandoned runs unwind with SimAbort.
        let _ = root.join();
        outcome
    }
}

/// Exploration with default bounds: exhaustive DFS, preemption bound 2,
/// strict timeouts.
pub fn check<F>(body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::new().check(body)
}

enum RunResult {
    Completed,
    Pruned,
    Failed(Failure),
}

/// One DFS decision point: the candidates seen there, the branch currently
/// being explored, and the sleep set inherited on arrival.
struct Frame {
    cands: Vec<Cand>,
    idx: usize,
    sleep: HashSet<Cand>,
}

/// Sleep set for the successor state: previously slept + already-tried
/// siblings, minus anything dependent on the executed transition.
fn advance_sleep(base: &HashSet<Cand>, tried: &[Cand], executed: &Cand) -> HashSet<Cand> {
    base.iter()
        .chain(tried.iter())
        .filter(|c| independent(c, executed))
        .copied()
        .collect()
}

/// Discard the rest of a run: parked threads unwind with [`SimAbort`];
/// blocks until every sim thread has finished.
fn abandon(run: &RunInner, mut st: std::sync::MutexGuard<'_, RunState>) {
    st.abandoned = true;
    st.granted = None;
    run.cv.notify_all();
    while !st.all_finished() {
        st = run
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// splitmix64 — same deterministic generator family as `simfault`.
fn seed_mix(seed: u64) -> u64 {
    seed.wrapping_add(0x9e37_79b9_7f4a_7c15)
}

fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Install (once) a panic hook that silences [`SimAbort`] unwinds and
/// panics inside model-checked threads — the checker records and re-reports
/// those itself; the default hook would print one backtrace per explored
/// schedule.
fn install_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<SimAbort>() || in_model() {
                return;
            }
            prev(info);
        }));
    });
}
