//! The seeded ABBA fixture for the lock-order analyzer: two code paths take
//! the same pair of labeled mutexes in opposite orders — *sequentially*, so
//! the test run itself never deadlocks — and the analyzer must still report
//! the potential deadlock, with both acquisition stacks, the thread that
//! recorded each edge, and the Caliper region the suite was inside at the
//! time. This is the end-to-end proof the `--lock-order` diagnostic mode
//! rests on, exercising the full wiring: shim recording hook → order graph →
//! cycle detection → context provider → trace instant sink → report.
//!
//! One test function on purpose: the analyzer's graph is process-global, and
//! a single test keeps this binary's view of it exclusive.

use simsched::sync::Mutex;
use simsched::{lockorder, set_context_provider, set_instant_sink};

#[test]
fn abba_cycle_is_reported_with_both_stacks() {
    // Wire the hooks the way `suite --lock-order` does: region attribution
    // from Caliper, findings onto the event-trace timeline.
    set_context_provider(Some(caliper::current_region_path));
    set_instant_sink(Some(caliper::trace::instant_event));
    caliper::trace::enable();
    lockorder::reset();
    lockorder::enable();

    let x = Mutex::labeled(0u32, "abba-x");
    let y = Mutex::labeled(0u32, "abba-y");

    // Path 1, on a named thread inside a Caliper region: x before y.
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("abba-forward".into())
            .spawn_scoped(scope, || {
                let _r = caliper::region("Stream_TRIAD");
                let _gx = x.lock().unwrap();
                let _gy = y.lock().unwrap();
            })
            .unwrap();
    });
    assert_eq!(lockorder::cycle_count(), 0, "one ordering alone is no cycle");

    // Path 2, after path 1 fully finished (never a real deadlock): y before
    // x. Inserting the reversed edge must close the cycle.
    {
        let _r = caliper::region("Basic_DAXPY");
        let _gy = y.lock().unwrap();
        let _gx = x.lock().unwrap();
    }
    lockorder::disable();

    assert_eq!(lockorder::cycle_count(), 1, "the ABBA pair is one cycle");
    let report = lockorder::report().expect("a cycle renders a report");
    println!("{report}");

    // Both locks named, via their shim labels.
    assert!(report.contains("abba-x") && report.contains("abba-y"), "{report}");
    // Both edges carry both acquisition stacks.
    assert_eq!(
        report.matches("acquired at:").count(),
        2,
        "one holding-stack per edge:\n{report}"
    );
    assert_eq!(
        report.matches(" at:").count(),
        4,
        "holding + acquiring stacks on each of the two edges:\n{report}"
    );
    // Thread and kernel/region attribution on the edges.
    assert!(report.contains("abba-forward"), "{report}");
    assert!(report.contains("Stream_TRIAD"), "{report}");
    assert!(report.contains("Basic_DAXPY"), "{report}");

    // The finding landed on the trace timeline as an instant event.
    caliper::trace::disable();
    let lanes = caliper::trace::snapshot();
    caliper::trace::clear();
    assert!(
        lanes.iter().any(|l| l
            .events
            .iter()
            .any(|e| e.name == "simsched.lockorder.cycle")),
        "cycle discovery emits a simsched.* trace instant"
    );

    // Re-observing the same orderings must not duplicate the cycle.
    lockorder::enable();
    {
        let _gx = x.lock().unwrap();
        let _gy = y.lock().unwrap();
    }
    lockorder::disable();
    assert_eq!(lockorder::cycle_count(), 1, "rotations dedupe");
    lockorder::reset();
}
