//! Bounded model checking of the real `rayon::PoolCore` protocols: the
//! exact pool the suite runs kernels on, built at small widths inside the
//! checker so every lock, condvar wait, and atomic becomes a scheduling
//! point. These models are the soundness argument for the pool's
//! completion (`done`/`done_cv`), shutdown, panic-poisoning, and
//! steal/inject protocols — all in strict mode, where a lost wakeup is a
//! reported deadlock, not a 5ms hiccup.
//!
//! Also here: a deliberately broken variant of the completion protocol
//! (flag set outside the mutex, notify dropped) as a regression test that
//! the checker still catches the class of bug these models exist to
//! prevent.
#![cfg(simsched)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rayon::PoolCore;
use simsched::sync::{Condvar, Mutex};
use simsched::{check, Checker, Failure};

/// Width-2 pool, one parallel call: every chunk runs exactly once and the
/// submitter's completion wait never hangs, in every schedule. Counting
/// uses plain `std` atomics deliberately — they are bookkeeping for the
/// assertion, not part of the protocol under test, and must not add
/// scheduling points.
#[test]
fn pool_executes_chunks_exactly_once() {
    let report = check(|| {
        let pool = PoolCore::new(2);
        let runs = [AtomicUsize::new(0), AtomicUsize::new(0)];
        let items = AtomicUsize::new(0);
        pool.execute(2, 2, 1, &|lo, hi| {
            runs[lo].fetch_add(1, Ordering::Relaxed);
            items.fetch_add(hi - lo, Ordering::Relaxed);
        });
        assert_eq!(runs[0].load(Ordering::Relaxed), 1, "chunk 0 run count");
        assert_eq!(runs[1].load(Ordering::Relaxed), 1, "chunk 1 run count");
        assert_eq!(items.load(Ordering::Relaxed), 2, "total items covered");
        drop(pool);
    });
    report.assert_ok();
    println!(
        "pool width-2 exactly-once: {} schedules, {} pruned, {} transitions",
        report.schedules, report.pruned, report.transitions
    );
}

/// Combine determinism: partial results land in per-chunk slots and are
/// folded in chunk order, so the combined value is identical across every
/// interleaving — the property the iterator layer's reductions rely on.
#[test]
fn pool_combine_is_schedule_independent() {
    let report = check(|| {
        let pool = PoolCore::new(2);
        // Per-chunk result slots, written once each (disjoint indices).
        let slots = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let s = Arc::clone(&slots);
        pool.execute(4, 2, 2, &move |lo, hi| {
            // Weighted sum so a chunk-order mixup changes the answer.
            let part: usize = (lo..hi).map(|i| (i + 1) * (i + 1)).sum();
            s[lo / 2].store(part, Ordering::Relaxed);
        });
        drop(pool);
        let combined = slots[0].load(Ordering::Relaxed) * 1000 + slots[1].load(Ordering::Relaxed);
        // 1+4 = 5 in slot 0, 9+16 = 25 in slot 1, regardless of which
        // thread ran which chunk or in what order.
        assert_eq!(combined, 5025, "combine must not depend on the schedule");
    });
    report.assert_ok();
    println!(
        "pool combine determinism: {} schedules, {} pruned",
        report.schedules, report.pruned
    );
}

/// Shutdown protocol at width 3 (two workers): setting the flag under the
/// injector lock must close the check-then-park race for BOTH idle
/// workers. In strict mode a worker that parks after missing the
/// `notify_all` would be an unwakeable `BlockedCv` thread — a reported
/// deadlock.
#[test]
fn pool_shutdown_wakes_all_idle_workers() {
    let report = check(|| {
        // No work at all: workers go idle immediately, then the drop's
        // shutdown must get both of them out of the idle wait.
        let pool = PoolCore::new(3);
        drop(pool);
    });
    report.assert_ok();
    println!(
        "pool width-3 shutdown: {} schedules, {} pruned, {} transitions",
        report.schedules, report.pruned, report.transitions
    );
}

/// Steal/inject at width 3: two single-chunk segments seeded while two
/// workers race the submitter for them. Every schedule must still run each
/// chunk exactly once and terminate.
#[test]
fn pool_width3_steal_and_inject() {
    let report = Checker::new()
        .preemption_bound(Some(1))
        .check(|| {
            let pool = PoolCore::new(3);
            let runs = [AtomicUsize::new(0), AtomicUsize::new(0)];
            pool.execute(2, 2, 1, &|lo, _hi| {
                runs[lo].fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(runs[0].load(Ordering::Relaxed), 1);
            assert_eq!(runs[1].load(Ordering::Relaxed), 1);
            drop(pool);
        });
    report.assert_ok();
    println!(
        "pool width-3 steal/inject: {} schedules, {} pruned, {} transitions",
        report.schedules, report.pruned, report.transitions
    );
}

/// Panic poisoning: a chunk that panics must poison the job (skipping
/// still-queued chunks' bodies), propagate the payload to the submitter
/// exactly once, and leave the pool reusable — in every schedule.
#[test]
fn pool_panic_poisons_and_rethrows() {
    let report = check(|| {
        let pool = PoolCore::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.execute(2, 2, 1, &|lo, _hi| {
                if lo == 0 {
                    panic!("chunk zero failed");
                }
            });
        }));
        let payload = caught.expect_err("the chunk panic must reach the submitter");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "chunk zero failed");
        // The pool survives a poisoned job: a fresh job runs normally.
        let ran = AtomicUsize::new(0);
        pool.execute(1, 1, 1, &|_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        drop(pool);
    });
    report.assert_ok();
    println!(
        "pool panic poisoning: {} schedules, {} pruned",
        report.schedules, report.pruned
    );
}

/// Regression guard: a broken variant of the pool's completion protocol —
/// the worker sets `done` WITHOUT holding the mutex and never notifies
/// (exactly the bug the `done`/`done_cv` design avoids). Strict mode must
/// report it as a deadlock: the submitter's wait can park after the flag
/// write and nothing ever wakes it. This is the canary that keeps the
/// checker honest about the class of bug the pool models exist to catch.
#[test]
fn broken_completion_protocol_is_caught() {
    let report = check(|| {
        let done = Arc::new((
            Mutex::labeled(false, "broken-pool.done"),
            Condvar::labeled("broken-pool.done_cv"),
        ));
        let flag = Arc::new(simsched::sync::atomic::AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&done), Arc::clone(&flag));
        let worker = simsched::thread::spawn(move || {
            // "Run the chunk", then publish completion the broken way:
            // atomic store instead of a write under the mutex, no notify.
            f2.store(true, simsched::sync::atomic::Ordering::SeqCst);
            let _ = d2; // the mutex/cv pair is never used for the publish
        });
        {
            let mut guard = done.0.lock().unwrap();
            // Submitter-side wait mirroring PoolCore::execute's loop shape,
            // but against the broken publish it can check the atomic, see
            // false, and park forever.
            while !*guard {
                if flag.load(simsched::sync::atomic::Ordering::SeqCst) {
                    break;
                }
                let (g, _) = done
                    .1
                    .wait_timeout(guard, Duration::from_millis(1))
                    .unwrap();
                guard = g;
            }
        }
        worker.join().unwrap();
    });
    match report.expect_failure() {
        Failure::Deadlock { pending, .. } => {
            let joined = pending.join("\n");
            assert!(
                joined.contains("broken-pool"),
                "deadlock report should attribute the broken protocol:\n{joined}"
            );
        }
        other => panic!("expected the lost completion wakeup, got: {other}"),
    }
}
