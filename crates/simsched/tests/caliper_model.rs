//! Model-checked concurrency of the Caliper annotation layer: multiple
//! threads writing into shared [`caliper::Session`] channels, with every
//! session-mutex acquisition a scheduling point. This locks in PR 4's
//! interleaved-session semantics (per-thread region stacks, shared
//! aggregation) under *every* explored interleaving, not just the ones the
//! native stress test happens to hit.
//!
//! The bodies use fresh `Session`s and leave the process-global trace
//! collector off: the checker replays schedule prefixes across runs, and
//! process-global state that survives a run (trace lanes, the default
//! session) would make replayed prefixes diverge. The native stress test in
//! `crates/caliper/tests/` covers the trace-enabled path.
#![cfg(simsched)]

use std::sync::Arc;

use caliper::Session;
use simsched::check;

/// Two threads aggregating into one shared session: per-thread stacks keep
/// nesting private, the shared tree merges visits, and the final counts are
/// schedule-independent.
#[test]
fn shared_session_aggregates_across_threads() {
    let report = check(|| {
        let s = Session::new();
        let s2 = s.clone();
        let t = simsched::thread::spawn(move || {
            let _r = s2.region("worker");
            s2.add_metric("reps", 1.0);
        });
        {
            let _r = s.region("worker");
            s.add_metric("reps", 1.0);
        }
        t.join().unwrap();
        let p = s.profile();
        let rec = p.find("worker").expect("both visits land on one node");
        assert_eq!(rec.metric("count"), Some(2.0), "visits from both threads");
        assert_eq!(rec.metric("sum#reps"), Some(2.0), "metrics from both threads");
    });
    report.assert_ok();
    println!(
        "caliper shared-session model: {} schedules, {} pruned, {} transitions",
        report.schedules, report.pruned, report.transitions
    );
}

/// Two independent sessions driven concurrently — the PR 4 interleaving
/// case, now cross-thread: thread-private stacks must never leak frames
/// between sessions, in any schedule.
#[test]
fn interleaved_sessions_stay_independent() {
    let report = check(|| {
        let a = Arc::new(Session::new());
        let b = Arc::new(Session::new());
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = simsched::thread::spawn(move || {
            // Interleave the two sessions on this thread (each properly
            // nested in itself), as independent Caliper channels may be.
            a2.begin("outer_a");
            b2.begin("outer_b");
            a2.set_metric("in_a", 1.0);
            a2.end("outer_a");
            b2.end("outer_b");
        });
        {
            let _r = b.region("main_b");
        }
        t.join().unwrap();
        let pa = a.profile();
        let pb = b.profile();
        assert!(pa.find("outer_a").is_some());
        assert!(pa.find("outer_b").is_none(), "a never sees b's regions");
        assert!(pb.find("outer_b").is_some());
        assert!(pb.find("main_b").is_some());
        assert_eq!(
            pa.find("outer_a").unwrap().metric("in_a"),
            Some(1.0),
            "metric attaches to a's path even while b has a frame open"
        );
    });
    report.assert_ok();
    println!(
        "caliper interleaved-session model: {} schedules, {} pruned",
        report.schedules, report.pruned
    );
}
