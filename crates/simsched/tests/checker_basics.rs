//! Sanity checks of the model checker itself on small hand-built protocols:
//! races it must find, deadlocks it must report, and determinism it must
//! keep. Only meaningful under `--cfg simsched` (the verify.sh `simsched`
//! stage); in a normal build this file compiles to nothing.
#![cfg(simsched)]

use std::sync::Arc;

use simsched::sync::atomic::{AtomicUsize, Ordering};
use simsched::sync::{Condvar, Mutex};
use simsched::{check, Checker, Failure, Mode};

/// Two threads incrementing under a mutex: no failure, multiple schedules,
/// and the exploration terminates (completeness flag set).
#[test]
fn mutex_counter_is_sound() {
    let report = check(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let c2 = Arc::clone(&counter);
        let t = simsched::thread::spawn(move || {
            *c2.lock().unwrap() += 1;
        });
        *counter.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*counter.lock().unwrap(), 2);
    });
    report.assert_ok();
    assert!(report.complete, "exploration should exhaust the space");
    assert!(
        report.schedules >= 2,
        "lock order must branch: got {} schedule(s)",
        report.schedules
    );
}

/// A torn read-modify-write (load, then store, as separate atomic ops) is a
/// real atomicity bug; the checker must find the interleaving where one
/// increment is lost and surface the body's assertion as a Panic failure.
#[test]
fn finds_lost_update_race() {
    let report = check(|| {
        let v = Arc::new(AtomicUsize::new(0));
        let v2 = Arc::clone(&v);
        let t = simsched::thread::spawn(move || {
            let cur = v2.load(Ordering::SeqCst);
            v2.store(cur + 1, Ordering::SeqCst);
        });
        let cur = v.load(Ordering::SeqCst);
        v.store(cur + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(v.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    let failure = report.expect_failure();
    assert!(
        matches!(failure, Failure::Panic { message, .. } if message.contains("lost")),
        "expected the lost-update assertion, got: {failure}"
    );
}

/// The classic ABBA ordering: the checker must drive both threads between
/// their two acquisitions and report the deadlock with both pending locks.
#[test]
fn finds_abba_deadlock() {
    let report = check(|| {
        let a = Arc::new(Mutex::labeled((), "abba-a"));
        let b = Arc::new(Mutex::labeled((), "abba-b"));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = simsched::thread::spawn(move || {
            let _b = b2.lock().unwrap();
            let _a = a2.lock().unwrap();
        });
        {
            let _a = a.lock().unwrap();
            let _b = b.lock().unwrap();
        }
        t.join().unwrap();
    });
    match report.expect_failure() {
        Failure::Deadlock { pending, .. } => {
            let joined = pending.join("\n");
            assert!(
                joined.contains("abba-a") && joined.contains("abba-b"),
                "deadlock report should name both locks:\n{joined}"
            );
        }
        other => panic!("expected a deadlock, got: {other}"),
    }
}

/// Strict mode turns a lost wakeup into a deadlock: the setter flips the
/// flag but never notifies, so the waiter's `wait_timeout` — whose timeout
/// transitions are disabled — can never be woken.
#[test]
fn strict_mode_catches_dropped_notify() {
    fn body() {
        let pair = Arc::new((Mutex::labeled(false, "dropped-notify-flag"), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = simsched::thread::spawn(move || {
            // Deliberately broken: flag set under the lock, notify dropped.
            *p2.0.lock().unwrap() = true;
        });
        {
            let (flag, cv) = (&pair.0, &pair.1);
            let mut guard = flag.lock().unwrap();
            while !*guard {
                let (g, _) = cv
                    .wait_timeout(guard, std::time::Duration::from_millis(5))
                    .unwrap();
                guard = g;
            }
        }
        t.join().unwrap();
    }
    let strict = Checker::new().check(body);
    assert!(
        matches!(strict.failure, Some(Failure::Deadlock { .. })),
        "strict mode must report the dropped notify as a deadlock: {:?}",
        strict.failure.map(|f| f.to_string())
    );
    // Lenient mode explores timeout wakes, but they are budgeted: a
    // protocol whose only recovery is retry-on-timeout-forever is still
    // reported (the schedule where the budget runs out before the flag
    // flips is a deadlock). Bounded checking refuses unbounded-retry
    // liveness arguments.
    let lenient = Checker::new().timeouts(true).check(body);
    assert!(
        matches!(lenient.failure, Some(Failure::Deadlock { .. })),
        "lenient mode must still reject the timeout-papered protocol: {:?}",
        lenient.failure.map(|f| f.to_string())
    );
}

/// A notify-correct protocol stays sound in lenient mode too: timeout
/// transitions fire in some schedules, the predicate loop re-waits, and the
/// guaranteed notify finishes the job.
#[test]
fn guarded_wait_survives_lenient_timeouts() {
    let report = Checker::new().timeouts(true).check(|| {
        let pair = Arc::new((Mutex::labeled(false, "lenient-flag"), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = simsched::thread::spawn(move || {
            *p2.0.lock().unwrap() = true;
            p2.1.notify_all();
        });
        {
            let mut guard = pair.0.lock().unwrap();
            while !*guard {
                let (g, _) = pair
                    .1
                    .wait_timeout(guard, std::time::Duration::from_millis(5))
                    .unwrap();
                guard = g;
            }
        }
        t.join().unwrap();
    });
    report.assert_ok();
    assert!(report.complete);
}

/// A predicate-guarded wait with a notify under the lock is sound in strict
/// mode — the baseline the pool's done/done_cv protocol must meet.
#[test]
fn guarded_wait_with_notify_is_sound() {
    let report = check(|| {
        let pair = Arc::new((Mutex::labeled(false, "guarded-flag"), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = simsched::thread::spawn(move || {
            *p2.0.lock().unwrap() = true;
            p2.1.notify_all();
        });
        {
            let mut guard = pair.0.lock().unwrap();
            while !*guard {
                guard = pair.1.wait(guard).unwrap();
            }
        }
        t.join().unwrap();
    });
    report.assert_ok();
    assert!(report.complete);
}

/// An unguarded wait (no predicate loop) is broken even with the notify
/// present: if the setter runs first, the notification is lost before the
/// waiter parks. Strict mode reports the deadlock.
#[test]
fn unguarded_wait_is_caught() {
    let report = check(|| {
        let pair = Arc::new((Mutex::labeled(false, "unguarded-flag"), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = simsched::thread::spawn(move || {
            *p2.0.lock().unwrap() = true;
            p2.1.notify_all();
        });
        {
            // Deliberately broken: waits unconditionally, no predicate.
            let guard = pair.0.lock().unwrap();
            let _guard = pair.1.wait(guard).unwrap();
        }
        t.join().unwrap();
    });
    assert!(
        matches!(report.failure, Some(Failure::Deadlock { .. })),
        "unguarded wait must deadlock in some schedule: {:?}",
        report.failure.map(|f| f.to_string())
    );
}

/// Seeded random mode is deterministic: same seed, same exploration.
#[test]
fn random_mode_is_deterministic() {
    fn run(seed: u64) -> (u64, u64) {
        let report = Checker::new()
            .mode(Mode::Random {
                seed,
                iterations: 50,
            })
            .check(|| {
                let counter = Arc::new(Mutex::new(0u32));
                let c2 = Arc::clone(&counter);
                let t = simsched::thread::spawn(move || {
                    *c2.lock().unwrap() += 1;
                });
                *counter.lock().unwrap() += 1;
                t.join().unwrap();
            });
        report.assert_ok();
        (report.schedules, report.transitions)
    }
    assert_eq!(run(0xC0FFEE), run(0xC0FFEE));
}

/// Sleep sets must prune commuting interleavings: two threads touching
/// disjoint mutexes have no meaningful orderings, so the explored schedule
/// count stays small and some runs are pruned.
#[test]
fn sleep_sets_prune_independent_ops() {
    let report = check(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let b2 = Arc::clone(&b);
        let t = simsched::thread::spawn(move || {
            *b2.lock().unwrap() += 1;
        });
        *a.lock().unwrap() += 1;
        t.join().unwrap();
    });
    report.assert_ok();
    assert!(report.complete);
    println!(
        "disjoint-locks model: {} schedules, {} pruned, {} transitions",
        report.schedules, report.pruned, report.transitions
    );
}
