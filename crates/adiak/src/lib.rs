//! Adiak-style run metadata collection.
//!
//! [Adiak](https://github.com/LLNL/Adiak) is LLNL's small library for
//! annotating per-run metadata (user, launch date, build settings, the
//! programming-model variant being run, ...). Profiling tools such as Caliper
//! read the registered name/value pairs and embed them as *globals* in every
//! profile they write, so downstream analysis (Thicket) can group and filter
//! runs by their metadata.
//!
//! This crate reproduces that model: a process-wide, thread-safe registry of
//! typed name/value pairs organized by [`Category`]. The `caliper` crate
//! snapshots the registry when writing a profile.
//!
//! # Example
//! ```
//! adiak::init();
//! adiak::value("variant", "RAJA_Seq");
//! adiak::value("problem_size", 1_000_000i64);
//! adiak::value_categorized("launch_overhead_us", 3.5, adiak::Category::Performance);
//! let snap = adiak::snapshot();
//! assert_eq!(snap.get("variant").unwrap().as_str(), Some("RAJA_Seq"));
//! ```

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// A typed metadata value.
///
/// Mirrors the value kinds Adiak supports (scalars, strings, timestamps and
/// lists). `Value` serializes to natural JSON so profiles remain readable by
/// generic tooling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Signed integer (Adiak `int`/`long`).
    Int(i64),
    /// Floating-point value (Adiak `double`).
    Double(f64),
    /// String value (Adiak `string`/`catstring`/`path`/`version`).
    Str(String),
    /// Homogeneous or heterogeneous list of values.
    List(Vec<Value>),
}

impl Value {
    /// Returns the contained string, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained integer, if this is a [`Value::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained double, widening from `Int` if necessary.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the contained bool, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

/// Metadata category, mirroring Adiak's category constants.
///
/// Categories let tools subscribe to subsets of the metadata (e.g. a
/// performance dashboard may only want [`Category::Performance`] entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// General run description (default).
    General,
    /// Performance-related metadata.
    Performance,
    /// Control variables (problem size, tuning knobs).
    Control,
    /// System/environment description.
    System,
}

/// A single registered metadata entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// The metadata value.
    pub value: Value,
    /// The category it was registered under.
    pub category: Category,
}

/// An immutable snapshot of the registry, name → entry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot(pub BTreeMap<String, Entry>);

impl Snapshot {
    /// Look up a value by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.0.get(name).map(|e| &e.value)
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.0.iter().map(|(k, e)| (k.as_str(), &e.value))
    }

    /// Entries restricted to one category.
    pub fn in_category(&self, cat: Category) -> impl Iterator<Item = (&str, &Value)> {
        self.0
            .iter()
            .filter(move |(_, e)| e.category == cat)
            .map(|(k, e)| (k.as_str(), &e.value))
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Entry>> {
    static REG: OnceLock<Mutex<BTreeMap<String, Entry>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Initialize the metadata registry and record a few implicit entries
/// (the Adiak equivalents of `adiak_executable`, `adiak_launchdate`, ...).
///
/// Calling `init` more than once is harmless; implicit entries are refreshed.
pub fn init() {
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".to_string());
    value_categorized("executable", exe, Category::System);
    value_categorized("adiak_version", env!("CARGO_PKG_VERSION"), Category::System);
}

/// Register a metadata value under [`Category::General`].
///
/// Registering the same name twice replaces the previous value, matching
/// Adiak's last-writer-wins behaviour.
pub fn value(name: &str, v: impl Into<Value>) {
    value_categorized(name, v, Category::General);
}

/// Register a metadata value under an explicit category.
pub fn value_categorized(name: &str, v: impl Into<Value>, category: Category) {
    registry().lock().insert(
        name.to_string(),
        Entry {
            value: v.into(),
            category,
        },
    );
}

/// Take an immutable snapshot of the current registry contents.
pub fn snapshot() -> Snapshot {
    Snapshot(registry().lock().clone())
}

/// Remove every registered entry. Primarily useful between logical "runs"
/// inside one process (a single RAJAPerf execution produces one profile, so
/// the driver clears metadata before configuring the next run).
pub fn clear() {
    registry().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests share it, so each test uses
    // distinct key names.

    #[test]
    fn register_and_read_back_scalars() {
        value("t1_str", "hello");
        value("t1_int", 42i64);
        value("t1_dbl", 2.5f64);
        value("t1_bool", true);
        let s = snapshot();
        assert_eq!(s.get("t1_str").unwrap().as_str(), Some("hello"));
        assert_eq!(s.get("t1_int").unwrap().as_i64(), Some(42));
        assert_eq!(s.get("t1_dbl").unwrap().as_f64(), Some(2.5));
        assert_eq!(s.get("t1_bool").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn last_writer_wins() {
        value("t2_k", 1i64);
        value("t2_k", 2i64);
        assert_eq!(snapshot().get("t2_k").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn lists_roundtrip() {
        value("t3_list", vec![1i64, 2, 3]);
        let s = snapshot();
        match s.get("t3_list").unwrap() {
            Value::List(v) => assert_eq!(v.len(), 3),
            other => panic!("expected list, got {other:?}"),
        }
    }

    #[test]
    fn categories_filter() {
        value_categorized("t4_perf", 1.0f64, Category::Performance);
        value_categorized("t4_gen", 1.0f64, Category::General);
        let s = snapshot();
        let perf: Vec<_> = s.in_category(Category::Performance).collect();
        assert!(perf.iter().any(|(k, _)| *k == "t4_perf"));
        assert!(!perf.iter().any(|(k, _)| *k == "t4_gen"));
    }

    #[test]
    fn init_records_executable() {
        init();
        let s = snapshot();
        assert!(s.get("executable").is_some());
        assert!(s.get("adiak_version").is_some());
    }

    #[test]
    fn int_widens_to_f64() {
        value("t5_i", 7i64);
        assert_eq!(snapshot().get("t5_i").unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn json_roundtrip() {
        value("t6_k", 3.25f64);
        let s = snapshot();
        let js = serde_json::to_string(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&js).unwrap();
        assert_eq!(back.get("t6_k").unwrap().as_f64(), Some(3.25));
    }
}
