//! Experiment harness support: shared helpers for the per-figure/table
//! binaries in `src/bin/` and the Criterion benches in `benches/`.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md's experiment index): it prints the same rows/series the paper
//! reports and writes a machine-readable copy under
//! `target/experiments/` (override with `RAJAPERF_EXPERIMENT_DIR`).

use std::io::Write;
use std::path::PathBuf;

/// Write `content` into the experiment directory under `name`, returning
/// the path. Errors are reported but not fatal (the printed output is the
/// primary artifact).
pub fn save_output(name: &str, content: &str) -> Option<PathBuf> {
    let path = suite::experiment_dir().join(name);
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(content.as_bytes())) {
        Ok(()) => {
            eprintln!("[saved {}]", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: could not save {}: {e}", path.display());
            None
        }
    }
}

/// Format a speedup column the way the paper's figures annotate them.
pub fn fmt_speedup(s: f64) -> String {
    if s >= 10.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.2}")
    }
}

/// A crude fixed-width horizontal bar for terminal "figures".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let frac = if max > 0.0 { (value / max).clamp(0.0, 1.0) } else { 0.0 };
    let n = (frac * width as f64).round() as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(22.648), "22.6");
        assert_eq!(fmt_speedup(1.4286), "1.43");
    }
}
