//! Scalability study (§II-C item 1): strong- and weak-scaling predictions
//! for representative kernels on the SPR-DDR machine model.

use perfmodel::{scaling, Machine, MachineId};
use suite::simulate::NODE_PROBLEM_SIZE;

fn main() {
    let m = Machine::get(MachineId::SprDdr);
    let ranks = [14usize, 28, 56, 112];
    let mut out = String::new();
    out.push_str("Strong scaling on SPR-DDR (fixed 32M problem):\n");
    for name in [
        "Stream_TRIAD",
        "Algorithm_REDUCE_SUM",
        "Basic_PI_ATOMIC",
        "Basic_MAT_MAT_SHARED",
        "Comm_HALO_EXCHANGE",
    ] {
        let kernel = kernels::find(name).unwrap();
        let sig = kernel.signature(NODE_PROBLEM_SIZE);
        out.push_str(&format!("  {name}\n    {:>6} {:>12} {:>9} {:>11}\n", "ranks", "time (s)", "speedup", "efficiency"));
        for p in scaling::strong_scaling(&m, &sig, &ranks) {
            out.push_str(&format!(
                "    {:>6} {:>11.3e} {:>9.2} {:>11.2}\n",
                p.ranks, p.time_s, p.speedup, p.efficiency
            ));
        }
    }
    out.push_str("\nWeak scaling on SPR-DDR (per-rank size fixed at 32M/112):\n");
    for name in ["Stream_TRIAD", "Basic_MAT_MAT_SHARED"] {
        let kernel = kernels::find(name).unwrap();
        let sig = kernel.signature(NODE_PROBLEM_SIZE / 112);
        out.push_str(&format!("  {name}\n"));
        for p in scaling::weak_scaling(&m, &sig, &ranks) {
            out.push_str(&format!(
                "    {:>6} {:>11.3e} {:>11.2}\n",
                p.ranks, p.time_s, p.efficiency
            ));
        }
    }
    out.push_str(
        "\nReading: bandwidth and compute kernels scale near-ideally with their\n\
         resource shares; launch/MPI-bound kernels (HALO_EXCHANGE) and serialized\n\
         atomics flatten early — the scalability axis of §II-C.\n",
    );
    print!("{out}");
    rajaperf_bench::save_output("study_scaling.txt", &out);
}
