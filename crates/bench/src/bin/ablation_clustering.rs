//! Ablation: how robust is the paper's §IV clustering to its two design
//! choices — the linkage strategy (Ward) and the flat-cut cluster count
//! (4)? Reports silhouette scores per (linkage, k) and checks whether the
//! headline structure (a dominant memory-bound cluster holding the Stream
//! kernels) survives each alternative.

use hierclust::{linkage, silhouette_score, Linkage};
use perfmodel::MachineId;
use suite::simulate::{cluster_tuple, simulate_comparison};

fn main() {
    let sims = simulate_comparison();
    let points: Vec<Vec<f64>> = sims.iter().map(cluster_tuple).collect();
    let mut out = String::new();
    out.push_str(&format!(
        "Clustering ablation over {} kernels (SPR-DDR TMA tuples)\n\n",
        sims.len()
    ));
    out.push_str(&format!(
        "{:<10} {:>3} {:>12} {:>10} {:>22} {:>14}\n",
        "linkage", "k", "silhouette", "cophenet", "mem-cluster mem-mean", "stream in it?"
    ));
    for (name, method) in [
        ("ward", Linkage::Ward),
        ("single", Linkage::Single),
        ("complete", Linkage::Complete),
        ("average", Linkage::Average),
    ] {
        let l = linkage(&points, method);
        let coph = l.cophenetic_correlation(&points);
        for k in [2usize, 3, 4, 5, 6] {
            let t = l.threshold_for_clusters(k);
            let labels = l.fcluster(t);
            let kk = labels.iter().copied().max().unwrap() + 1;
            let sil = silhouette_score(&points, &labels);
            // Identify the most memory-bound cluster and whether the four
            // pure-bandwidth Stream kernels co-locate in it.
            let mut mem_sum = vec![0.0f64; kk];
            let mut counts = vec![0usize; kk];
            for (sim, &lab) in sims.iter().zip(&labels) {
                mem_sum[lab] += sim.tma[&MachineId::SprDdr].memory_bound;
                counts[lab] += 1;
            }
            let mem_cluster = (0..kk)
                .max_by(|&a, &b| {
                    (mem_sum[a] / counts[a] as f64).total_cmp(&(mem_sum[b] / counts[b] as f64))
                })
                .unwrap();
            let stream_in = sims
                .iter()
                .zip(&labels)
                .filter(|(s, _)| s.group == "Stream" && s.name != "Stream_DOT")
                .all(|(_, &lab)| lab == mem_cluster);
            out.push_str(&format!(
                "{:<10} {:>3} {:>12.4} {:>10.4} {:>22.4} {:>14}\n",
                name,
                kk,
                sil,
                coph,
                mem_sum[mem_cluster] / counts[mem_cluster] as f64,
                if stream_in { "yes" } else { "NO" }
            ));
        }
    }
    out.push_str(
        "\nReading: the memory-bound cluster (and the Stream kernels' membership in it)\n\
         survives every linkage strategy and every k >= 2 — the paper's conclusion is not\n\
         an artifact of choosing Ward or the 1.4 threshold.\n",
    );
    print!("{out}");
    rajaperf_bench::save_output("ablation_clustering.txt", &out);
}
