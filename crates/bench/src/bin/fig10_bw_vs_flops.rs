//! Regenerates Fig. 10: achieved memory bandwidth vs achieved FLOPS per
//! kernel on each of the four machines, the above/below-diagonal
//! classification, the 17 FLOP-heavy kernels on SPR-DDR (§V-D), and the
//! >10 TFLOPS callouts on EPYC-MI250X.

use perfmodel::MachineId;
use suite::simulate::simulate_all;

fn main() {
    let sims = simulate_all();
    let mut out = String::new();
    let mut rows = Vec::new();
    for id in MachineId::all() {
        out.push_str(&format!("--- {} ---\n", id.shorthand()));
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>10}\n",
            "Kernel", "GB/s", "GFLOP/s", "side"
        ));
        for sim in &sims {
            let bw = sim.bandwidth[&id];
            let fl = sim.flops[&id];
            // The dashed diagonal: FLOPS == bytes/s (1 flop per byte).
            let side = if fl > bw { "FLOPS" } else { "memory" };
            out.push_str(&format!(
                "{:<28} {:>12.1} {:>12.1} {:>10}\n",
                sim.name,
                bw / 1e9,
                fl / 1e9,
                side
            ));
            rows.push(serde_json::json!({
                "machine": id.shorthand(), "kernel": sim.name, "group": sim.group,
                "bandwidth_gbs": bw / 1e9, "flops_gfs": fl / 1e9, "side": side,
            }));
        }
        out.push('\n');
    }

    let flop_heavy: Vec<&str> = sims
        .iter()
        .filter(|s| s.flops[&MachineId::SprDdr] > s.bandwidth[&MachineId::SprDdr])
        .map(|s| s.name.as_str())
        .collect();
    out.push_str(&format!(
        "FLOP-heavy kernels on SPR-DDR (above the diagonal): {} kernels (paper: 17)\n  {}\n",
        flop_heavy.len(),
        flop_heavy.join(", ")
    ));
    let callouts: Vec<String> = sims
        .iter()
        .filter(|s| s.flops[&MachineId::EpycMi250x] > 10e12)
        .map(|s| format!("{} ({:.1} GFLOPS)", s.name, s.flops[&MachineId::EpycMi250x] / 1e9))
        .collect();
    out.push_str(&format!(
        "\nEPYC-MI250X kernels above 10 TFLOPS (paper calls out 4: MAT_MAT_SHARED 13326.4, \
         EDGE3D 84113.3, VOL3D 11259.0, DIFFUSION3DPA 14974.5):\n  {}\n",
        callouts.join(", ")
    ));
    print!("{out}");
    rajaperf_bench::save_output("fig10_bw_vs_flops.txt", &out);
    rajaperf_bench::save_output(
        "fig10_bw_vs_flops.json",
        &serde_json::to_string_pretty(&rows).unwrap(),
    );
}
