//! Regenerates Figs. 3 and 4: the per-kernel top-down (TMA) breakdown on
//! the CPU systems. Pass `ddr` (Fig. 3, default) or `hbm` (Fig. 4).

use perfmodel::MachineId;
use suite::simulate::simulate_all;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "ddr".into());
    let (machine, fig) = match arg.as_str() {
        "hbm" => (MachineId::SprHbm, "fig4"),
        _ => (MachineId::SprDdr, "fig3"),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "Top-down metrics on {} (stacked to 1.0)\n",
        machine.shorthand()
    ));
    out.push_str(&format!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}   memory-bound bar\n",
        "Kernel", "FE", "BadSpec", "Retire", "Core", "Memory"
    ));
    let mut rows = Vec::new();
    for sim in simulate_all() {
        let Some(t) = sim.tma.get(&machine) else { continue };
        out.push_str(&format!(
            "{:<28} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}   {}\n",
            sim.name,
            t.frontend_bound,
            t.bad_speculation,
            t.retiring,
            t.core_bound,
            t.memory_bound,
            rajaperf_bench::bar(t.memory_bound, 1.0, 30),
        ));
        rows.push(serde_json::json!({
            "kernel": sim.name, "group": sim.group,
            "frontend_bound": t.frontend_bound, "bad_speculation": t.bad_speculation,
            "retiring": t.retiring, "core_bound": t.core_bound, "memory_bound": t.memory_bound,
        }));
    }
    print!("{out}");
    rajaperf_bench::save_output(&format!("{fig}_topdown_{}.txt", machine.shorthand()), &out);
    rajaperf_bench::save_output(
        &format!("{fig}_topdown_{}.json", machine.shorthand()),
        &serde_json::to_string_pretty(&rows).unwrap(),
    );
}
