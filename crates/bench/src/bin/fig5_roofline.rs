//! Regenerates Fig. 5: the instruction roofline on the P9-V100 system,
//! one section per cache level (L1, L2, HBM), with the per-level ceilings
//! and each kernel's (intensity, warp GIPS) point.

use perfmodel::{roofline, CacheLevel, Machine, MachineId};
use suite::simulate::roofline_all;

fn main() {
    let machine = MachineId::P9V100;
    let m = Machine::get(machine);
    let c = roofline::ceilings(&m);
    let points = roofline_all(machine);
    let mut out = String::new();
    out.push_str(&format!(
        "Instruction roofline, {} (node aggregate)\n",
        machine.shorthand()
    ));
    out.push_str(&format!(
        "ceilings: peak {:.1} warp GIPS; L1 {:.1} / L2 {:.1} / HBM {:.1} GTXN/s\n\n",
        c.peak_warp_gips, c.l1_gtxn_s, c.l2_gtxn_s, c.hbm_gtxn_s
    ));
    let mut rows = Vec::new();
    for (li, level) in CacheLevel::all().into_iter().enumerate() {
        out.push_str(&format!("--- {} cache instruction roofline ---\n", level.name()));
        out.push_str(&format!(
            "{:<28} {:<10} {:>14} {:>12} {:>10} {:>10}\n",
            "Kernel", "Group", "Intensity", "Warp GIPS", "GTXN/s", "Bound"
        ));
        for (name, group, levels) in &points {
            let p = &levels[li];
            let bound = if roofline::is_bandwidth_limited(&c, p) {
                "memory"
            } else {
                "compute"
            };
            out.push_str(&format!(
                "{:<28} {:<10} {:>14.4} {:>12.2} {:>10.2} {:>10}\n",
                name, group, p.intensity, p.warp_gips, p.gtxn_s, bound
            ));
            rows.push(serde_json::json!({
                "kernel": name, "group": group, "level": level.name(),
                "intensity": p.intensity, "warp_gips": p.warp_gips,
                "gtxn_s": p.gtxn_s, "bound": bound,
            }));
        }
        out.push('\n');
    }
    print!("{out}");
    rajaperf_bench::save_output("fig5_roofline.txt", &out);
    rajaperf_bench::save_output(
        "fig5_roofline.json",
        &serde_json::to_string_pretty(&rows).unwrap(),
    );
}
