//! Regenerates Table I: the kernel inventory — groups, programming-model
//! coverage, RAJA features, and complexity annotations.

use kernels::{Feature, PaperModel};

fn main() {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:<10} {:<7} {:<30} {:<28} {:>8}\n",
        "Kernel", "Group", "Cmplx", "Paper models", "Features", "Variants"
    ));
    let mut per_group: std::collections::BTreeMap<&str, usize> = Default::default();
    for k in kernels::registry() {
        let info = k.info();
        *per_group.entry(info.group.name()).or_default() += 1;
        let models: Vec<&str> = info
            .paper_models
            .iter()
            .map(|m| match m {
                PaperModel::Seq => "Seq",
                PaperModel::OpenMp => "OMP",
                PaperModel::OmpTarget => "OMPT",
                PaperModel::Cuda => "CUDA",
                PaperModel::Hip => "HIP",
                PaperModel::Sycl => "SYCL",
                PaperModel::Kokkos => "Kokkos",
            })
            .collect();
        let feats: Vec<&str> = info
            .features
            .iter()
            .map(|f| match f {
                Feature::Forall => "forall",
                Feature::Kernel => "kernel",
                Feature::Sort => "sort",
                Feature::Scan => "scan",
                Feature::Reduction => "reduct",
                Feature::Atomic => "atomic",
                Feature::View => "view",
                Feature::Workgroup => "workgrp",
                Feature::Mpi => "mpi",
            })
            .collect();
        out.push_str(&format!(
            "{:<28} {:<10} {:<7} {:<30} {:<28} {:>8}\n",
            info.name,
            info.group.name(),
            info.complexity.label(),
            models.join(","),
            feats.join(","),
            info.variants.len(),
        ));
    }
    out.push_str("\nGroup totals (Table I census):\n");
    for (g, n) in &per_group {
        out.push_str(&format!("  {g:<12} {n}\n"));
    }
    out.push_str(&format!(
        "  {:<12} {}\n",
        "TOTAL",
        per_group.values().sum::<usize>()
    ));
    print!("{out}");
    rajaperf_bench::save_output("table1_inventory.txt", &out);
}
