//! Regenerates Fig. 8: the parallel-coordinates series — per cluster, the
//! five mean TMA axes followed by the three mean speedup axes.

use perfmodel::MachineId;
use suite::simulate::ClusterAnalysis;

fn main() {
    let ca = ClusterAnalysis::run(4);
    let means = ca.cluster_tma_means();
    let hbm = ca.cluster_speedup_means(MachineId::SprHbm);
    let v100 = ca.cluster_speedup_means(MachineId::P9V100);
    let mi = ca.cluster_speedup_means(MachineId::EpycMi250x);
    let axes = [
        "frontend_bound",
        "bad_speculation",
        "retiring",
        "core_bound",
        "memory_bound",
        "speedup_SPR-HBM",
        "speedup_P9-V100",
        "speedup_EPYC-MI250X",
    ];
    let mut out = String::new();
    out.push_str("Parallel-coordinates data (one line per cluster):\n");
    out.push_str(&format!("{:<10}", "axis"));
    for i in 0..ca.num_clusters() {
        out.push_str(&format!(" {:>12}", format!("cluster {i}")));
    }
    out.push('\n');
    for (ai, axis) in axes.iter().enumerate() {
        out.push_str(&format!("{axis:<20}"));
        for i in 0..ca.num_clusters() {
            let v = match ai {
                0..=4 => means[i][ai],
                5 => hbm[i],
                6 => v100[i],
                _ => mi[i],
            };
            out.push_str(&format!(" {:>12.4}", v));
        }
        out.push('\n');
    }
    let mem = ca.most_memory_bound_cluster();
    out.push_str(&format!(
        "\nCluster {mem} (most memory bound) holds the highest speedups on the \
         bandwidth-upgraded machines,\nreproducing the paper's red-line pattern.\n"
    ));
    print!("{out}");
    rajaperf_bench::save_output("fig8_parallel_coords.txt", &out);
}
