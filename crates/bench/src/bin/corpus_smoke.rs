//! Corpus-scale smoke for the columnar Thicket engine, wired into
//! `scripts/verify.sh`: synthesize ~50k profiles, stream them through the
//! incremental ingester, run the parallel groupby + stats path, extract
//! per-profile features and cluster them, and enforce a CI-scaled
//! wall-clock budget (same convention as `latency_budget.rs`).
//!
//! Every aggregate folds into a deterministic FNV digest printed on the
//! last line; verify.sh runs the binary under `RAYON_NUM_THREADS=1` and
//! `=4` and diffs the digests, proving the parallel aggregation is
//! bitwise-deterministic across thread widths.
//!
//! ```text
//! corpus_smoke [N_PROFILES]    # default 50000
//! ```

use std::collections::BTreeMap;
use std::time::Duration;
use thicket::{IngestSession, ProfileData, Stat};

const VARIANTS: [&str; 6] = [
    "Base_Seq",
    "Lambda_Seq",
    "RAJA_Seq",
    "Base_SimGpu",
    "Lambda_SimGpu",
    "RAJA_SimGpu",
];
const FAMILIES: [&str; 2] = ["Stream", "Basic"];
const KERNELS_PER_FAMILY: usize = 2;
const METRICS: [&str; 2] = ["avg#time.duration", "Bytes/Rep"];

/// SplitMix64: deterministic synthetic metric values.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// One synthetic profile, shaped like a sweep cell's Caliper export.
fn synth_profile(i: usize) -> ProfileData {
    let mut s = 0x5EED_0000u64 ^ (i as u64);
    let mut globals = BTreeMap::new();
    globals.insert(
        "variant".to_string(),
        serde_json::Value::String(VARIANTS[i % VARIANTS.len()].to_string()),
    );
    globals.insert(
        "gpu_block_size".to_string(),
        serde_json::Value::from((64u64 << (i % 4)) as f64),
    );
    let mut records = Vec::new();
    for family in FAMILIES {
        for k in 0..KERNELS_PER_FAMILY {
            let mut metrics = BTreeMap::new();
            for m in METRICS {
                metrics.insert(m.to_string(), unit(&mut s) * 1e-3);
            }
            records.push((
                vec!["RAJAPerf".to_string(), format!("{family}_K{k}")],
                metrics,
            ));
        }
    }
    ProfileData { globals, records }
}

/// Budget scaling, the repo's performance-test convention: shared CI
/// runners are noisy (3×) and debug builds run unoptimized (10×).
fn scaled(base: Duration) -> Duration {
    let mut budget = base;
    if std::env::var("CI").is_ok_and(|v| v == "true" || v == "1") {
        budget *= 3;
    }
    if cfg!(debug_assertions) {
        budget *= 10;
    }
    budget
}

/// Fold a 64-bit word into the running FNV-1a digest.
fn fold(digest: &mut u64, word: u64) {
    for b in word.to_le_bytes() {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fold_str(digest: &mut u64, s: &str) {
    for b in s.as_bytes() {
        *digest ^= *b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("N_PROFILES must be an integer"))
        .unwrap_or(50_000);
    let budget = scaled(Duration::from_secs(120));
    let mut digest = 0xCBF2_9CE4_8422_2325u64;

    // Wall-clock by design: this smoke exists to catch order-of-magnitude
    // engine regressions, which a virtual clock would hide.
    #[allow(clippy::disallowed_methods)]
    let t0 = std::time::Instant::now();

    // 1. Streaming ingest through the incremental session.
    let mut session = IngestSession::new();
    for i in 0..n {
        session.ingest(&synth_profile(i));
    }
    let tk = session.finish();
    #[allow(clippy::disallowed_methods)]
    let t_ingest = t0.elapsed();
    assert_eq!(tk.profiles.len(), n);
    fold(&mut digest, tk.profiles.len() as u64);
    fold(&mut digest, tk.nodes.len() as u64);

    // 2. Parallel groupby + stats: Mean and Std of both metrics per group.
    #[allow(clippy::disallowed_methods)]
    let t1 = std::time::Instant::now();
    let groups = tk.groupby("variant");
    assert_eq!(groups.len(), VARIANTS.len());
    for (value, mut sub) in groups {
        fold_str(&mut digest, &value);
        fold(&mut digest, sub.profiles.len() as u64);
        for metric in METRICS {
            for stat in [Stat::Mean, Stat::Std] {
                let col = sub.stats(metric, stat);
                for nid in 0..sub.nodes.len() {
                    if let Some(v) = sub.stat_value(&col, nid) {
                        fold(&mut digest, v.to_bits());
                    }
                }
            }
        }
    }
    #[allow(clippy::disallowed_methods)]
    let t_groupby = t1.elapsed();

    // 3. Cluster the corpus: per-profile kernel-family features, Ward
    // linkage over a deterministic stride sample (linkage is O(m²)), and
    // silhouette-guided cluster-count selection.
    #[allow(clippy::disallowed_methods)]
    let t2 = std::time::Instant::now();
    let fm = thicket::kernel_family_features(&tk, METRICS[0]);
    let sample_cap = 2000usize;
    let stride = fm.points.len().div_ceil(sample_cap).max(1);
    let mut points: Vec<Vec<f64>> = fm.points.iter().step_by(stride).cloned().collect();
    hierclust::standardize(&mut points);
    let link = hierclust::linkage(&points, hierclust::Linkage::Ward);
    let sel = hierclust::select_clusters(&points, &link, 2, 6);
    fold(&mut digest, points.len() as u64);
    fold(&mut digest, sel.k as u64);
    for &l in &sel.labels {
        fold(&mut digest, l as u64);
    }
    for (k, s) in &sel.scores {
        fold(&mut digest, *k as u64);
        fold(&mut digest, s.to_bits());
    }
    #[allow(clippy::disallowed_methods)]
    let t_cluster = t2.elapsed();

    #[allow(clippy::disallowed_methods)]
    let total = t0.elapsed();
    println!(
        "corpus_smoke: profiles={n} nodes={} ingest={:.2}s groupby+stats={:.2}s cluster={:.2}s (k={}, sample={}) total={:.2}s budget={:.0}s",
        tk.nodes.len(),
        t_ingest.as_secs_f64(),
        t_groupby.as_secs_f64(),
        t_cluster.as_secs_f64(),
        sel.k,
        points.len(),
        total.as_secs_f64(),
        budget.as_secs_f64(),
    );
    println!("corpus_smoke: digest={digest:016x}");
    if total > budget {
        eprintln!(
            "corpus_smoke: FAIL — {:.2}s exceeds the {:.0}s budget",
            total.as_secs_f64(),
            budget.as_secs_f64()
        );
        std::process::exit(1);
    }
}
