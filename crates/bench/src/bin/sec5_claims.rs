//! Checks the quantified claims of §V (memory-speed and FLOPS trade-offs)
//! against the model, claim by claim, printing PASS/DIVERGES for each.

use perfmodel::MachineId;
use suite::simulate::simulate_all;

fn main() {
    let sims = simulate_all();
    let mut out = String::new();
    let mut check = |label: &str, ok: bool, detail: String| {
        out.push_str(&format!(
            "[{}] {label}\n      {detail}\n",
            if ok { "PASS    " } else { "DIVERGES" }
        ));
    };

    // §V-A: most memory-bound kernels speed up on SPR-HBM.
    let memory_bound: Vec<_> = sims
        .iter()
        .filter(|s| s.tma.get(&MachineId::SprDdr).map(|t| t.memory_bound > 0.3).unwrap_or(false))
        .collect();
    let gained: usize = memory_bound
        .iter()
        .filter(|s| s.speedup[&MachineId::SprHbm] > 1.0)
        .count();
    check(
        "§V-A: most memory-bound kernels gain on SPR-HBM (paper: 40 of 67 memory-bound kernels)",
        gained * 2 > memory_bound.len(),
        format!("{gained} of {} memory-bound kernels gain", memory_bound.len()),
    );

    // §V-B: the retiring-bound trio gains on the V100 without being memory bound.
    for name in ["Basic_INIT_VIEW1D", "Basic_INIT_VIEW1D_OFFSET", "Basic_NESTED_INIT"] {
        let s = sims.iter().find(|s| s.name == name).unwrap();
        let mb = s.tma[&MachineId::SprDdr].memory_bound;
        check(
            &format!("§V-B: {name} gains on P9-V100 while not memory bound"),
            s.speedup[&MachineId::P9V100] > 1.0 && mb < 0.5,
            format!("V100 {:.2}x, mem bound {:.2}", s.speedup[&MachineId::P9V100], mb),
        );
    }
    // §V-B: the no-speedup exceptions on the V100.
    for name in [
        "Basic_PI_ATOMIC",
        "Polybench_ADI",
        "Polybench_ATAX",
        "Polybench_GEMVER",
        "Polybench_GESUMMV",
        "Polybench_MVT",
    ] {
        let s = sims.iter().find(|s| s.name == name).unwrap();
        check(
            &format!("§V-B: {name} shows no speedup on P9-V100"),
            s.speedup[&MachineId::P9V100] < 1.1,
            format!("V100 {:.2}x", s.speedup[&MachineId::P9V100]),
        );
    }
    // §V-B: kernels that gain on the V100 but not SPR-HBM.
    for name in [
        "Algorithm_MEMSET",
        "Apps_FIR",
        "Apps_LTIMES",
        "Apps_LTIMES_NOVIEW",
        "Apps_VOL3D",
        "Basic_MAT_MAT_SHARED",
        "Polybench_2MM",
        "Polybench_3MM",
        "Polybench_GEMM",
    ] {
        let s = sims.iter().find(|s| s.name == name).unwrap();
        check(
            &format!("§V-B: {name} gains on P9-V100 but not on SPR-HBM"),
            s.speedup[&MachineId::P9V100] > 1.0 && s.speedup[&MachineId::SprHbm] < 1.6,
            format!(
                "V100 {:.2}x, HBM {:.2}x",
                s.speedup[&MachineId::P9V100],
                s.speedup[&MachineId::SprHbm]
            ),
        );
    }

    // §V-C: almost everything gains on EPYC-MI250X; the exceptions don't.
    let total = sims.len();
    let gained: usize = sims
        .iter()
        .filter(|s| s.speedup[&MachineId::EpycMi250x] > 1.0)
        .count();
    check(
        "§V-C: almost all kernels gain on EPYC-MI250X",
        gained as f64 > 0.75 * total as f64,
        format!("{gained} of {total} gain"),
    );
    for name in [
        "Basic_PI_ATOMIC",
        "Polybench_ATAX",
        "Polybench_GEMVER",
        "Polybench_GESUMMV",
        "Polybench_MVT",
    ] {
        let s = sims.iter().find(|s| s.name == name).unwrap();
        check(
            &format!("§V-C: {name} shows no real speedup on EPYC-MI250X"),
            s.speedup[&MachineId::EpycMi250x] < 1.6,
            format!("MI250X {:.2}x", s.speedup[&MachineId::EpycMi250x]),
        );
    }

    // §V-D: the FLOP-heavy kernels mostly gain more on the GPUs than on HBM.
    let flop_heavy: Vec<_> = sims
        .iter()
        .filter(|s| s.flops[&MachineId::SprDdr] > s.bandwidth[&MachineId::SprDdr])
        .collect();
    let more_on_gpu = flop_heavy
        .iter()
        .filter(|s| {
            s.speedup[&MachineId::P9V100] > s.speedup[&MachineId::SprHbm]
                && s.speedup[&MachineId::EpycMi250x] > s.speedup[&MachineId::SprHbm]
        })
        .count();
    check(
        "§V-D: most FLOP-heavy kernels gain more on both GPUs than on SPR-HBM (paper: 15 of 17)",
        more_on_gpu + 2 >= flop_heavy.len(),
        format!("{more_on_gpu} of {}", flop_heavy.len()),
    );
    // §V-D: EDGE3D's extreme MI250X speedup.
    let edge = sims.iter().find(|s| s.name == "Apps_EDGE3D").unwrap();
    check(
        "§V-D/Fig 9: Apps_EDGE3D exceeds 40x on EPYC-MI250X (paper: 118.6x)",
        edge.speedup[&MachineId::EpycMi250x] > 40.0,
        format!("MI250X {:.1}x", edge.speedup[&MachineId::EpycMi250x]),
    );

    print!("{out}");
    rajaperf_bench::save_output("sec5_claims.txt", &out);
}
