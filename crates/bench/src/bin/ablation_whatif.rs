//! Ablation / what-if: sweep a hypothetical machine's memory bandwidth
//! (holding compute at SPR-DDR levels) and report each kernel's predicted
//! speedup and the bandwidth at which its bottleneck flips from memory to
//! compute — the crossover structure behind §V's "once the memory
//! bottleneck is addressed, the next constraint is FLOPS".

use perfmodel::{predict_time, Machine, MachineId};
use suite::simulate::NODE_PROBLEM_SIZE;

fn main() {
    let base = Machine::get(MachineId::SprDdr);
    let factors = [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0];
    let mut out = String::new();
    out.push_str("What-if: SPR-DDR with scaled memory bandwidth (compute held fixed)\n\n");
    out.push_str(&format!("{:<28}", "Kernel"));
    for f in factors {
        out.push_str(&format!(" {:>8}", format!("x{f}")));
    }
    out.push_str(&format!(" {:>12}\n", "flips at"));

    for kernel in kernels::registry() {
        let info = kernel.info();
        let sig = kernel.signature(NODE_PROBLEM_SIZE);
        let t0 = predict_time(&base, &sig).total_s;
        out.push_str(&format!("{:<28}", info.name));
        let mut flip: Option<f64> = None;
        for f in factors {
            let mut m = base.clone();
            m.achieved_bw_node *= f;
            m.achieved_read_bw_node *= f;
            m.achieved_write_bw_node *= f;
            let t = predict_time(&m, &sig);
            out.push_str(&format!(" {:>8.2}", t0 / t.total_s));
            if flip.is_none() && t.dominant() != "memory" {
                flip = Some(f);
            }
        }
        out.push_str(&format!(
            " {:>12}\n",
            flip.map(|f| format!("x{f}")).unwrap_or_else(|| "never".into())
        ));
    }
    out.push_str(
        "\nReading: streaming kernels keep scaling until very large factors; compute- and\n\
         atomic-bound kernels flip immediately (x1) and gain nothing — bandwidth upgrades\n\
         only pay off for the memory-bound population, quantifying the paper's Fig. 9.\n",
    );
    print!("{out}");
    rajaperf_bench::save_output("ablation_whatif.txt", &out);
}
