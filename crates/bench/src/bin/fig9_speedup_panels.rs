//! Regenerates Fig. 9: four panels — SPR-DDR Memory Bound per kernel, and
//! each kernel's speedup on SPR-HBM, P9-V100, and EPYC-MI250X relative to
//! SPR-DDR. Kernels above 1x on SPR-HBM are annotated (as in panel 2);
//! the Stream_TRIAD value (yellow line) is printed per panel; speedups
//! above 40x are called out (the paper annotates Apps_EDGE3D at 118.6).

use perfmodel::MachineId;
use suite::simulate::simulate_all;

fn main() {
    let sims = simulate_all();
    let triad = sims.iter().find(|s| s.name == "Stream_TRIAD").unwrap();
    let machines = [MachineId::SprHbm, MachineId::P9V100, MachineId::EpycMi250x];
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>10} | {:>9} {:>9} {:>12}\n",
        "Kernel", "MemBound", "SPR-HBM", "P9-V100", "EPYC-MI250X"
    ));
    let mut rows = Vec::new();
    for sim in &sims {
        let mb = sim
            .tma
            .get(&MachineId::SprDdr)
            .map(|t| t.memory_bound)
            .unwrap_or(0.0);
        let mut line = format!("{:<28} {:>10.3} |", sim.name, mb);
        for m in machines {
            let s = sim.speedup[&m];
            let mark = if m == MachineId::SprHbm && s > 1.0 {
                "*"
            } else if s > 40.0 {
                "!"
            } else {
                " "
            };
            line.push_str(&format!(" {:>8}{mark}", rajaperf_bench::fmt_speedup(s)));
        }
        out.push_str(&line);
        out.push('\n');
        rows.push(serde_json::json!({
            "kernel": sim.name, "group": sim.group, "memory_bound_ddr": mb,
            "speedup_hbm": sim.speedup[&MachineId::SprHbm],
            "speedup_v100": sim.speedup[&MachineId::P9V100],
            "speedup_mi250x": sim.speedup[&MachineId::EpycMi250x],
        }));
    }
    out.push_str("\nReference (yellow) line — Stream_TRIAD speedups: ");
    for m in machines {
        out.push_str(&format!("{} {:.2}  ", m.shorthand(), triad.speedup[&m]));
    }
    out.push_str("\n(*) SPR-HBM speedup > 1x (annotated in the paper's panel 2)\n");
    out.push_str("(!) speedup > 40x (the paper annotates Apps_EDGE3D at 118.6 on EPYC-MI250X)\n");
    print!("{out}");
    rajaperf_bench::save_output("fig9_speedup_panels.txt", &out);
    rajaperf_bench::save_output(
        "fig9_speedup_panels.json",
        &serde_json::to_string_pretty(&rows).unwrap(),
    );
}
