//! Regenerates Fig. 2: the top-down (TMA) hierarchy used to attribute
//! pipeline slots on the CPU systems.

fn main() {
    let text = perfmodel::tma::tma_hierarchy().render();
    print!("{text}");
    rajaperf_bench::save_output("fig2_tma_hierarchy.txt", &text);
}
