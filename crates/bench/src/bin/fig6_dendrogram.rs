//! Regenerates Fig. 6: the Ward dendrogram of the agglomerative clustering
//! over SPR-DDR top-down tuples.

use suite::simulate::ClusterAnalysis;

fn main() {
    let ca = ClusterAnalysis::run(4);
    let labels: Vec<String> = ca.sims.iter().map(|s| s.name.clone()).collect();
    let mut out = String::new();
    out.push_str(&format!(
        "Agglomerative clustering (Ward, Euclidean) of {} kernels on SPR-DDR TMA tuples\n",
        ca.sims.len()
    ));
    out.push_str(&format!(
        "flat cut at distance {:.4} -> {} clusters (the paper cuts at 1.4 -> 4)\n\n",
        ca.threshold,
        ca.num_clusters()
    ));
    out.push_str(&ca.linkage.dendrogram_text(&labels));
    let sel = ca.silhouette_selection(2, 8);
    out.push_str(&format!(
        "\nsilhouette-guided selection over k=2..8: best k={} (threshold {:.4}), scores {}\n",
        sel.k,
        sel.threshold,
        sel.scores
            .iter()
            .map(|(k, s)| format!("k={k}:{s:.4}"))
            .collect::<Vec<_>>()
            .join(" ")
    ));
    print!("{out}");
    rajaperf_bench::save_output("fig6_dendrogram.txt", &out);
}
