//! Regenerates Table III: the per-system run parameters (variant, tuning,
//! ranks, problem size per node).

use perfmodel::{Machine, MachineId};
use suite::simulate::NODE_PROBLEM_SIZE;

fn main() {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<12} {:<12} {:>6} {:>16} {:>16}\n",
        "System", "Variant", "Tuning", "Ranks", "Size/node", "Size/rank"
    ));
    for id in MachineId::all() {
        let m = Machine::get(id);
        let tuning = m
            .gpu_block_size
            .map(|b| format!("block_{b}"))
            .unwrap_or_else(|| "default".to_string());
        out.push_str(&format!(
            "{:<12} {:<12} {:<12} {:>6} {:>16} {:>16}\n",
            m.id.shorthand(),
            m.variant,
            tuning,
            m.ranks,
            NODE_PROBLEM_SIZE,
            NODE_PROBLEM_SIZE / m.ranks,
        ));
    }
    print!("{out}");
    rajaperf_bench::save_output("table3_run_params.txt", &out);
}
