//! Regenerates Fig. 1: analytic metrics per kernel iteration — bytes
//! read, bytes written, FLOPs, and FLOPs/byte, normalized by problem size.
//! Values above the cap are flagged "Cap" exactly as the paper's axis
//! truncation marks them.

fn main() {
    const CAP: f64 = 120.0;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>12} {:>14} {:>10} {:>12}\n",
        "Kernel", "BytesRead/it", "BytesWritten/it", "Flops/it", "Flops/Byte"
    ));
    let mut rows = Vec::new();
    for k in kernels::registry() {
        let info = k.info();
        let n = info.default_size;
        let m = k.metrics(n);
        let (br, bw, fl) = (
            m.bytes_read / n as f64,
            m.bytes_written / n as f64,
            m.flops / n as f64,
        );
        let capped = br > CAP || bw > CAP || fl > CAP;
        let fmt = |v: f64| {
            if v > CAP {
                format!("{v:.1}*Cap")
            } else {
                format!("{v:.2}")
            }
        };
        out.push_str(&format!(
            "{:<28} {:>12} {:>14} {:>10} {:>12.4}{}\n",
            info.name,
            fmt(br),
            fmt(bw),
            fmt(fl),
            m.flops_per_byte(),
            if capped { "  *" } else { "" }
        ));
        rows.push(serde_json::json!({
            "kernel": info.name, "group": info.group.name(),
            "bytes_read_per_it": br, "bytes_written_per_it": bw,
            "flops_per_it": fl, "flops_per_byte": m.flops_per_byte(),
        }));
    }
    out.push_str("\n(*) one or more values exceed the plotting cap, shown truncated as in Fig. 1.\n");
    print!("{out}");
    rajaperf_bench::save_output("fig1_analytic_metrics.txt", &out);
    rajaperf_bench::save_output(
        "fig1_analytic_metrics.json",
        &serde_json::to_string_pretty(&rows).unwrap(),
    );
}
