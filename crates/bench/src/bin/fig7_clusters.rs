//! Regenerates Fig. 7: per-cluster group membership, mean top-down
//! metrics, and mean speedups over SPR-DDR.

use perfmodel::MachineId;
use suite::simulate::ClusterAnalysis;

fn main() {
    let ca = ClusterAnalysis::run(4);
    let k = ca.num_clusters();
    let mut out = String::new();

    out.push_str("Group distribution across clusters (counts):\n");
    out.push_str(&format!("{:<12} {:>8}", "Group", "Total"));
    for i in 0..k {
        out.push_str(&format!(" {:>6}", format!("c{i}")));
    }
    out.push('\n');
    for (g, counts) in ca.group_distribution() {
        let total: usize = counts.iter().sum();
        out.push_str(&format!("{:<12} {:>8}", g, total));
        for c in &counts {
            out.push_str(&format!(" {:>6}", c));
        }
        out.push('\n');
    }

    out.push_str("\nPer-cluster mean top-down metrics and speedups over SPR-DDR:\n");
    out.push_str(&format!(
        "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>12}\n",
        "Cluster", "Frontend", "BadSpec", "Retiring", "Core", "Memory", "SPR-HBM", "P9-V100", "EPYC-MI250X"
    ));
    let means = ca.cluster_tma_means();
    let hbm = ca.cluster_speedup_means(MachineId::SprHbm);
    let v100 = ca.cluster_speedup_means(MachineId::P9V100);
    let mi = ca.cluster_speedup_means(MachineId::EpycMi250x);
    for i in 0..k {
        out.push_str(&format!(
            "{:<8} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} | {:>9.4} {:>9.4} {:>12.4}\n",
            i, means[i][0], means[i][1], means[i][2], means[i][3], means[i][4],
            hbm[i], v100[i], mi[i]
        ));
    }
    out.push_str(&format!(
        "\nMost memory-bound cluster: {} (paper: Cluster 2, mem 0.8812, speedups 2.60/7.36/22.65)\n",
        ca.most_memory_bound_cluster()
    ));
    out.push_str(&format!(
        "Most core-bound cluster:   {} (paper: Cluster 3, core 0.5358, speedups 0.87/3.36/6.26)\n",
        ca.most_core_bound_cluster()
    ));

    out.push_str("\nMembership:\n");
    for i in 0..k {
        let members: Vec<&str> = ca
            .sims
            .iter()
            .zip(&ca.labels)
            .filter(|(_, &l)| l == i)
            .map(|(s, _)| s.name.as_str())
            .collect();
        out.push_str(&format!("c{i} ({}): {}\n", members.len(), members.join(", ")));
    }
    let sel = ca.silhouette_selection(2, 8);
    out.push_str(&format!(
        "\nSilhouette check: best k over 2..8 is {} (score {:.4}); the paper's k={} cut scores {:.4}\n",
        sel.k,
        sel.scores
            .iter()
            .find(|(sk, _)| *sk == sel.k)
            .map_or(f64::NAN, |(_, s)| *s),
        k,
        sel.scores
            .iter()
            .find(|(sk, _)| *sk == k)
            .map_or(f64::NAN, |(_, s)| *s),
    ));
    print!("{out}");
    rajaperf_bench::save_output("fig7_clusters.txt", &out);
}
