//! Regenerates Table II: the four systems with theoretical and achieved
//! FLOPS (Basic_MAT_MAT_SHARED) and memory bandwidth (Stream_TRIAD).
//! The achieved columns are produced by running the two ceiling kernels
//! through the performance model, not by echoing the constants.

use perfmodel::{predict_time, Machine, MachineId};
use suite::simulate::NODE_PROBLEM_SIZE;

fn main() {
    let mat = kernels::find("Basic_MAT_MAT_SHARED").unwrap();
    let triad = kernels::find("Stream_TRIAD").unwrap();
    let mat_sig = mat.signature(NODE_PROBLEM_SIZE);
    let triad_sig = triad.signature(NODE_PROBLEM_SIZE);

    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<14} {:<24} {:>6} | {:>9} {:>13} {:>6} | {:>9} {:>12} {:>6}\n",
        "Shorthand", "System", "Architecture", "Units",
        "peak TF", "MAT_MAT TF", "% exp",
        "peak TB/s", "TRIAD TB/s", "% exp"
    ));
    for id in MachineId::all() {
        let m = Machine::get(id);
        let t_mat = predict_time(&m, &mat_sig);
        let fl = perfmodel::predict::achieved_flops(&m, &mat_sig, &t_mat);
        let t_triad = predict_time(&m, &triad_sig);
        let bw = perfmodel::predict::achieved_bandwidth(&m, &triad_sig, &t_triad);
        out.push_str(&format!(
            "{:<12} {:<14} {:<24} {:>6} | {:>9.1} {:>13.1} {:>6.1} | {:>9.1} {:>12.2} {:>6.1}\n",
            m.id.shorthand(),
            m.system,
            m.architecture,
            m.units_per_node,
            m.peak_flops_node / 1e12,
            fl / 1e12,
            100.0 * fl / m.peak_flops_node,
            m.peak_bw_node / 1e12,
            bw / 1e12,
            100.0 * bw / m.peak_bw_node,
        ));
    }
    out.push_str("\nPaper Table II reference: SPR-DDR 0.8 TF (18.0%) / 0.5 TB/s (77.7%); SPR-HBM 0.7 (15.5%) / 1.11 (33.7%);\n");
    out.push_str("P9-V100 7.0 (22.4%) / 3.3 (92.6%); EPYC-MI250X 13.3 (7.0%) / 10.2 (79.5%).\n");
    print!("{out}");
    rajaperf_bench::save_output("table2_machines.txt", &out);
}
