//! Ablation: the rank-decomposition caveat of §IV/§V — for super-linear
//! kernels, the per-node work depends on how many ranks split the 32M
//! problem, so machines with fewer ranks do more total work. Sweeps rank
//! counts and reports total work and predicted time for O(N) vs O(N^{3/2})
//! kernels.

use perfmodel::{predict_time, Machine, MachineId};
use suite::simulate::NODE_PROBLEM_SIZE;

fn main() {
    let mut out = String::new();
    out.push_str("Per-node total FLOPs and predicted time vs rank count (32M elements)\n\n");
    for name in ["Stream_TRIAD", "Basic_MAT_MAT_SHARED", "Polybench_GEMM"] {
        let kernel = kernels::find(name).unwrap();
        let sig = kernel.signature(NODE_PROBLEM_SIZE);
        out.push_str(&format!(
            "{name} (complexity {}):\n",
            kernel.info().complexity.label()
        ));
        out.push_str(&format!(
            "  {:>6} {:>16} {:>16}\n",
            "ranks", "total GFLOPs", "time on MI-like"
        ));
        for ranks in [4usize, 8, 16, 56, 112] {
            let per_rank = sig.scaled_to(NODE_PROBLEM_SIZE / ranks);
            let total_flops = per_rank.flops * ranks as f64;
            let mut m = Machine::get(MachineId::EpycMi250x);
            m.ranks = ranks;
            m.cores_per_node = ranks * 110;
            let t = predict_time(&m, &sig);
            out.push_str(&format!(
                "  {:>6} {:>16.1} {:>15.3e}s\n",
                ranks,
                total_flops / 1e9,
                t.total_s
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "Reading: O(N) kernels do identical total work at any decomposition; the\n\
         O(N^{3/2}) matrix kernels do ~sqrt(ranks) less total work with more ranks,\n\
         which is why the paper excludes them (and the Comm kernels) from the\n\
         cross-architecture comparison and flags the GPU results for Polybench.\n",
    );
    print!("{out}");
    rajaperf_bench::save_output("ablation_decomposition.txt", &out);
}
