//! Criterion bench: simcomm halo exchange and rank scaling.
//!
//! The paper's §IV ablation studies the HALO exchange kernels under
//! message fusion; this harness times the rank-decomposed exchange driver
//! (`kernels::comm`) end to end — pack, simcomm send/recv, unpack — so the
//! committed trajectory (`BENCH_comm.json`, via `scripts/bench.sh <label>
//! comm`) records both the fused-vs-unfused packing gap and how the
//! exchange scales as the 1-D rank decomposition widens.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kernels::comm::{run_exchange_decomposed, NUM_VARS};
use kernels::VariantId;
use std::time::Duration;

const BLOCK: usize = 256;
const REPS: usize = 4;

/// Problem size giving a 16³ interior grid per `geometry` (n is total
/// elements across `NUM_VARS` variables).
const N: usize = NUM_VARS * 16 * 16 * 16;

fn halo_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_exchange");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .throughput(Throughput::Elements(N as u64));
    for fused in [false, true] {
        let label = if fused { "fused" } else { "per_direction" };
        group.bench_with_input(BenchmarkId::new("pack", label), &fused, |b, &fused| {
            b.iter(|| run_exchange_decomposed(N, REPS, VariantId::BaseSeq, BLOCK, fused, 2, true));
        });
    }
    group.finish();
}

fn rank_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_scaling");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .throughput(Throughput::Elements(N as u64));
    for nranks in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("ranks", nranks), &nranks, |b, &nranks| {
            b.iter(|| run_exchange_decomposed(N, REPS, VariantId::BaseSeq, BLOCK, true, nranks, true));
        });
    }
    group.finish();
}

criterion_group!(benches, halo_exchange, rank_scaling);
criterion_main!(benches);
