//! Criterion bench: the GPU block-size tuning sweep (§II-C "tuning") on
//! the simulated device — RAJAPerf's `block_64`..`block_1024` tunings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::{Tuning, VariantId};
use std::time::Duration;

fn tuning_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_block_size");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for name in ["Stream_TRIAD", "Basic_REDUCE3_INT"] {
        let kernel = kernels::find(name).unwrap();
        for bs in [64usize, 128, 256, 512, 1024] {
            let tuning = Tuning {
                gpu_block_size: bs,
            };
            group.bench_with_input(
                BenchmarkId::new(name, format!("block_{bs}")),
                &tuning,
                |b, tuning| {
                    b.iter(|| kernel.execute(VariantId::RajaSimGpu, 100_000, 1, tuning));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, tuning_benches);
criterion_main!(benches);
