//! Criterion bench: one representative kernel per Table I group, timed on
//! the reference back-end — the suite's cross-group comparison rows.

use criterion::{criterion_group, criterion_main, Criterion};
use kernels::{Tuning, VariantId};
use std::time::Duration;

fn group_benches(c: &mut Criterion) {
    let tuning = Tuning::default();
    let cases = [
        ("Algorithm_SCAN", 100_000),
        ("Apps_PRESSURE", 100_000),
        ("Basic_MULADDSUB", 100_000),
        ("Comm_HALO_PACKING", 3 * 12 * 12 * 12),
        ("Lcals_EOS", 100_000),
        ("Polybench_JACOBI_2D", 2 * 96 * 96),
        ("Stream_TRIAD", 100_000),
    ];
    let mut group = c.benchmark_group("groups");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, n) in cases {
        let kernel = kernels::find(name).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| kernel.execute(VariantId::BaseSeq, n, 1, &tuning));
        });
    }
    group.finish();
}

criterion_group!(benches, group_benches);
criterion_main!(benches);
