//! Criterion bench: simulated-device launch overhead in isolation.
//!
//! The paper treats launch overhead as a measured quantity (the Comm/HALO
//! launch-bound analysis), so the harness itself must stay out of the way.
//! Three groups isolate the pieces:
//!
//! * `launch_empty` — an empty-body `launch_1d` at several grid sizes: pure
//!   per-launch + per-thread harness cost, zero kernel work.
//! * `deviceptr_rw` — a read-modify-write stream through `DevicePtr`: the
//!   per-access sanitizer-gating cost on the un-sanitized hot path.
//! * `triad_base_simgpu` — `Stream_TRIAD` end-to-end under `Base_SimGpu`:
//!   the acceptance yardstick for the fast-path optimization.
//!
//! `scripts/bench.sh` runs this bench with `CRITERION_JSON` set and folds
//! the results into `BENCH_gpusim.json`; `scripts/verify.sh` runs it with
//! `--test` as a smoke check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpusim::DevicePtr;
use kernels::{Tuning, VariantId};
use std::time::Duration;

fn launch_empty(c: &mut Criterion) {
    let mut group = c.benchmark_group("launch_empty");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [4_096usize, 65_536, 1_000_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            b.iter(|| gpusim::launch_1d(n, gpusim::DEFAULT_BLOCK_SIZE, |_| {}));
        });
    }
    group.finish();
}

fn deviceptr_rw(c: &mut Criterion) {
    let mut group = c.benchmark_group("deviceptr_rw");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let n = 1_000_000usize;
    let mut buf = vec![1.0f64; n];
    // One read + one write per element, all through the instrumentable
    // DevicePtr accessors.
    group.throughput(Throughput::Bytes(16 * n as u64));
    group.bench_with_input(BenchmarkId::new("rmw", n), &n, |b, &n| {
        let p = DevicePtr::new(&mut buf);
        b.iter(|| {
            // SAFETY: indices stay within the extents the device pointers/views were
            // built from, and each parallel iterate touches a disjoint set of output
            // elements, so writes never alias.
            gpusim::launch_1d(n, gpusim::DEFAULT_BLOCK_SIZE, |i| unsafe {
                p.write(i, p.read(i) * 1.000_000_1)
            })
        });
    });
    group.finish();
}

fn triad_base_simgpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("triad_base_simgpu");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let n = 1_000_000usize;
    // Enough reps that the kernel's steady-state launch loop dominates the
    // fixed per-execute setup (two init_unit fills + checksum, ~12ms at this
    // n) instead of being drowned by it.
    let reps = 20usize;
    let kernel = kernels::find("Stream_TRIAD").unwrap();
    let tuning = Tuning::default();
    group.throughput(Throughput::Bytes(24 * (n * reps) as u64));
    group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
        b.iter(|| kernel.execute(VariantId::BaseSimGpu, n, reps, &tuning));
    });
    group.finish();
}

criterion_group!(benches, launch_empty, deviceptr_rw, triad_base_simgpu);
criterion_main!(benches);
