//! Criterion bench: the Stream group under every back-end — real
//! wall-clock bandwidth on this host (the suite's §II-C "bottom line").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kernels::{Tuning, VariantId};
use std::time::Duration;

fn stream_benches(c: &mut Criterion) {
    let n = 100_000;
    let tuning = Tuning::default();
    let mut group = c.benchmark_group("stream");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for name in ["Stream_ADD", "Stream_COPY", "Stream_DOT", "Stream_MUL", "Stream_TRIAD"] {
        let kernel = kernels::find(name).unwrap();
        let bytes = kernel.metrics(n);
        group.throughput(Throughput::Bytes(
            (bytes.bytes_read + bytes.bytes_written) as u64,
        ));
        for v in [VariantId::BaseSeq, VariantId::RajaSeq, VariantId::RajaPar, VariantId::RajaSimGpu]
        {
            group.bench_with_input(BenchmarkId::new(name, v.name()), &v, |b, &v| {
                b.iter(|| kernel.execute(v, n, 1, &tuning));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, stream_benches);
criterion_main!(benches);
