//! Criterion bench: the Thicket analysis engine at corpus scale.
//!
//! The paper's §IV pipeline is Thicket composing and aggregating many
//! Caliper profiles; `rajaperfd` corpora run orders of magnitude beyond the
//! 12-cell sweeps, so the dataframe itself must scale. These benches time
//! the corpus-shaped operations — streaming ingest, concat, metadata
//! groupby, statsframe aggregation, and Ward linkage over per-profile
//! features — on deterministic synthetic corpora of 10k–1M profiles.
//!
//! `scripts/bench.sh <label> thicket` snapshots the results into
//! `BENCH_thicket.json` (pre/post pairs across PRs are the committed perf
//! trajectory); `scripts/verify.sh` smoke-runs the harness with `--test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::BTreeMap;
use std::time::Duration;
use thicket::{ProfileData, Stat, Thicket};

/// SplitMix64: deterministic value stream, no external RNG crate.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const VARIANTS: [&str; 6] = [
    "Base_Seq",
    "RAJA_Seq",
    "Base_Par",
    "RAJA_Par",
    "Base_SimGpu",
    "RAJA_SimGpu",
];
const FAMILIES: [&str; 2] = ["Stream", "Basic"];
const KERNELS_PER_FAMILY: usize = 2;
const METRICS: [&str; 2] = ["avg#time.duration", "Bytes/Rep"];

/// One synthetic profile: the shape a sweep cell produces — run metadata
/// (variant, block size) plus one record per kernel leaf with two metric
/// columns. Values are a pure function of `i`.
fn synth_profile(i: usize) -> ProfileData {
    let mut rng = i as u64 ^ 0xD1F7_BEEF;
    let mut globals = BTreeMap::new();
    globals.insert(
        "variant".to_string(),
        serde_json::json!(VARIANTS[i % VARIANTS.len()]),
    );
    globals.insert(
        "gpu_block_size".to_string(),
        serde_json::json!(64 << (i % 4)),
    );
    let mut records = Vec::with_capacity(FAMILIES.len() * KERNELS_PER_FAMILY);
    for family in FAMILIES {
        for k in 0..KERNELS_PER_FAMILY {
            let mut metrics = BTreeMap::new();
            for m in METRICS {
                let v = (splitmix(&mut rng) % 1_000_000) as f64 / 1e6 + 1e-6;
                metrics.insert(m.to_string(), v);
            }
            records.push((
                vec!["RAJAPerf".to_string(), format!("{family}_K{k}")],
                metrics,
            ));
        }
    }
    ProfileData { globals, records }
}

fn synth_corpus(n: usize) -> Vec<ProfileData> {
    (0..n).map(synth_profile).collect()
}

/// Deterministic feature points for the linkage benches: `d`-dimensional
/// tuples clustered loosely around 4 blob centres.
fn synth_points(n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut rng = 0xFEED_5EED_u64;
    (0..n)
        .map(|i| {
            let centre = (i % 4) as f64 * 10.0;
            (0..d)
                .map(|_| centre + (splitmix(&mut rng) % 1000) as f64 / 500.0)
                .collect()
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("thicket_ingest");
    group.sample_size(2).warm_up_time(Duration::ZERO);
    for n in [10_000usize, 100_000] {
        let corpus = synth_corpus(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("profiles", n), &corpus, |b, corpus| {
            b.iter(|| Thicket::from_profiles(corpus));
        });
    }
    // 1M profiles are generated inside the loop (streaming shape: profiles
    // arrive one at a time and are ingested incrementally, never all
    // resident as parsed JSON).
    let n = 1_000_000usize;
    group.sample_size(1);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::new("stream_gen", n), &n, |b, &n| {
        b.iter(|| {
            let mut t = Thicket::default();
            for i in 0..n {
                t.ingest(&synth_profile(i));
            }
            t
        });
    });
    group.finish();
}

fn bench_concat(c: &mut Criterion) {
    let mut group = c.benchmark_group("thicket_concat");
    group.sample_size(2).warm_up_time(Duration::ZERO);
    // 100 sweep-cell-sized thickets of 1k profiles each.
    let cells: Vec<Thicket> = (0..100)
        .map(|cell| {
            let profiles: Vec<ProfileData> =
                (0..1000).map(|i| synth_profile(cell * 1000 + i)).collect();
            Thicket::from_profiles(&profiles)
        })
        .collect();
    group.throughput(Throughput::Elements(100_000));
    group.bench_with_input(BenchmarkId::new("cells", "100x1k"), &cells, |b, cells| {
        b.iter(|| Thicket::concat(cells));
    });
    group.finish();
}

fn bench_groupby_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("thicket_groupby_stats");
    group.sample_size(1).warm_up_time(Duration::ZERO);
    for n in [10_000usize, 100_000] {
        let t = Thicket::from_profiles(&synth_corpus(n));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("groupby", n), &t, |b, t| {
            b.iter(|| {
                let groups = t.groupby("variant");
                assert_eq!(groups.len(), VARIANTS.len());
                groups
            });
        });
        group.bench_with_input(BenchmarkId::new("stats", n), &t, |b, t| {
            b.iter(|| {
                let mut t = t.clone();
                for m in METRICS {
                    t.stats(m, Stat::Mean);
                    t.stats(m, Stat::Std);
                }
                t
            });
        });
    }
    group.finish();
}

fn bench_tkt(c: &mut Criterion) {
    let mut group = c.benchmark_group("thicket_tkt");
    group.sample_size(2).warm_up_time(Duration::ZERO);
    let n = 100_000usize;
    let t = Thicket::from_profiles(&synth_corpus(n));
    let path = std::env::temp_dir().join(format!("thicket_bench_{}.tkt", std::process::id()));
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::new("write", n), &t, |b, t| {
        b.iter(|| t.write_tkt(&path).expect("snapshot writes"));
    });
    group.bench_with_input(BenchmarkId::new("read", n), &path, |b, path| {
        b.iter(|| Thicket::read_tkt(path).expect("snapshot reopens"));
    });
    std::fs::remove_file(&path).ok();
    group.finish();
}

fn bench_linkage(c: &mut Criterion) {
    let mut group = c.benchmark_group("thicket_linkage");
    group.sample_size(1).warm_up_time(Duration::ZERO);
    for n in [1000usize, 2000] {
        let points = synth_points(n, 5);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("ward", n), &points, |b, points| {
            b.iter(|| hierclust::linkage(points, hierclust::Linkage::Ward));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest,
    bench_concat,
    bench_groupby_stats,
    bench_tkt,
    bench_linkage
);
criterion_main!(benches);
