//! Criterion bench: RAJA abstraction overhead (§II-C item 3) — Base vs
//! RAJA variants for representative kernels of each shape, including the
//! LTIMES / LTIMES_NOVIEW view-cost pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::{Tuning, VariantId};
use std::time::Duration;

fn overhead_benches(c: &mut Criterion) {
    let tuning = Tuning::default();
    let cases = [
        ("Basic_DAXPY", 100_000),
        ("Basic_IF_QUAD", 50_000),
        ("Lcals_HYDRO_1D", 100_000),
        ("Apps_LTIMES", 40_000),
        ("Apps_LTIMES_NOVIEW", 40_000),
        ("Polybench_GEMM", 3 * 48 * 48),
    ];
    let mut group = c.benchmark_group("raja_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, n) in cases {
        let kernel = kernels::find(name).unwrap();
        for v in [VariantId::BaseSeq, VariantId::RajaSeq] {
            group.bench_with_input(BenchmarkId::new(name, v.name()), &v, |b, &v| {
                b.iter(|| kernel.execute(v, n, 1, &tuning));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, overhead_benches);
criterion_main!(benches);
