//! Criterion bench: sequential vs. thread-pool execution of the `Par`
//! variants — measures what the work-stealing pool in `vendor/rayon` buys
//! (or costs) on this host for bandwidth-bound and reduction kernels.
//!
//! Pool width is fixed per process (`RAYON_NUM_THREADS`, else the host's
//! available parallelism), so this bench compares Base_Seq against Base_Par
//! and RAJA_Par at whatever width the environment dictates; run it with
//! different `RAYON_NUM_THREADS` values to see the scaling curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kernels::{Tuning, VariantId};
use std::time::Duration;

fn threading_benches(c: &mut Criterion) {
    let n = 200_000;
    let tuning = Tuning::default();
    let mut group = c.benchmark_group("threading");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // One bandwidth-bound streaming kernel, one reduction (partial-combine
    // path), one atomic-heavy kernel (contention path).
    for name in ["Stream_TRIAD", "Stream_DOT", "Basic_PI_ATOMIC"] {
        let kernel = match kernels::find(name) {
            Some(k) => k,
            None => continue,
        };
        let metrics = kernel.metrics(n);
        group.throughput(Throughput::Bytes(
            (metrics.bytes_read + metrics.bytes_written) as u64,
        ));
        for v in [VariantId::BaseSeq, VariantId::BasePar, VariantId::RajaPar] {
            group.bench_with_input(BenchmarkId::new(name, v.name()), &v, |b, &v| {
                b.iter(|| kernel.execute(v, n, 1, &tuning));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, threading_benches);
criterion_main!(benches);
