//! Criterion bench: the analysis pipeline itself — per-kernel simulation,
//! the TMA model, and the Ward clustering (the Thicket-side workload).

use criterion::{criterion_group, criterion_main, Criterion};
use perfmodel::{Machine, MachineId};
use std::time::Duration;

fn model_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let kernel = kernels::find("Stream_TRIAD").unwrap();
    let sig = kernel.signature(32_000_000);
    let ddr = Machine::get(MachineId::SprDdr);
    group.bench_function("tma_breakdown", |b| {
        b.iter(|| perfmodel::tma_breakdown(&ddr, &sig));
    });
    group.bench_function("predict_time_all_machines", |b| {
        b.iter(|| {
            MachineId::all()
                .into_iter()
                .map(|id| perfmodel::predict_time(&Machine::get(id), &sig).total_s)
                .sum::<f64>()
        });
    });
    group.bench_function("simulate_suite", |b| {
        b.iter(suite::simulate::simulate_all);
    });
    group.bench_function("ward_clustering_4", |b| {
        b.iter(|| suite::simulate::ClusterAnalysis::run(4));
    });
    group.finish();
}

criterion_group!(benches, model_benches);
criterion_main!(benches);
