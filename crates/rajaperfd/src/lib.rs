//! `rajaperfd` — profiling as a service for RAJAPerf-rs.
//!
//! The one-shot `rajaperf` CLI pays full process start-up (registry
//! construction, rayon pool spin-up, adiak init) per campaign and forgets
//! every measurement when it exits. This crate keeps the suite resident: a
//! long-running daemon accepts `run` / `sweep` / `analyze` requests over
//! line-delimited JSON on a unix socket ([`protocol`]), executes campaigns
//! concurrently on the shared rayon pool with the per-request isolation
//! machinery from PR 5 (`catch_unwind`, watchdog, bounded retry), and
//! streams per-kernel progress events back to each client as its campaign
//! advances ([`server`]).
//!
//! Completed results persist in a content-addressed [`store`]: the key
//! hashes everything that determines a run's outcome — kernel/variant/
//! size/reps selection, fault spec, execution policy, and the build
//! fingerprint ([`suite::code_version`]) — so an identical request is
//! served from the store without re-executing a single kernel, and a
//! rebuilt binary can never be answered with a stale profile. Writes are
//! atomic; reads verify the embedded key and quarantine corruption.
//!
//! Overload is a typed answer, not a stall: the request queue is bounded
//! and admission control rejects excess work with `queue_full`. Shutdown
//! is graceful — queued and in-flight requests drain, then the daemon
//! exits. The [`client`] module and the `rajaperf-client` binary speak the
//! protocol; `rajaperfd` is the server binary.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::{submit, submit_with, Response};
pub use protocol::{ErrorCode, Request};
pub use server::{Daemon, DaemonConfig};
pub use store::{content_hash, ProfileStore, StoreStats};
