//! The content-addressed profile store: the daemon's persistent cache of
//! completed campaign results, generalizing the sweep's `cells/` cache.
//!
//! An object's address is a stable 128-bit hash of its *key* — the
//! canonical JSON of everything that determines a run's results: the build
//! fingerprint ([`suite::code_version`]), variant, tuning, the (kernel,
//! size, reps) list, the fault spec, and the execution policy. Canonical
//! form comes for free: the vendored `serde_json` keeps objects as sorted
//! maps, so equal keys serialize to equal bytes.
//!
//! Integrity model (same stance as the sweep cache):
//!
//! * Writes are atomic ([`caliper::write_atomic`]: temp + fsync + rename),
//!   so a mid-write kill leaves either the old object or the new one.
//! * Reads verify. The stored record carries its full key; a record whose
//!   key does not match the request's (a hash collision, or a corrupt but
//!   parseable file) is treated as a miss. A record that does not *parse*
//!   is quarantined to `quarantine/` and re-run — corruption is never
//!   trusted and never fatal.

use serde_json::Value;
use simsched::sync::atomic::{AtomicU64, Ordering};
use std::io;
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a over `bytes` from the given offset basis.
fn fnv1a64(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Stable 128-bit content hash as 32 lowercase hex digits. Two independent
/// FNV-1a streams (the standard offset basis and a distinct second one)
/// rather than `DefaultHasher`, which is randomly keyed per process and
/// therefore useless for a *persistent* store. Collisions are guarded by
/// the full-key comparison on read, so the hash only has to spread names.
pub fn content_hash(text: &str) -> String {
    let h1 = fnv1a64(text.as_bytes(), 0xCBF2_9CE4_8422_2325);
    let h2 = fnv1a64(text.as_bytes(), 0x6C62_272E_07BB_0142);
    format!("{h1:016x}{h2:016x}")
}

/// Counters the `stats` request reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Reads answered from the store.
    pub hits: u64,
    /// Reads that found nothing usable.
    pub misses: u64,
    /// Objects written.
    pub stores: u64,
    /// Corrupt files moved to `quarantine/`.
    pub quarantined: u64,
}

/// A persistent content-addressed store of profile records under
/// `root/objects/<hh>/<hash>.json`.
pub struct ProfileStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
}

impl ProfileStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ProfileStore> {
        let root = root.into();
        std::fs::create_dir_all(root.join("objects"))?;
        Ok(ProfileStore {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The hash a key addresses.
    pub fn key_hash(key: &Value) -> String {
        content_hash(&key.to_string())
    }

    /// The object file a hash addresses. Objects shard on the first two hex
    /// digits so no single directory grows unboundedly.
    pub fn object_path(&self, hash: &str) -> PathBuf {
        self.path_in("objects", hash)
    }

    /// The file a hash addresses in the *derived* space — records computed
    /// from stored objects (e.g. cached analyze results). Derived records
    /// live outside `objects/` so corpus enumeration never sees them: an
    /// analysis caching its own result must not change the corpus it is
    /// keyed on.
    pub fn derived_path(&self, hash: &str) -> PathBuf {
        self.path_in("derived", hash)
    }

    fn path_in(&self, space: &str, hash: &str) -> PathBuf {
        let shard = hash.get(..2).unwrap_or("00");
        self.root.join(space).join(shard).join(format!("{hash}.json"))
    }

    /// Look up the record stored under `key`. Returns the record only when
    /// it parses *and* its embedded key matches `key` byte for byte; a
    /// non-parsing file is quarantined first.
    pub fn get(&self, key: &Value) -> Option<Value> {
        self.get_at(self.object_path(&Self::key_hash(key)), key)
    }

    /// [`ProfileStore::get`] against the derived space.
    pub fn get_derived(&self, key: &Value) -> Option<Value> {
        self.get_at(self.derived_path(&Self::key_hash(key)), key)
    }

    fn get_at(&self, path: PathBuf, key: &Value) -> Option<Value> {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let record: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(_) => {
                // Torn or corrupted on disk: move it out of the address
                // space so it is never consulted again, and miss.
                if self.quarantine(&path).is_ok() {
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        // Full-key verification: the 128-bit address only has to *find* the
        // record; equality of the embedded key is what makes serving it
        // sound (collision and stale-semantics guard in one check).
        if record.get("key") != Some(key) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(record)
    }

    /// Store `record` under `key`, embedding the key in the record (the
    /// read-side integrity check). Returns the object's hash.
    pub fn put(&self, key: &Value, record: Value) -> io::Result<String> {
        let hash = Self::key_hash(key);
        self.put_at(self.object_path(&hash), key, record)?;
        Ok(hash)
    }

    /// [`ProfileStore::put`] against the derived space.
    pub fn put_derived(&self, key: &Value, record: Value) -> io::Result<String> {
        let hash = Self::key_hash(key);
        self.put_at(self.derived_path(&hash), key, record)?;
        Ok(hash)
    }

    fn put_at(&self, path: PathBuf, key: &Value, record: Value) -> io::Result<()> {
        let mut obj = match record {
            Value::Object(m) => m,
            other => {
                let mut m = std::collections::BTreeMap::new();
                m.insert("body".to_string(), other);
                m
            }
        };
        obj.insert("key".to_string(), key.clone());
        let record = Value::Object(obj);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        caliper::write_atomic(&path, record.to_string().as_bytes())?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Move a corrupt object into `quarantine/`, uniquifying on collision.
    fn quarantine(&self, file: &Path) -> io::Result<PathBuf> {
        let qdir = self.root.join("quarantine");
        std::fs::create_dir_all(&qdir)?;
        let name = file
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "corrupt".to_string());
        let mut dest = qdir.join(&name);
        let mut i = 1;
        while dest.exists() {
            dest = qdir.join(format!("{name}.{i}"));
            i += 1;
        }
        std::fs::rename(file, &dest)?;
        Ok(dest)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn temp_store(tag: &str) -> ProfileStore {
        let dir = std::env::temp_dir().join(format!("rajaperfd_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ProfileStore::open(dir).unwrap()
    }

    #[test]
    fn content_hash_is_stable_and_spreads() {
        // Stability across processes is the whole point — pin a value.
        assert_eq!(content_hash(""), "cbf29ce4842223256c62272e07bb0142");
        assert_ne!(content_hash("a"), content_hash("b"));
        assert_eq!(content_hash("same"), content_hash("same"));
    }

    #[test]
    fn put_get_roundtrip_and_counters() {
        let store = temp_store("roundtrip");
        let key = json!({"kernel": "Basic_DAXPY", "size": 1000});
        assert!(store.get(&key).is_none(), "empty store misses");
        let hash = store.put(&key, json!({"profile": json!({"x": 1})})).unwrap();
        assert_eq!(hash, ProfileStore::key_hash(&key));
        let rec = store.get(&key).expect("stored record hits");
        assert_eq!(rec.get("key"), Some(&key));
        assert_eq!(rec["profile"]["x"].as_i64(), Some(1));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn derived_space_is_separate_from_objects() {
        let store = temp_store("derived");
        let key = json!({"kind": "analyze", "metric": "t"});
        assert!(store.get_derived(&key).is_none());
        store.put_derived(&key, json!({"report": 42})).unwrap();
        let rec = store.get_derived(&key).expect("derived record hits");
        assert_eq!(rec["report"].as_i64(), Some(42));
        // The same key misses in the object space, and no file appears
        // under objects/ — corpus enumeration never sees derived records.
        assert!(store.get(&key).is_none());
        assert!(!store.object_path(&ProfileStore::key_hash(&key)).exists());
        assert!(store.derived_path(&ProfileStore::key_hash(&key)).exists());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn mismatched_embedded_key_is_a_miss_not_a_hit() {
        let store = temp_store("collide");
        let key = json!({"q": 1});
        let hash = ProfileStore::key_hash(&key);
        // Simulate a hash collision / semantic corruption: a parseable
        // record at the right address carrying the wrong key.
        let path = store.object_path(&hash);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, json!({"key": json!({"q": 2}), "profile": 7}).to_string()).unwrap();
        assert!(store.get(&key).is_none(), "wrong embedded key must miss");
        assert!(path.exists(), "parseable records are not quarantined");
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn corrupt_objects_are_quarantined_and_rewritable() {
        let store = temp_store("quarantine");
        let key = json!({"q": "torn"});
        let path = store.object_path(&ProfileStore::key_hash(&key));
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "{\"key\": {\"q\": \"torn\"").unwrap();
        assert!(store.get(&key).is_none());
        assert!(!path.exists(), "corrupt object must leave the address");
        assert_eq!(store.stats().quarantined, 1);
        // The address is usable again.
        store.put(&key, json!({"profile": 1})).unwrap();
        assert!(store.get(&key).is_some());
        std::fs::remove_dir_all(store.root()).ok();
    }
}
