//! Client side of the daemon protocol: connect, send one request line,
//! stream event lines until `done`.

use crate::protocol::Request;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Everything the daemon sent for one request, in arrival order, plus the
/// exit code from the terminal `done` event.
#[derive(Debug, Clone)]
pub struct Response {
    /// Every event object, in the order received.
    pub events: Vec<Value>,
    /// `done.exit_code`, mirroring the [`suite::SuiteExit`] taxonomy; `1`
    /// (internal) when the connection ended without a `done` event.
    pub exit_code: i32,
}

impl Response {
    /// The first event of the given `event` kind.
    pub fn find(&self, event: &str) -> Option<&Value> {
        self.events
            .iter()
            .find(|e| e.get("event").and_then(Value::as_str) == Some(event))
    }

    /// The `result` event's `report`, if the request produced one.
    pub fn report(&self) -> Option<&Value> {
        self.find("result").and_then(|e| e.get("report"))
    }

    /// Whether the result was served from the store.
    pub fn cached(&self) -> bool {
        self.find("result")
            .and_then(|e| e.get("cached"))
            .and_then(Value::as_bool)
            .unwrap_or(false)
    }

    /// The first typed error as `(code, message)`.
    pub fn error(&self) -> Option<(&str, &str)> {
        let e = self.find("error")?;
        Some((
            e.get("code").and_then(Value::as_str).unwrap_or("internal"),
            e.get("message").and_then(Value::as_str).unwrap_or(""),
        ))
    }

    /// Number of streamed per-kernel `progress` events.
    pub fn progress_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.get("event").and_then(Value::as_str) == Some("progress"))
            .count()
    }
}

/// Submit `req` over `socket` and collect the full event stream.
pub fn submit(socket: &Path, req: &Request) -> std::io::Result<Response> {
    submit_with(socket, req, &mut |_| {})
}

/// [`submit`], invoking `on_event` as each event line arrives — the
/// streaming interface the CLI uses to tail progress live.
pub fn submit_with(
    socket: &Path,
    req: &Request,
    on_event: &mut dyn FnMut(&Value),
) -> std::io::Result<Response> {
    let mut stream = UnixStream::connect(socket)?;
    let mut line = req.to_line();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;

    let mut events = Vec::new();
    let mut exit_code = 1; // internal, unless a `done` event says otherwise
    for read in BufReader::new(stream).lines() {
        let text = read?;
        if text.trim().is_empty() {
            continue;
        }
        let Ok(event) = serde_json::from_str::<Value>(&text) else {
            continue;
        };
        on_event(&event);
        let done = event.get("event").and_then(Value::as_str) == Some("done");
        if done {
            exit_code = event
                .get("exit_code")
                .and_then(Value::as_i64)
                .unwrap_or(1) as i32;
        }
        events.push(event);
        if done {
            break;
        }
    }
    Ok(Response { events, exit_code })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn response_accessors_read_the_stream() {
        let r = Response {
            events: vec![
                json!({"event": "accepted", "id": "x", "queue_depth": 0}),
                json!({"event": "started", "id": "x"}),
                json!({"event": "progress", "id": "x", "kernel": "k", "index": 1, "total": 2}),
                json!({"event": "progress", "id": "x", "kernel": "j", "index": 2, "total": 2}),
                json!({"event": "result", "id": "x", "cached": true, "report": json!({"ok": 1})}),
                json!({"event": "error", "id": "x", "code": "kernel_failures", "message": "m"}),
                json!({"event": "done", "id": "x", "exit_code": 5}),
            ],
            exit_code: 5,
        };
        assert_eq!(r.progress_count(), 2);
        assert!(r.cached());
        assert_eq!(r.report().unwrap()["ok"].as_i64(), Some(1));
        assert_eq!(r.error(), Some(("kernel_failures", "m")));
        assert!(r.find("pong").is_none());
    }
}
