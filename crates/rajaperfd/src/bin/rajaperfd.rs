//! The `rajaperfd` server binary: bind the socket, serve until a client
//! sends `shutdown`.

use rajaperfd::{Daemon, DaemonConfig};

const USAGE: &str = "\
rajaperfd - RAJAPerf-rs profiling daemon

USAGE:
    rajaperfd [OPTIONS]

OPTIONS:
    --socket <PATH>    Unix socket to listen on [default: target/rajaperfd.sock]
    --store <PATH>     Content-addressed profile store root [default: target/rajaperfd-store]
    --queue <N>        Bounded request queue capacity [default: 16]
    --workers <N>      Worker threads executing requests [default: 2]
    --help             Print this help

The daemon serves run/sweep/analyze requests (line-delimited JSON, one
request per connection; see rajaperf-client) until a shutdown request
arrives, then drains queued and in-flight work and exits.
";

fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default_paths();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag {
            "--socket" => config.socket = value("--socket")?.into(),
            "--store" => config.store_dir = value("--store")?.into(),
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue requires a positive integer".to_string())?;
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers requires a positive integer".to_string())?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rajaperfd: {e}\n\n{USAGE}");
            std::process::exit(suite::SuiteExit::Usage.code());
        }
    };
    let socket = config.socket.clone();
    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("rajaperfd: failed to start on {}: {e}", socket.display());
            std::process::exit(suite::SuiteExit::Internal.code());
        }
    };
    println!(
        "rajaperfd {} listening on {}",
        suite::code_version(),
        daemon.socket().display()
    );
    if let Err(e) = daemon.wait() {
        eprintln!("rajaperfd: shutdown cleanup failed: {e}");
        std::process::exit(suite::SuiteExit::Internal.code());
    }
}
