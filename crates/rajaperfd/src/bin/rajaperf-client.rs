//! The `rajaperf-client` binary: submit one request to a running
//! `rajaperfd`, stream its events to stdout, and exit with the daemon's
//! `done.exit_code` (the `SuiteExit` taxonomy — an unreachable daemon is
//! exit 6, unavailable).

use rajaperfd::protocol::Request;
use serde_json::Value;
use std::path::PathBuf;

const USAGE: &str = "\
rajaperf-client - submit requests to a running rajaperfd

USAGE:
    rajaperf-client [--socket <PATH>] [--id <ID>] <COMMAND>

COMMANDS:
    run -- <rajaperf args>      Execute a campaign (e.g. run -- --kernels Basic_DAXPY --size 1000)
    sweep -- <rajaperf args>    Execute a tuning sweep (argv must include --sweep and --sweep-dir)
    analyze <DIR|store> [METRIC]  Compose <DIR>'s .cali.json profiles, or 'store'
                                  to stream every profile out of the daemon's
                                  content-addressed store [metric: avg#time.duration]
    ping                        Liveness probe
    stats                       Store and queue counters
    shutdown                    Graceful shutdown: drain in-flight work, then exit

OPTIONS:
    --socket <PATH>    Daemon socket [default: target/rajaperfd.sock]
    --id <ID>          Request id echoed on every event [default: cli-<pid>]

Events stream to stdout as JSON lines; the exit code mirrors the daemon's
done.exit_code (0 success, 2 usage, 5 kernel failures, 6 unavailable).
";

fn parse(mut args: Vec<String>) -> Result<(PathBuf, Request), String> {
    let mut socket = PathBuf::from("target/rajaperfd.sock");
    let mut id = format!("cli-{}", std::process::id());
    while let Some(flag) = args.first().map(String::as_str) {
        match flag {
            "--socket" => {
                args.remove(0);
                if args.is_empty() {
                    return Err("--socket requires a value".into());
                }
                socket = PathBuf::from(args.remove(0));
            }
            "--id" => {
                args.remove(0);
                if args.is_empty() {
                    return Err("--id requires a value".into());
                }
                id = args.remove(0);
            }
            _ => break,
        }
    }
    let Some(command) = args.first().cloned() else {
        return Err("no command given".into());
    };
    args.remove(0);
    let after_separator = |mut rest: Vec<String>| -> Vec<String> {
        if rest.first().map(String::as_str) == Some("--") {
            rest.remove(0);
        }
        rest
    };
    let req = match command.as_str() {
        "run" => Request::Run {
            id,
            argv: after_separator(args),
        },
        "sweep" => Request::Sweep {
            id,
            argv: after_separator(args),
        },
        "analyze" => {
            let Some(dir) = args.first().cloned() else {
                return Err("analyze requires a directory".into());
            };
            let metric = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "avg#time.duration".to_string());
            Request::Analyze { id, dir, metric }
        }
        "ping" => Request::Ping { id },
        "stats" => Request::Stats { id },
        "shutdown" => Request::Shutdown { id },
        other => return Err(format!("unknown command '{other}'")),
    };
    Ok((socket, req))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let (socket, req) = match parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("rajaperf-client: {e}\n\n{USAGE}");
            std::process::exit(suite::SuiteExit::Usage.code());
        }
    };
    // Write events with errors ignored: stdout closing early (`| head`)
    // must not kill the client before it reads the exit code from `done`.
    let mut out = std::io::stdout();
    let response = rajaperfd::submit_with(&socket, &req, &mut |event: &Value| {
        use std::io::Write;
        let _ = writeln!(out, "{event}");
    });
    match response {
        Ok(r) => std::process::exit(r.exit_code),
        Err(e) => {
            eprintln!(
                "rajaperf-client: cannot reach daemon at {}: {e}",
                socket.display()
            );
            std::process::exit(suite::SuiteExit::Unavailable.code());
        }
    }
}
