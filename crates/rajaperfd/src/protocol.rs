//! The daemon's wire protocol: line-delimited JSON over a unix socket.
//!
//! One request per connection. The client sends a single JSON object on
//! one line, then reads event objects (one per line) until `done`, after
//! which the server closes the connection. Streaming is therefore trivial —
//! no framing beyond `\n`, no multiplexing — and a tailing client sees
//! per-kernel progress the moment each kernel finishes.
//!
//! ```text
//! → {"kind":"run","id":"r1","argv":["--kernels","Basic_DAXPY","--size","1000"]}
//! ← {"event":"accepted","id":"r1","queue_depth":0}
//! ← {"event":"started","id":"r1"}
//! ← {"event":"progress","id":"r1","kernel":"Basic_DAXPY","index":1,"total":1,
//!    "outcome":"PASSED","time_s":0.0012}
//! ← {"event":"result","id":"r1","cached":false,"store_key":"5bd8…","report":{…}}
//! ← {"event":"done","id":"r1","exit_code":0}
//! ```
//!
//! Request kinds: `run` (a one-variant campaign; argv is `rajaperf` CLI
//! syntax), `sweep` (the batched cross-product; requires `--sweep`),
//! `analyze` (Thicket composition over a profile directory), `ping`,
//! `stats`, and `shutdown` (graceful: drains queued and in-flight requests,
//! then exits). Control kinds (`ping`/`stats`/`shutdown`) are answered
//! inline and never queue.
//!
//! Every failure is a *typed* error event (`code` from [`ErrorCode`]), and
//! `done.exit_code` mirrors the [`SuiteExit`] taxonomy, so scripted clients
//! branch on codes, not message text.

use serde_json::{json, Value};
use suite::SuiteExit;

/// Typed error codes the daemon emits in `error` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed request or invalid campaign arguments.
    Usage,
    /// Server-side failure (I/O, store write, poisoned state).
    Internal,
    /// Admission control refused the request: the bounded queue is full.
    QueueFull,
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
    /// The campaign executed but one or more kernels failed or timed out.
    KernelFailures,
    /// The request needs a process-global facility (fault injection) that
    /// another request currently owns.
    Busy,
    /// The request asks for a feature the daemon does not serve (e.g.
    /// `--trace`, whose collector is process-global).
    Unsupported,
}

impl ErrorCode {
    /// Wire name of the code.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Usage => "usage",
            ErrorCode::Internal => "internal",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::KernelFailures => "kernel_failures",
            ErrorCode::Busy => "busy",
            ErrorCode::Unsupported => "unsupported",
        }
    }

    /// The [`SuiteExit`] a client should exit with on this error.
    pub fn exit(self) -> SuiteExit {
        match self {
            ErrorCode::Usage | ErrorCode::Unsupported => SuiteExit::Usage,
            ErrorCode::Internal => SuiteExit::Internal,
            ErrorCode::QueueFull | ErrorCode::ShuttingDown | ErrorCode::Busy => {
                SuiteExit::Unavailable
            }
            ErrorCode::KernelFailures => SuiteExit::KernelFailures,
        }
    }

    /// Parse a wire name back to the code (client side).
    pub fn parse(name: &str) -> Option<ErrorCode> {
        Some(match name {
            "usage" => ErrorCode::Usage,
            "internal" => ErrorCode::Internal,
            "queue_full" => ErrorCode::QueueFull,
            "shutting_down" => ErrorCode::ShuttingDown,
            "kernel_failures" => ErrorCode::KernelFailures,
            "busy" => ErrorCode::Busy,
            "unsupported" => ErrorCode::Unsupported,
            _ => return None,
        })
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// One campaign run; `argv` is `rajaperf` CLI syntax.
    Run {
        /// Client-chosen request id, echoed on every event.
        id: String,
        /// CLI arguments, parsed server-side by [`suite::RunParams::parse`].
        argv: Vec<String>,
    },
    /// A batched sweep; `argv` must include `--sweep`.
    Sweep {
        /// Client-chosen request id.
        id: String,
        /// CLI arguments including the sweep flags.
        argv: Vec<String>,
    },
    /// Thicket composition over `dir`'s `.cali.json` profiles, or over the
    /// daemon's content-addressed store when `dir` is the literal `store`.
    /// Results are cached in the store under a key that folds in the build
    /// and columnar-engine versions plus the corpus content fingerprints.
    Analyze {
        /// Client-chosen request id.
        id: String,
        /// Directory of profiles to compose, or `store`.
        dir: String,
        /// Metric column for the statsframe.
        metric: String,
    },
    /// Liveness probe; answered inline with `pong`.
    Ping {
        /// Client-chosen request id.
        id: String,
    },
    /// Store/queue counters; answered inline.
    Stats {
        /// Client-chosen request id.
        id: String,
    },
    /// Graceful shutdown: drain queued and in-flight work, then exit.
    Shutdown {
        /// Client-chosen request id.
        id: String,
    },
}

impl Request {
    /// The request's id.
    pub fn id(&self) -> &str {
        match self {
            Request::Run { id, .. }
            | Request::Sweep { id, .. }
            | Request::Analyze { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id } => id,
        }
    }

    /// Parse one request line. `fallback_id` names the request when the
    /// client sent none (the server passes a connection counter).
    pub fn parse(line: &str, fallback_id: &str) -> Result<Request, String> {
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("request is not valid JSON: {e}"))?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("request has no string 'kind' field")?;
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or(fallback_id)
            .to_string();
        let argv = || -> Result<Vec<String>, String> {
            match v.get("argv") {
                None => Ok(Vec::new()),
                Some(Value::Array(items)) => items
                    .iter()
                    .map(|a| {
                        a.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "argv entries must be strings".to_string())
                    })
                    .collect(),
                Some(_) => Err("argv must be an array of strings".to_string()),
            }
        };
        match kind {
            "run" => Ok(Request::Run { id, argv: argv()? }),
            "sweep" => Ok(Request::Sweep { id, argv: argv()? }),
            "analyze" => {
                let dir = v
                    .get("dir")
                    .and_then(Value::as_str)
                    .ok_or("analyze requires a string 'dir' field")?
                    .to_string();
                let metric = v
                    .get("metric")
                    .and_then(Value::as_str)
                    .unwrap_or("avg#time.duration")
                    .to_string();
                Ok(Request::Analyze { id, dir, metric })
            }
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(format!("unknown request kind '{other}'")),
        }
    }

    /// The request as a wire line (client side), without the trailing `\n`.
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::Run { id, argv } => json!({"kind": "run", "id": id, "argv": argv.clone()}),
            Request::Sweep { id, argv } => {
                json!({"kind": "sweep", "id": id, "argv": argv.clone()})
            }
            Request::Analyze { id, dir, metric } => {
                json!({"kind": "analyze", "id": id, "dir": dir, "metric": metric})
            }
            Request::Ping { id } => json!({"kind": "ping", "id": id}),
            Request::Stats { id } => json!({"kind": "stats", "id": id}),
            Request::Shutdown { id } => json!({"kind": "shutdown", "id": id}),
        };
        v.to_string()
    }
}

/// Build an `accepted` event.
pub fn ev_accepted(id: &str, queue_depth: usize) -> Value {
    json!({"event": "accepted", "id": id, "queue_depth": queue_depth})
}

/// Build a `started` event.
pub fn ev_started(id: &str) -> Value {
    json!({"event": "started", "id": id})
}

/// Build a `progress` event from a [`suite::KernelProgress`].
pub fn ev_progress(id: &str, p: &suite::KernelProgress) -> Value {
    json!({
        "event": "progress",
        "id": id,
        "kernel": p.kernel.clone(),
        "index": p.index,
        "total": p.total,
        "outcome": p.outcome.clone(),
        "time_s": p.time_s,
    })
}

/// Build a `result` event carrying the (possibly cached) stored record.
pub fn ev_result(id: &str, cached: bool, store_key: Option<&str>, report: Value) -> Value {
    json!({
        "event": "result",
        "id": id,
        "cached": cached,
        "store_key": match store_key {
            Some(h) => Value::String(h.to_string()),
            None => Value::Null,
        },
        "report": report,
    })
}

/// Build a typed `error` event.
pub fn ev_error(id: &str, code: ErrorCode, message: &str) -> Value {
    json!({"event": "error", "id": id, "code": code.name(), "message": message})
}

/// Build the terminal `done` event.
pub fn ev_done(id: &str, exit: SuiteExit) -> Value {
    json!({"event": "done", "id": id, "exit_code": exit.code()})
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_roundtrip() {
        let reqs = [
            Request::Run {
                id: "r1".into(),
                argv: vec!["--kernels".into(), "Basic_DAXPY".into()],
            },
            Request::Sweep {
                id: "s1".into(),
                argv: vec!["--sweep".into()],
            },
            Request::Analyze {
                id: "a1".into(),
                dir: "/tmp/profiles".into(),
                metric: "avg#time.duration".into(),
            },
            Request::Ping { id: "p".into() },
            Request::Stats { id: "q".into() },
            Request::Shutdown { id: "x".into() },
        ];
        for r in reqs {
            let parsed = Request::parse(&r.to_line(), "fallback").unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn missing_id_uses_fallback_and_bad_lines_are_usage_errors() {
        let r = Request::parse("{\"kind\":\"ping\"}", "req-7").unwrap();
        assert_eq!(r.id(), "req-7");
        assert!(Request::parse("not json", "f").is_err());
        assert!(Request::parse("{\"kind\":\"warp\"}", "f").is_err());
        assert!(Request::parse("{\"id\":\"x\"}", "f").is_err(), "no kind");
        assert!(
            Request::parse("{\"kind\":\"run\",\"argv\":[1]}", "f").is_err(),
            "argv entries must be strings"
        );
        assert!(
            Request::parse("{\"kind\":\"analyze\"}", "f").is_err(),
            "analyze requires dir"
        );
    }

    #[test]
    fn error_codes_map_to_the_exit_taxonomy() {
        assert_eq!(ErrorCode::Usage.exit(), SuiteExit::Usage);
        assert_eq!(ErrorCode::Internal.exit(), SuiteExit::Internal);
        assert_eq!(ErrorCode::QueueFull.exit(), SuiteExit::Unavailable);
        assert_eq!(ErrorCode::ShuttingDown.exit(), SuiteExit::Unavailable);
        assert_eq!(ErrorCode::Busy.exit(), SuiteExit::Unavailable);
        assert_eq!(ErrorCode::KernelFailures.exit(), SuiteExit::KernelFailures);
        assert_eq!(ErrorCode::Unsupported.exit(), SuiteExit::Usage);
        for code in [
            ErrorCode::Usage,
            ErrorCode::Internal,
            ErrorCode::QueueFull,
            ErrorCode::ShuttingDown,
            ErrorCode::KernelFailures,
            ErrorCode::Busy,
            ErrorCode::Unsupported,
        ] {
            assert_eq!(ErrorCode::parse(code.name()), Some(code), "{}", code.name());
        }
        assert_eq!(ErrorCode::parse("warp"), None);
    }
}
