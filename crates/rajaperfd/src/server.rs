//! The daemon proper: accept loop, bounded request queue with admission
//! control, worker pool, the shared/exclusive execution gate, and graceful
//! shutdown.
//!
//! # Concurrency model
//!
//! One accept thread reads each connection's single request line and either
//! answers it inline (`ping`/`stats`/`shutdown` — cheap, never queued) or
//! enqueues it for the worker pool. The queue is *bounded*: when it is
//! full, admission control rejects the request immediately with a typed
//! `queue_full` error instead of stalling the accept loop — a loaded
//! daemon stays responsive and clients get an actionable signal.
//!
//! Workers execute campaigns concurrently on the shared rayon pool with
//! PR 5's per-kernel isolation (`catch_unwind`, watchdog, bounded retry):
//! a request that panics or hangs is *that request's* failure, reported to
//! its client as a typed error while concurrent requests continue.
//!
//! Requests that touch process-global facilities — fault injection
//! (`--faults`) and the sanitizer (`--sanitize`) — run under the exclusive
//! side of a shared/exclusive gate, so one request's injected faults can
//! never fire inside another request's kernels. Clean requests share the
//! gate and run concurrently. Fault requests additionally take
//! [`simfault::acquire`] ownership, which disarms on drop even if the
//! request unwinds.
//!
//! # Shutdown
//!
//! `shutdown` is handled on the accept thread: it flips the drain flag and
//! the accept loop exits, so no new work is admitted. Workers finish the
//! queue — queued and in-flight requests complete and their clients get
//! full responses — then exit. [`Daemon::wait`] joins everything and
//! removes the socket file.

use crate::protocol::{self as proto, ErrorCode, Request};
use crate::store::ProfileStore;
use serde_json::{json, Value};
use simsched::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use simsched::sync::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use suite::{RunParams, SuiteExit, SuiteReport};

/// Most ranks a daemon-served sweep may request: each rank is a worker
/// thread with a full suite execution context, and a shared daemon serves
/// many concurrent clients, so the admission bound is far below the CLI's
/// [`suite::params::MAX_RANKS`].
pub const MAX_SWEEP_RANKS: usize = 8;

/// Lock that survives a poisoned peer: the daemon must keep serving other
/// clients after one request's thread panics mid-lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket path to listen on (created fresh; a stale file is
    /// removed first).
    pub socket: PathBuf,
    /// Root of the content-addressed profile store.
    pub store_dir: PathBuf,
    /// Bounded queue capacity: requests beyond this are rejected with
    /// `queue_full`.
    pub queue_capacity: usize,
    /// Worker threads executing queued requests.
    pub workers: usize,
}

impl DaemonConfig {
    /// Defaults under `target/`: socket `target/rajaperfd.sock`, store
    /// `target/rajaperfd-store`, queue of 16, 2 workers.
    pub fn default_paths() -> DaemonConfig {
        DaemonConfig {
            socket: PathBuf::from("target/rajaperfd.sock"),
            store_dir: PathBuf::from("target/rajaperfd-store"),
            queue_capacity: 16,
            workers: 2,
        }
    }
}

/// Shared/exclusive execution gate. Clean requests enter shared and run
/// concurrently; requests arming process-global state (faults, sanitizer)
/// enter exclusive and run alone.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    shared: usize,
    exclusive: bool,
}

struct GateGuard<'a> {
    gate: &'a Gate,
    exclusive: bool,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            state: Mutex::labeled(GateState::default(), "rajaperfd.gate"),
            cv: Condvar::new(),
        }
    }

    fn shared(&self) -> GateGuard<'_> {
        let mut s = lock(&self.state);
        while s.exclusive {
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        s.shared += 1;
        GateGuard {
            gate: self,
            exclusive: false,
        }
    }

    fn exclusive(&self) -> GateGuard<'_> {
        let mut s = lock(&self.state);
        while s.exclusive || s.shared > 0 {
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        s.exclusive = true;
        GateGuard {
            gate: self,
            exclusive: true,
        }
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        let mut s = lock(&self.gate.state);
        if self.exclusive {
            s.exclusive = false;
        } else {
            s.shared -= 1;
        }
        drop(s);
        self.gate.cv.notify_all();
    }
}

/// A queued unit of work: the parsed request plus its client connection.
struct Job {
    req: Request,
    stream: UnixStream,
}

struct Shared {
    store: ProfileStore,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
    gate: Gate,
    served: AtomicU64,
    rejected: AtomicU64,
    req_seq: AtomicU64,
}

/// A running daemon. Drop order does not stop it — send a `shutdown`
/// request (e.g. `rajaperf-client shutdown`) and then [`Daemon::wait`].
pub struct Daemon {
    shared: Arc<Shared>,
    socket: PathBuf,
    accept: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Send one event line, ignoring a vanished client: a dropped connection
/// must not kill the campaign mid-run (its result still lands in the
/// store for the next identical request).
fn send(stream: &UnixStream, event: &Value) {
    let mut line = event.to_string();
    line.push('\n');
    let _ = (&*stream).write_all(line.as_bytes()).and_then(|_| (&*stream).flush());
}

impl Daemon {
    /// Bind the socket, open the store, and start the accept and worker
    /// threads. Returns once the daemon is accepting connections.
    pub fn start(config: DaemonConfig) -> std::io::Result<Daemon> {
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        if let Some(parent) = config.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let store = ProfileStore::open(&config.store_dir)?;
        let listener = UnixListener::bind(&config.socket)?;
        let shared = Arc::new(Shared {
            store,
            queue: Mutex::labeled(VecDeque::new(), "rajaperfd.queue"),
            queue_cv: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            gate: Gate::new(),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            req_seq: AtomicU64::new(0),
        });

        let mut workers = Vec::new();
        for w in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rajaperfd-worker-{w}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("rajaperfd-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        Ok(Daemon {
            shared,
            socket: config.socket,
            accept,
            workers,
        })
    }

    /// The socket path this daemon listens on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Block until the daemon shuts down (a `shutdown` request arrived and
    /// every queued and in-flight request drained), then clean up.
    pub fn wait(self) -> std::io::Result<()> {
        let _ = self.accept.join();
        // Belt and braces: the shutdown handler already notified, but a
        // worker parked between the flag flip and the notify must wake.
        self.shared.queue_cv.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
        if self.socket.exists() {
            std::fs::remove_file(&self.socket)?;
        }
        Ok(())
    }
}

fn accept_loop(listener: &UnixListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        handle_connection(stream, shared);
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Read the request line (with a deadline so a stalled client cannot block
/// the accept thread), then answer inline or enqueue.
fn handle_connection(stream: UnixStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let fallback = format!("req-{}", shared.req_seq.fetch_add(1, Ordering::Relaxed));
    let mut line = String::new();
    if BufReader::new(&stream).read_line(&mut line).is_err() || line.trim().is_empty() {
        send(
            &stream,
            &proto::ev_error(&fallback, ErrorCode::Usage, "no request line received"),
        );
        send(&stream, &proto::ev_done(&fallback, SuiteExit::Usage));
        return;
    }
    let _ = stream.set_read_timeout(None);
    let req = match Request::parse(line.trim(), &fallback) {
        Ok(r) => r,
        Err(e) => {
            send(&stream, &proto::ev_error(&fallback, ErrorCode::Usage, &e));
            send(&stream, &proto::ev_done(&fallback, SuiteExit::Usage));
            return;
        }
    };
    let id = req.id().to_string();
    match req {
        Request::Ping { .. } => {
            send(
                &stream,
                &json!({"event": "pong", "id": id, "version": suite::code_version()}),
            );
            send(&stream, &proto::ev_done(&id, SuiteExit::Success));
        }
        Request::Stats { .. } => {
            let s = shared.store.stats();
            send(
                &stream,
                &json!({
                    "event": "stats",
                    "id": id,
                    "store": json!({
                        "hits": s.hits,
                        "misses": s.misses,
                        "stores": s.stores,
                        "quarantined": s.quarantined,
                    }),
                    "queue_depth": lock(&shared.queue).len(),
                    "queue_capacity": shared.capacity,
                    "served": shared.served.load(Ordering::Relaxed),
                    "rejected": shared.rejected.load(Ordering::Relaxed),
                }),
            );
            send(&stream, &proto::ev_done(&id, SuiteExit::Success));
        }
        Request::Shutdown { .. } => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            send(&stream, &json!({"event": "shutting_down", "id": id}));
            send(&stream, &proto::ev_done(&id, SuiteExit::Success));
        }
        req @ (Request::Run { .. } | Request::Sweep { .. } | Request::Analyze { .. }) => {
            // Admission control: a full queue is an immediate typed
            // rejection, not a stall.
            let mut queue = lock(&shared.queue);
            if queue.len() >= shared.capacity {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                drop(queue);
                send(
                    &stream,
                    &proto::ev_error(
                        &id,
                        ErrorCode::QueueFull,
                        &format!("request queue is full ({} queued)", shared.capacity),
                    ),
                );
                send(&stream, &proto::ev_done(&id, SuiteExit::Unavailable));
                return;
            }
            send(&stream, &proto::ev_accepted(&id, queue.len()));
            queue.push_back(Job { req, stream });
            drop(queue);
            shared.queue_cv.notify_one();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // Timed wait so a missed notify can only delay, never hang,
                // the drain.
                let (q, _timeout) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = q;
            }
        };
        let Some(job) = job else { break };
        execute_job(job, shared);
        shared.served.fetch_add(1, Ordering::Relaxed);
    }
}

fn execute_job(job: Job, shared: &Arc<Shared>) {
    let id = job.req.id().to_string();
    let stream = job.stream;
    send(&stream, &proto::ev_started(&id));
    match job.req {
        Request::Run { argv, .. } => execute_run(&id, &argv, &stream, shared),
        Request::Sweep { argv, .. } => execute_sweep(&id, &argv, &stream, shared),
        Request::Analyze { dir, metric, .. } => {
            execute_analyze(&id, &dir, &metric, &stream, shared)
        }
        // Control requests never reach the queue.
        Request::Ping { .. } | Request::Stats { .. } | Request::Shutdown { .. } => {}
    }
}

/// Parse and daemon-validate campaign argv. Flags whose collectors are
/// process-global (event trace, lock-order) or that write server-side files
/// the client never named (free-form Caliper specs) are refused as
/// `unsupported` — the profile comes back inline in the result instead.
fn parse_campaign(argv: &[String]) -> Result<RunParams, (ErrorCode, String)> {
    let params =
        RunParams::parse(argv).map_err(|e| (ErrorCode::Usage, e))?;
    if params.caliper_spec.is_some() {
        return Err((
            ErrorCode::Unsupported,
            "--caliper is not served by the daemon; the result event carries the profile".into(),
        ));
    }
    if params.trace.is_some() || params.trace_folded.is_some() {
        return Err((
            ErrorCode::Unsupported,
            "--trace records a process-global timeline; run it via the one-shot CLI".into(),
        ));
    }
    if params.lock_order {
        return Err((
            ErrorCode::Unsupported,
            "--lock-order is a process-global diagnostic; run it via the one-shot CLI".into(),
        ));
    }
    if params.rank_worker.is_some() {
        return Err((
            ErrorCode::Unsupported,
            "--rank-worker is the internal child mode of a process campaign; \
             the daemon only supervises, never serves as a worker"
                .into(),
        ));
    }
    Ok(params)
}

/// The content-addressed store key of a run request: everything that
/// determines its results, in canonical (sorted-key) JSON. Mirrors the
/// sweep cell key and, like it, folds in [`suite::code_version`] so a
/// rebuild is a cache miss, never a stale hit.
pub fn run_key(params: &RunParams) -> Value {
    let kernels: Vec<Value> = params
        .selected_kernels()
        .iter()
        .filter(|k| k.info().variants.contains(&params.variant))
        .map(|k| {
            let info = k.info();
            json!({
                "kernel": info.name,
                "size": params.problem_size(&info),
                "reps": params.reps(&info),
            })
        })
        .collect();
    json!({
        "kind": "run",
        "code_version": suite::code_version(),
        "variant": params.variant.name(),
        "gpu_block_size": params.tuning.gpu_block_size,
        "kernels": Value::Array(kernels),
        "faults": match &params.faults {
            Some(s) => Value::String(s.clone()),
            None => Value::Null,
        },
        "sanitize": params.sanitize,
        "timeout_ms": match params.timeout {
            Some(d) => Value::from(d.as_millis() as u64),
            None => Value::Null,
        },
        "retries": params.max_retries,
    })
}

/// Serialize a [`SuiteReport`] for the wire and the store.
fn report_value(report: &SuiteReport) -> Value {
    let profile: Value = serde_json::from_str(&report.profile.to_json())
        .unwrap_or(Value::Null);
    json!({
        "variant": report.variant.name(),
        "all_passed": report.all_passed(),
        "entries": Value::Array(
            report
                .entries
                .iter()
                .map(|e| {
                    json!({
                        "kernel": e.kernel.clone(),
                        "size": e.problem_size,
                        "reps": e.reps,
                        "time_per_rep_s": e.result.time_per_rep(),
                        "checksum": e.result.checksum,
                    })
                })
                .collect()
        ),
        "outcomes": Value::Array(
            report
                .outcomes
                .iter()
                .map(|o| {
                    json!({
                        "kernel": o.kernel.clone(),
                        "outcome": o.outcome.label(),
                        "detail": o.outcome.detail(),
                    })
                })
                .collect()
        ),
        "profile": profile,
    })
}

fn execute_run(id: &str, argv: &[String], stream: &UnixStream, shared: &Arc<Shared>) {
    let params = match parse_campaign(argv) {
        Ok(p) => p,
        Err((code, msg)) => {
            send(stream, &proto::ev_error(id, code, &msg));
            send(stream, &proto::ev_done(id, code.exit()));
            return;
        }
    };
    if params.sweep {
        let msg = "use kind=sweep for --sweep campaigns".to_string();
        send(stream, &proto::ev_error(id, ErrorCode::Usage, &msg));
        send(stream, &proto::ev_done(id, SuiteExit::Usage));
        return;
    }

    // Served from the store: no kernel re-executes, no progress events —
    // the result is the previously measured record, byte for byte.
    let key = run_key(&params);
    let hash = ProfileStore::key_hash(&key);
    if let Some(record) = shared.store.get(&key) {
        let report = record.get("report").cloned().unwrap_or(Value::Null);
        send(stream, &json!({"event": "cached", "id": id, "store_key": hash.clone()}));
        send(stream, &proto::ev_result(id, true, Some(&hash), report));
        send(stream, &proto::ev_done(id, SuiteExit::Success));
        return;
    }

    let report = match run_contained(id, &params, stream, shared) {
        Ok(r) => r,
        Err((code, msg)) => {
            send(stream, &proto::ev_error(id, code, &msg));
            send(stream, &proto::ev_done(id, code.exit()));
            return;
        }
    };
    let rv = report_value(&report);
    // Cache only clean results: a genuine (un-injected) failure is not a
    // reproducible fact, and a faulty run's value is exercising the
    // injection, not replaying a cached answer.
    let stored = if report.all_passed() {
        match shared.store.put(&key, json!({"report": rv.clone()})) {
            Ok(h) => Some(h),
            Err(e) => {
                eprintln!("rajaperfd: store write failed for {id}: {e}");
                None
            }
        }
    } else {
        None
    };
    send(stream, &proto::ev_result(id, false, stored.as_deref(), rv));
    if report.all_passed() {
        send(stream, &proto::ev_done(id, SuiteExit::Success));
    } else {
        let failed: Vec<String> = report
            .outcomes
            .iter()
            .filter(|o| !o.outcome.is_pass())
            .map(|o| format!("{} {}", o.kernel, o.outcome.label()))
            .collect();
        send(
            stream,
            &proto::ev_error(
                id,
                ErrorCode::KernelFailures,
                &format!("kernel failure(s): {}", failed.join(", ")),
            ),
        );
        send(stream, &proto::ev_done(id, SuiteExit::KernelFailures));
    }
}

/// Execute the campaign under the correct side of the gate. Requests that
/// arm process-global state run exclusively and own the fault facility for
/// their duration; clean requests run concurrently.
fn run_contained(
    id: &str,
    params: &RunParams,
    stream: &UnixStream,
    shared: &Arc<Shared>,
) -> Result<SuiteReport, (ErrorCode, String)> {
    let progress = |p: &suite::KernelProgress| send(stream, &proto::ev_progress(id, p));
    let global_state = params.faults.is_some() || params.sanitize;
    let _gate = if global_state {
        shared.gate.exclusive()
    } else {
        shared.gate.shared()
    };
    let _ownership = if params.faults.is_some() {
        Some(
            simfault::acquire(id)
                .map_err(|e| (ErrorCode::Busy, e))?,
        )
    } else {
        None
    };
    // Per-kernel isolation (catch_unwind + watchdog) lives inside
    // run_suite; a panic escaping it would be a runner bug. Contain even
    // that, so one request's bug is its own typed internal error and the
    // worker survives to serve the next client.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        suite::run_suite_observed(params, Some(&progress))
    }))
    .map_err(|p| {
        (
            ErrorCode::Internal,
            format!("campaign panicked: {}", suite::exec::panic_message(&*p)),
        )
    })
}

fn execute_sweep(id: &str, argv: &[String], stream: &UnixStream, shared: &Arc<Shared>) {
    let params = match parse_campaign(argv) {
        Ok(p) => p,
        Err((code, msg)) => {
            send(stream, &proto::ev_error(id, code, &msg));
            send(stream, &proto::ev_done(id, code.exit()));
            return;
        }
    };
    if !params.sweep {
        let msg = "kind=sweep requires --sweep".to_string();
        send(stream, &proto::ev_error(id, ErrorCode::Usage, &msg));
        send(stream, &proto::ev_done(id, SuiteExit::Usage));
        return;
    }
    if params.sweep_dir.is_none() {
        // Concurrent sweeps into the shared default directory would race;
        // the daemon insists each sweep names its own.
        let msg = "daemon sweeps require an explicit --sweep-dir".to_string();
        send(stream, &proto::ev_error(id, ErrorCode::Usage, &msg));
        send(stream, &proto::ev_done(id, SuiteExit::Usage));
        return;
    }
    if params.ranks > MAX_SWEEP_RANKS {
        // Each rank is a worker thread holding a full suite execution
        // context; a shared daemon serves many clients, so it admits far
        // fewer ranks per sweep than the CLI allows.
        let msg = format!(
            "daemon sweeps accept at most --ranks {MAX_SWEEP_RANKS} (requested {})",
            params.ranks
        );
        send(stream, &proto::ev_error(id, ErrorCode::Unsupported, &msg));
        send(stream, &proto::ev_done(id, SuiteExit::Usage));
        return;
    }
    // Process isolation moves the armed fault/sanitize state into the
    // spawned children — each owns its own process globals — so the daemon
    // itself arms nothing: no exclusive gate, no fault-facility ownership.
    // This is the daemon-level payoff of lifting FAULT_CELL_GATE: fault
    // sweeps stop serializing the whole service.
    let process_ranked = params.rank_isolation == suite::params::RankIsolation::Process;
    let global_state = (params.faults.is_some() || params.sanitize) && !process_ranked;
    let summary = {
        let _gate = if global_state {
            shared.gate.exclusive()
        } else {
            shared.gate.shared()
        };
        let ownership = if params.faults.is_some() && !process_ranked {
            match simfault::acquire(id) {
                Ok(o) => Some(o),
                Err(e) => {
                    send(stream, &proto::ev_error(id, ErrorCode::Busy, &e));
                    send(stream, &proto::ev_done(id, SuiteExit::Unavailable));
                    return;
                }
            }
        } else {
            None
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            suite::run_sweep(&params)
        }));
        drop(ownership);
        match result {
            Ok(Ok(summary)) => summary,
            Ok(Err(e)) => {
                send(
                    stream,
                    &proto::ev_error(id, ErrorCode::Internal, &format!("sweep failed: {e}")),
                );
                send(stream, &proto::ev_done(id, SuiteExit::Internal));
                return;
            }
            Err(p) => {
                send(
                    stream,
                    &proto::ev_error(
                        id,
                        ErrorCode::Internal,
                        &format!("sweep panicked: {}", suite::exec::panic_message(&*p)),
                    ),
                );
                send(stream, &proto::ev_done(id, SuiteExit::Internal));
                return;
            }
        }
    };
    let report = json!({
        "dir": summary.dir.display().to_string(),
        "manifest": summary.manifest.display().to_string(),
        "quarantined": summary.quarantined.len(),
        "ranks": params.ranks,
        "isolation": params.rank_isolation.name(),
        "restart_budget": params.rank_restarts,
        "rank_restarts": Value::Array(
            summary
                .rank_restarts
                .iter()
                .map(|&r| Value::from(u64::from(r)))
                .collect()
        ),
        "casualties": Value::Array(
            summary
                .casualties
                .iter()
                .map(|c| {
                    json!({
                        "rank": c.rank,
                        "restarts": c.restarts,
                        "last_failure": c.last_failure.clone(),
                    })
                })
                .collect()
        ),
        "rank_stats": Value::Array(
            summary
                .rank_stats
                .iter()
                .enumerate()
                .map(|(rank, s)| {
                    json!({
                        "rank": rank,
                        "messages_sent": s.messages_sent,
                        "bytes_sent": s.bytes_sent,
                        "messages_received": s.messages_received,
                        "bytes_received": s.bytes_received,
                    })
                })
                .collect()
        ),
        "cells": Value::Array(
            summary
                .cells
                .iter()
                .map(|c| {
                    json!({
                        "variant": c.variant.name(),
                        "gpu_block_size": c.gpu_block_size,
                        "cached": c.cached,
                        "kernels_run": c.kernels_run,
                        "kernels_failed": c.kernels_failed,
                        "profile": c.profile.display().to_string(),
                    })
                })
                .collect()
        ),
    });
    send(stream, &proto::ev_result(id, false, None, report));
    if summary.kernels_failed() == 0 {
        send(stream, &proto::ev_done(id, SuiteExit::Success));
    } else {
        send(
            stream,
            &proto::ev_error(
                id,
                ErrorCode::KernelFailures,
                &format!("{} kernel failure(s) across sweep cells", summary.kernels_failed()),
            ),
        );
        send(stream, &proto::ev_done(id, SuiteExit::KernelFailures));
    }
}

/// One profile source for an analyze request: where to load it from plus
/// the content fingerprint that enters the cache key.
enum AnalyzeSource {
    /// A `.cali.json` file on disk (fingerprint = hash of its bytes).
    File(PathBuf, String),
    /// A store object carrying an inline `report.profile` (fingerprint =
    /// the object's content-addressed name).
    StoreObject(PathBuf, String),
}

impl AnalyzeSource {
    fn fingerprint(&self) -> &str {
        match self {
            AnalyzeSource::File(_, f) | AnalyzeSource::StoreObject(_, f) => f,
        }
    }

    /// Load and parse the profile. `Ok(None)` means the source carries no
    /// profile (e.g. a store object from a non-run record) and is skipped
    /// silently; `Err` is a skip with a reason.
    fn load(&self) -> Result<Option<thicket::ProfileData>, String> {
        match self {
            AnalyzeSource::File(path, _) => {
                let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
                thicket::ProfileData::from_caliper_json(&text)
                    .map(Some)
                    .map_err(|e| e.to_string())
            }
            AnalyzeSource::StoreObject(path, _) => {
                let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
                let record: Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
                let Some(profile) = record.get("report").and_then(|r| r.get("profile")) else {
                    return Ok(None);
                };
                if profile.is_null() {
                    return Ok(None);
                }
                thicket::ProfileData::from_caliper_json(&profile.to_string())
                    .map(Some)
                    .map_err(|e| e.to_string())
            }
        }
    }
}

/// Enumerate an analyze request's corpus. `store` addresses the daemon's
/// own content-addressed store; anything else is a directory of
/// `.cali.json` profiles. Sources come back sorted by fingerprint so the
/// cache key is independent of directory iteration order.
fn analyze_sources(dir: &str, store: &ProfileStore) -> Result<Vec<AnalyzeSource>, String> {
    let mut sources = Vec::new();
    if dir == "store" {
        let objects = store.root().join("objects");
        let shards = std::fs::read_dir(&objects)
            .map_err(|e| format!("cannot read {}: {e}", objects.display()))?;
        for shard in shards.flatten() {
            let Ok(files) = std::fs::read_dir(shard.path()) else { continue };
            for f in files.flatten() {
                let path = f.path();
                if path.extension().is_some_and(|e| e == "json") {
                    // The file stem *is* the object's content hash.
                    let fp = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    sources.push(AnalyzeSource::StoreObject(path, fp));
                }
            }
        }
    } else {
        let dir = Path::new(dir);
        let entries = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.to_string_lossy().ends_with(".cali.json") {
                let fp = match std::fs::read(&path) {
                    Ok(bytes) => {
                        crate::store::content_hash(&String::from_utf8_lossy(&bytes))
                    }
                    // Unreadable now: fingerprint the failure so the miss
                    // re-attempts (and re-reports) rather than caching it.
                    Err(e) => crate::store::content_hash(&format!("unreadable:{e}")),
                };
                sources.push(AnalyzeSource::File(path, fp));
            }
        }
    }
    sources.sort_by(|a, b| a.fingerprint().cmp(b.fingerprint()));
    Ok(sources)
}

/// The cache key of an analyze request: the requested metric plus the exact
/// corpus content, versioned by both the build and the analysis engine so a
/// rebuilt daemon or a changed columnar layout is a miss, never a stale hit.
fn analyze_key(metric: &str, sources: &[AnalyzeSource]) -> Value {
    json!({
        "kind": "analyze",
        "code_version": suite::code_version(),
        "engine": thicket::ENGINE_VERSION,
        "metric": metric,
        "corpus": Value::Array(
            sources
                .iter()
                .map(|s| Value::String(s.fingerprint().to_string()))
                .collect()
        ),
    })
}

fn execute_analyze(id: &str, dir: &str, metric: &str, stream: &UnixStream, shared: &Arc<Shared>) {
    let sources = match analyze_sources(dir, &shared.store) {
        Ok(s) => s,
        Err(msg) => {
            send(stream, &proto::ev_error(id, ErrorCode::Internal, &msg));
            send(stream, &proto::ev_done(id, SuiteExit::Internal));
            return;
        }
    };

    // A corpus already analyzed under this build + engine + metric is a
    // pure replay: no JSON re-parse, no re-composition, no aggregation.
    let key = analyze_key(metric, &sources);
    let hash = ProfileStore::key_hash(&key);
    if let Some(record) = shared.store.get_derived(&key) {
        let report = record.get("report").cloned().unwrap_or(Value::Null);
        send(stream, &json!({"event": "cached", "id": id, "store_key": hash.clone()}));
        send(stream, &proto::ev_result(id, true, Some(&hash), report));
        send(stream, &proto::ev_done(id, SuiteExit::Success));
        return;
    }

    // Stream the corpus through the incremental ingester one profile at a
    // time — the session compacts periodically, so memory tracks the
    // compacted frame, not a vector of parsed JSON documents.
    let mut session = thicket::IngestSession::new();
    let mut skipped = 0usize;
    for source in &sources {
        match source.load() {
            Ok(Some(profile)) => session.ingest(&profile),
            Ok(None) => {}
            Err(_) => skipped += 1,
        }
    }
    let mut tk = session.finish();
    if tk.profiles.is_empty() {
        send(
            stream,
            &proto::ev_error(
                id,
                ErrorCode::Internal,
                &format!("no usable profiles in {dir}"),
            ),
        );
        send(stream, &proto::ev_done(id, SuiteExit::Internal));
        return;
    }
    let mean = tk.stats(metric, thicket::Stat::Mean);
    let mn = tk.stats(metric, thicket::Stat::Min);
    let mx = tk.stats(metric, thicket::Stat::Max);
    let mut rows = Vec::new();
    for nid in 0..tk.nodes.len() {
        let m = tk.stat_value(&mean, nid).unwrap_or(f64::NAN);
        if m.is_nan() {
            continue;
        }
        rows.push(json!({
            "node": tk.nodes[nid].path.join("/"),
            "mean": m,
            "min": tk.stat_value(&mn, nid).unwrap_or(f64::NAN),
            "max": tk.stat_value(&mx, nid).unwrap_or(f64::NAN),
        }));
    }
    let report = json!({
        "profiles": tk.profiles.len(),
        "nodes": tk.nodes.len(),
        "columns": tk.column_names().len(),
        "skipped": skipped,
        "metric": metric,
        "table": Value::Array(rows),
    });
    let stored = match shared.store.put_derived(&key, json!({"report": report.clone()})) {
        Ok(h) => Some(h),
        Err(e) => {
            eprintln!("rajaperfd: store write failed for {id}: {e}");
            None
        }
    };
    send(stream, &proto::ev_result(id, false, stored.as_deref(), report));
    send(stream, &proto::ev_done(id, SuiteExit::Success));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_key_is_canonical_and_build_versioned() {
        let a = RunParams::parse(&[
            "--kernels".to_string(),
            "Basic_DAXPY".to_string(),
            "--size".to_string(),
            "1000".to_string(),
        ])
        .unwrap();
        // Same campaign spelled differently (duplicate name) → same key.
        let b = RunParams::parse(&[
            "--kernels".to_string(),
            "Basic_DAXPY,Basic_DAXPY".to_string(),
            "--size".to_string(),
            "1000".to_string(),
        ])
        .unwrap();
        assert_eq!(run_key(&a), run_key(&b));
        assert_eq!(
            run_key(&a)["code_version"].as_str(),
            Some(suite::code_version())
        );
        // Different size → different key.
        let c = RunParams {
            explicit_size: Some(2000),
            ..a.clone()
        };
        assert_ne!(
            ProfileStore::key_hash(&run_key(&a)),
            ProfileStore::key_hash(&run_key(&c))
        );
    }

    #[test]
    fn gate_excludes_exclusive_from_shared() {
        let gate = Gate::new();
        let s1 = gate.shared();
        let s2 = gate.shared();
        drop(s1);
        drop(s2);
        let e = gate.exclusive();
        drop(e);
        let _s3 = gate.shared();
    }
}
