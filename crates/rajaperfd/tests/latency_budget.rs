//! Time-budget tests for daemon round-trip latency: `#[test]` functions
//! asserting wall-clock thresholds, runnable via `cargo test --release`.
//!
//! Shape follows the repo's performance-testing convention: median-of-3
//! measurement against a fixed budget, with CI-adapted thresholds (3× when
//! `CI=true`) and a further allowance for unoptimized builds. The point is
//! catching order-of-magnitude service regressions (an accept loop that
//! stalls, a store hit that re-executes kernels), not microbenchmarking —
//! that is what `cargo bench` is for.

use rajaperfd::{protocol::Request, Daemon, DaemonConfig};
use std::path::PathBuf;
use std::time::Duration;

/// Budget scaling: shared CI runners are noisy (3×), and debug builds run
/// the whole stack unoptimized (10×).
fn scaled(base: Duration) -> Duration {
    let mut budget = base;
    if std::env::var("CI").is_ok_and(|v| v == "true" || v == "1") {
        budget *= 3;
    }
    if cfg!(debug_assertions) {
        budget *= 10;
    }
    budget
}

/// Median wall time of three runs of `op`.
fn median_of_3(mut op: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..3)
        .map(|_| {
            // Budget tests measure real wall-clock by design; the virtual
            // clock shim would hide exactly the stalls this guards against.
            #[allow(clippy::disallowed_methods)]
            let start = std::time::Instant::now();
            op();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[1]
}

fn start_daemon(tag: &str) -> (Daemon, PathBuf) {
    let root = std::env::temp_dir().join(format!("rajaperfd_lat_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let daemon = Daemon::start(DaemonConfig {
        socket: root.join("d.sock"),
        store_dir: root.join("store"),
        queue_capacity: 8,
        workers: 2,
    })
    .expect("daemon starts");
    (daemon, root)
}

fn teardown(daemon: Daemon, root: &PathBuf) {
    let socket = daemon.socket().to_path_buf();
    rajaperfd::submit(&socket, &Request::Shutdown { id: "end".into() }).unwrap();
    daemon.wait().unwrap();
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn ping_round_trip_stays_within_budget() {
    let (daemon, root) = start_daemon("ping");
    let socket = daemon.socket().to_path_buf();
    // Warm-up connection (socket setup, first-touch allocation).
    rajaperfd::submit(&socket, &Request::Ping { id: "warm".into() }).unwrap();

    let budget = scaled(Duration::from_millis(50));
    let median = median_of_3(|| {
        let resp = rajaperfd::submit(&socket, &Request::Ping { id: "p".into() }).unwrap();
        assert_eq!(resp.exit_code, 0);
    });
    assert!(
        median <= budget,
        "ping round-trip median {median:?} exceeds budget {budget:?}"
    );
    teardown(daemon, &root);
}

#[test]
fn store_hit_stays_within_budget() {
    let (daemon, root) = start_daemon("hit");
    let socket = daemon.socket().to_path_buf();
    let req = Request::Run {
        id: "seed".into(),
        argv: ["--kernels", "Basic_DAXPY", "--size", "1000", "--reps", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    // First request measures for real and populates the store.
    let first = rajaperfd::submit(&socket, &req).unwrap();
    assert_eq!(first.exit_code, 0);

    // A store hit is a read + key check + reply — it must be far below
    // kernel-execution time, or the cache is not doing its job.
    let budget = scaled(Duration::from_millis(100));
    let median = median_of_3(|| {
        let resp = rajaperfd::submit(&socket, &req).unwrap();
        assert_eq!(resp.exit_code, 0);
        assert!(resp.cached(), "repeat request must be served from the store");
    });
    assert!(
        median <= budget,
        "store-hit round-trip median {median:?} exceeds budget {budget:?}"
    );
    teardown(daemon, &root);
}
