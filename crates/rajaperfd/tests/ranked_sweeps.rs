//! Daemon-side admission and execution of rank-sharded sweeps (`--ranks`).

use rajaperfd::{protocol::Request, Daemon, DaemonConfig};
use serde_json::Value;
use std::path::PathBuf;

fn start_daemon(tag: &str) -> (Daemon, PathBuf) {
    let root = std::env::temp_dir().join(format!("rajaperfd_rank_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let daemon = Daemon::start(DaemonConfig {
        socket: root.join("d.sock"),
        store_dir: root.join("store"),
        queue_capacity: 8,
        workers: 2,
    })
    .expect("daemon starts");
    (daemon, root)
}

fn teardown(daemon: Daemon, root: &PathBuf) {
    let socket = daemon.socket().to_path_buf();
    rajaperfd::submit(&socket, &Request::Shutdown { id: "end".into() }).unwrap();
    daemon.wait().unwrap();
    std::fs::remove_dir_all(root).ok();
}

fn sweep_request(id: &str, dir: &std::path::Path, extra: &[&str]) -> Request {
    let mut argv: Vec<String> = [
        "--sweep",
        "--sweep-dir",
        &dir.display().to_string(),
        "--kernels",
        "Basic_DAXPY",
        "--size",
        "1000",
        "--reps",
        "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    argv.extend(extra.iter().map(|s| s.to_string()));
    Request::Sweep {
        id: id.into(),
        argv,
    }
}

#[test]
fn sweep_rejects_ranks_beyond_daemon_bound() {
    let (daemon, root) = start_daemon("cap");
    let socket = daemon.socket().to_path_buf();
    let over = format!("{}", rajaperfd::server::MAX_SWEEP_RANKS + 1);
    let resp = rajaperfd::submit(
        &socket,
        &sweep_request("over", &root.join("sweep"), &["--ranks", &over]),
    )
    .unwrap();
    let (code, msg) = resp.error().expect("typed error");
    assert_eq!(code, "unsupported");
    assert!(msg.contains("--ranks"), "{msg}");
    assert_eq!(resp.exit_code, 2, "usage exit");
    teardown(daemon, &root);
}

#[test]
fn ranked_sweep_executes_and_reports_rank_traffic() {
    let (daemon, root) = start_daemon("run");
    let socket = daemon.socket().to_path_buf();
    let sweep_dir = root.join("sweep");
    let resp = rajaperfd::submit(
        &socket,
        &sweep_request("rk", &sweep_dir, &["--ranks", "2"]),
    )
    .unwrap();
    assert_eq!(resp.exit_code, 0, "events: {:?}", resp.events);
    let report = resp.report().expect("sweep result report");
    assert_eq!(report.get("ranks").and_then(Value::as_i64), Some(2));
    let stats = report
        .get("rank_stats")
        .and_then(Value::as_array)
        .expect("rank_stats array");
    assert_eq!(stats.len(), 2);
    // The gather protocol itself is traffic: rank 1 reports to rank 0.
    let received: i64 = stats
        .iter()
        .filter_map(|s| s.get("messages_received").and_then(Value::as_i64))
        .sum();
    assert!(received >= 1, "rank 0 must have received gather reports");
    assert!(sweep_dir.join("manifest.json").is_file());
    teardown(daemon, &root);
}
