//! Daemon-side admission and execution of rank-sharded sweeps (`--ranks`).

use rajaperfd::{protocol::Request, Daemon, DaemonConfig};
use serde_json::Value;
use std::path::PathBuf;

fn start_daemon(tag: &str) -> (Daemon, PathBuf) {
    let root = std::env::temp_dir().join(format!("rajaperfd_rank_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let daemon = Daemon::start(DaemonConfig {
        socket: root.join("d.sock"),
        store_dir: root.join("store"),
        queue_capacity: 8,
        workers: 2,
    })
    .expect("daemon starts");
    (daemon, root)
}

fn teardown(daemon: Daemon, root: &PathBuf) {
    let socket = daemon.socket().to_path_buf();
    rajaperfd::submit(&socket, &Request::Shutdown { id: "end".into() }).unwrap();
    daemon.wait().unwrap();
    std::fs::remove_dir_all(root).ok();
}

fn sweep_request(id: &str, dir: &std::path::Path, extra: &[&str]) -> Request {
    let mut argv: Vec<String> = [
        "--sweep",
        "--sweep-dir",
        &dir.display().to_string(),
        "--kernels",
        "Basic_DAXPY",
        "--size",
        "1000",
        "--reps",
        "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    argv.extend(extra.iter().map(|s| s.to_string()));
    Request::Sweep {
        id: id.into(),
        argv,
    }
}

/// The supervisor resolves its worker binary relative to the running
/// executable; under `cargo test` that is `target/debug/rajaperf` next to
/// the `deps/` test binary. The binary belongs to the `suite` crate, so a
/// bare `cargo test -p rajaperfd` may not have built it — skip then.
fn worker_binary_available() -> bool {
    std::env::current_exe()
        .ok()
        .and_then(|exe| Some(exe.parent()?.parent()?.join("rajaperf")))
        .is_some_and(|p| p.is_file())
}

/// Live `--rank-worker` processes whose cmdline mentions `marker`.
fn orphan_workers(marker: &str) -> Vec<u32> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return out;
    };
    for e in entries.flatten() {
        let Some(pid) = e.file_name().to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        let cmd = String::from_utf8_lossy(&cmdline).replace('\0', " ");
        if cmd.contains("--rank-worker") && cmd.contains(marker) {
            out.push(pid);
        }
    }
    out
}

#[test]
fn sweep_rejects_ranks_beyond_daemon_bound() {
    let (daemon, root) = start_daemon("cap");
    let socket = daemon.socket().to_path_buf();
    let over = format!("{}", rajaperfd::server::MAX_SWEEP_RANKS + 1);
    let resp = rajaperfd::submit(
        &socket,
        &sweep_request("over", &root.join("sweep"), &["--ranks", &over]),
    )
    .unwrap();
    let (code, msg) = resp.error().expect("typed error");
    assert_eq!(code, "unsupported");
    assert!(msg.contains("--ranks"), "{msg}");
    assert_eq!(resp.exit_code, 2, "usage exit");
    teardown(daemon, &root);
}

#[test]
fn ranked_sweep_executes_and_reports_rank_traffic() {
    let (daemon, root) = start_daemon("run");
    let socket = daemon.socket().to_path_buf();
    let sweep_dir = root.join("sweep");
    let resp = rajaperfd::submit(
        &socket,
        &sweep_request("rk", &sweep_dir, &["--ranks", "2"]),
    )
    .unwrap();
    assert_eq!(resp.exit_code, 0, "events: {:?}", resp.events);
    let report = resp.report().expect("sweep result report");
    assert_eq!(report.get("ranks").and_then(Value::as_i64), Some(2));
    let stats = report
        .get("rank_stats")
        .and_then(Value::as_array)
        .expect("rank_stats array");
    assert_eq!(stats.len(), 2);
    // The gather protocol itself is traffic: rank 1 reports to rank 0.
    let received: i64 = stats
        .iter()
        .filter_map(|s| s.get("messages_received").and_then(Value::as_i64))
        .sum();
    assert!(received >= 1, "rank 0 must have received gather reports");
    assert!(sweep_dir.join("manifest.json").is_file());
    teardown(daemon, &root);
}

#[test]
fn process_ranked_sweep_reports_isolation_and_leaves_no_orphans() {
    if !worker_binary_available() {
        eprintln!("skipping: target/debug/rajaperf not built (run the workspace tests)");
        return;
    }
    let (daemon, root) = start_daemon("proc");
    let socket = daemon.socket().to_path_buf();
    let sweep_dir = root.join("sweep");
    // `--rank-restarts` must survive the daemon's request parsing intact.
    let resp = rajaperfd::submit(
        &socket,
        &sweep_request(
            "proc",
            &sweep_dir,
            &[
                "--rank-isolation",
                "process",
                "--ranks",
                "2",
                "--rank-restarts",
                "1",
            ],
        ),
    )
    .unwrap();
    assert_eq!(resp.exit_code, 0, "events: {:?}", resp.events);
    let report = resp.report().expect("sweep result report");
    assert_eq!(report.get("isolation").and_then(Value::as_str), Some("process"));
    assert_eq!(report.get("restart_budget").and_then(Value::as_i64), Some(1));
    let restarts = report
        .get("rank_restarts")
        .and_then(Value::as_array)
        .expect("rank_restarts array");
    assert_eq!(restarts.len(), 2);
    assert!(restarts.iter().all(|r| r.as_i64() == Some(0)));
    let casualties = report
        .get("casualties")
        .and_then(Value::as_array)
        .expect("casualties array");
    assert!(casualties.is_empty(), "{casualties:?}");
    let stats = report
        .get("rank_stats")
        .and_then(Value::as_array)
        .expect("rank_stats array");
    assert_eq!(stats.len(), 2);
    assert!(sweep_dir.join("manifest.json").is_file());

    // The absolute sweep dir appears in every worker's argv — a unique
    // marker for this campaign. After daemon shutdown nothing may linger.
    let marker = sweep_dir.display().to_string();
    teardown(daemon, &root);
    let leftovers = orphan_workers(&marker);
    assert!(
        leftovers.is_empty(),
        "daemon shutdown must not leak rank workers: {leftovers:?}"
    );
}

#[test]
fn rank_worker_mode_is_refused_by_the_daemon() {
    let (daemon, root) = start_daemon("worker");
    let socket = daemon.socket().to_path_buf();
    let resp = rajaperfd::submit(
        &socket,
        &sweep_request("wk", &root.join("sweep"), &["--rank-worker", "0/2"]),
    )
    .unwrap();
    let (code, msg) = resp.error().expect("typed error");
    assert_eq!(code, "unsupported");
    assert!(msg.contains("--rank-worker"), "{msg}");
    assert_eq!(resp.exit_code, 2, "usage exit");
    teardown(daemon, &root);
}
