//! Suite run reports: timing tables, CSV, cross-variant checksum
//! validation — the "various text-based files" RAJAPerf generates (§II-A) —
//! and the `--sanitize` hazard section.

use crate::exec::{KernelOutcome, OutcomeRecord};
use kernels::sanitize::SanitizeOutcome;
use kernels::{RunResult, VariantId};
use std::collections::BTreeMap;

/// One kernel execution within a suite run.
#[derive(Debug, Clone)]
pub struct TimingEntry {
    /// Full kernel name.
    pub kernel: String,
    /// Group name.
    pub group: String,
    /// Variant executed.
    pub variant: VariantId,
    /// Problem size used.
    pub problem_size: usize,
    /// Repetitions executed.
    pub reps: usize,
    /// Execution result.
    pub result: RunResult,
}

impl TimingEntry {
    /// Achieved memory bandwidth, B/s.
    pub fn bandwidth(&self) -> f64 {
        let t = self.result.time_per_rep();
        if t > 0.0 {
            (self.result.metrics.bytes_read + self.result.metrics.bytes_written) / t
        } else {
            0.0
        }
    }

    /// Achieved FLOP rate, FLOP/s.
    pub fn flop_rate(&self) -> f64 {
        let t = self.result.time_per_rep();
        if t > 0.0 {
            self.result.metrics.flops / t
        } else {
            0.0
        }
    }
}

/// The result of one suite run.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Variant this run executed.
    pub variant: VariantId,
    /// Per-kernel results in execution order.
    pub entries: Vec<TimingEntry>,
    /// The Caliper profile of the run.
    pub profile: caliper::Profile,
    /// Files written by the configured Caliper outputs.
    pub outputs: Vec<std::path::PathBuf>,
    /// Sanitizer results when the run was invoked with `--sanitize`.
    pub sanitize: Option<SanitizeSection>,
    /// Lock-order analysis when the run was invoked with `--lock-order`:
    /// the rendered cycle report (both acquisition stacks, region
    /// attribution) when cycles were found, or a one-line all-clear.
    pub lock_order: Option<String>,
    /// Per-kernel execution outcomes, one per selected kernel that supports
    /// the variant — including the failed/timed-out ones that have no
    /// [`TimingEntry`].
    pub outcomes: Vec<OutcomeRecord>,
}

/// The `--sanitize` section of a suite report: one outcome per sanitized
/// kernel variant, plus the sweep's aggregate cost.
#[derive(Debug, Clone, Default)]
pub struct SanitizeSection {
    /// Per-kernel-variant sanitizer outcomes in execution order.
    pub outcomes: Vec<SanitizeOutcome>,
}

impl SanitizeSection {
    /// True when no sanitized kernel produced a finding.
    pub fn all_clean(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_clean())
    }

    /// Total hazard occurrences across the sweep.
    pub fn total_occurrences(&self) -> u64 {
        self.outcomes.iter().map(|o| o.occurrences).sum()
    }

    /// Summed sanitized wall time across the sweep.
    pub fn total_time(&self) -> std::time::Duration {
        self.outcomes.iter().map(|o| o.sanitized_time).sum()
    }

    /// Summed unsanitized baseline wall time across the sweep.
    pub fn total_baseline(&self) -> std::time::Duration {
        self.outcomes.iter().map(|o| o.baseline_time).sum()
    }

    /// Render the hazard report section.
    pub fn render(&self) -> String {
        let mut out = String::from("Sanitizer (simsan) report\n");
        out.push_str(&format!(
            "{:<28} {:<12} {:>8} {:>12} {:>10}\n",
            "Kernel", "Variant", "Sites", "Occurrences", "Overhead"
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "{:<28} {:<12} {:>8} {:>12} {:>9.1}x\n",
                o.kernel,
                o.variant.name(),
                o.findings.len(),
                o.occurrences,
                o.overhead_ratio(),
            ));
        }
        for o in &self.outcomes {
            for f in &o.findings {
                out.push_str(&format!("  {f}\n"));
            }
        }
        out.push_str(&format!(
            "{} kernel variant(s) sanitized, {} hazard occurrence(s): {}\n",
            self.outcomes.len(),
            self.total_occurrences(),
            if self.all_clean() { "CLEAN" } else { "HAZARDS DETECTED" }
        ));
        out
    }
}

impl SuiteReport {
    /// Render the RunTimes-style text table.
    pub fn render_timing(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Variant: {}\n", self.variant.name()));
        out.push_str(&format!(
            "{:<28} {:>12} {:>6} {:>14} {:>14} {:>14}\n",
            "Kernel", "Size", "Reps", "Time/rep (s)", "GB/s", "GFLOP/s"
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{:<28} {:>12} {:>6} {:>14.6e} {:>14.3} {:>14.3}\n",
                e.kernel,
                e.problem_size,
                e.reps,
                e.result.time_per_rep(),
                e.bandwidth() / 1e9,
                e.flop_rate() / 1e9,
            ));
        }
        out
    }

    /// Serialize the run as CSV (`kernel,group,variant,size,reps,time_s,
    /// bytes,flops,checksum`).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("kernel,group,variant,size,reps,time_per_rep_s,bytes_per_rep,flops_per_rep,checksum\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{},{},{},{},{},{:e},{:e},{:e},{:e}\n",
                e.kernel,
                e.group,
                e.variant.name(),
                e.problem_size,
                e.reps,
                e.result.time_per_rep(),
                e.result.metrics.bytes_read + e.result.metrics.bytes_written,
                e.result.metrics.flops,
                e.result.checksum,
            ));
        }
        out
    }

    /// Look up a kernel's entry.
    pub fn entry(&self, kernel: &str) -> Option<&TimingEntry> {
        self.entries.iter().find(|e| e.kernel == kernel)
    }

    /// Look up a kernel's execution outcome.
    pub fn outcome(&self, kernel: &str) -> Option<&KernelOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.kernel == kernel)
            .map(|o| &o.outcome)
    }

    /// True when every executed kernel passed (retried passes count).
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.outcome.is_pass())
    }

    /// Kernels that failed or timed out.
    pub fn failed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.outcome.is_pass()).count()
    }

    /// Total retries absorbed across the run.
    pub fn retries_total(&self) -> u32 {
        self.outcomes
            .iter()
            .map(|o| match o.outcome {
                KernelOutcome::Passed { retries } | KernelOutcome::Failed { retries, .. } => {
                    retries
                }
                _ => 0,
            })
            .sum()
    }

    /// Render the per-kernel outcome section (status + detail per kernel,
    /// then a pass/fail summary line). The interesting report when faults
    /// are armed — and after any partial failure.
    pub fn render_outcomes(&self) -> String {
        let mut out = String::from("Kernel outcomes\n");
        for o in &self.outcomes {
            let detail = o.outcome.detail();
            out.push_str(&format!(
                "{:<28} {:<12} {:<12}{}{}\n",
                o.kernel,
                o.variant.name(),
                o.outcome.label(),
                if detail.is_empty() { "" } else { "  " },
                detail,
            ));
        }
        let failed = self.failed_count();
        out.push_str(&format!(
            "{} kernel(s): {} passed, {} failed{}\n",
            self.outcomes.len(),
            self.outcomes.len() - failed,
            failed,
            match self.retries_total() {
                0 => String::new(),
                r => format!(", {r} transient failure(s) retried"),
            }
        ));
        out
    }
}

/// Outcome of comparing one variant's checksum against its kernel's
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// Checksum agrees with the reference.
    Pass,
    /// Checksum diverges from the reference.
    Fail,
    /// This entry *is* the fallback reference: the kernel does not run
    /// under the primary reference variant, so this variant (the first that
    /// ran the kernel) anchors the comparison and has nothing to be
    /// compared against. Rendered as `n/a`, and not a failure.
    Reference,
}

/// Cross-variant checksum validation table.
#[derive(Debug, Clone)]
pub struct ChecksumReport {
    /// kernel → per-variant (variant, checksum, status vs. reference).
    pub rows: BTreeMap<String, Vec<(VariantId, f64, CheckStatus)>>,
}

impl ChecksumReport {
    /// True when no variant of any kernel diverged from its reference
    /// (fallback-reference entries count as agreement, not failure).
    pub fn all_pass(&self) -> bool {
        self.rows
            .values()
            .all(|row| row.iter().all(|(_, _, st)| *st != CheckStatus::Fail))
    }

    /// Render the checksum table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Checksum report (reference = first variant that ran the kernel)\n");
        for (kernel, row) in &self.rows {
            out.push_str(&format!("{kernel}\n"));
            for (v, cs, st) in row {
                out.push_str(&format!(
                    "    {:<12} {:>24.12e}  {}\n",
                    v.name(),
                    cs,
                    match st {
                        CheckStatus::Pass => "PASS",
                        CheckStatus::Fail => "FAIL",
                        CheckStatus::Reference => "n/a (reference)",
                    }
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::AnalyticMetrics;
    use std::time::Duration;

    fn entry(kernel: &str, time_s: f64) -> TimingEntry {
        TimingEntry {
            kernel: kernel.to_string(),
            group: "Stream".to_string(),
            variant: VariantId::BaseSeq,
            problem_size: 1000,
            reps: 2,
            result: RunResult {
                checksum: 1.0,
                time: Duration::from_secs_f64(time_s),
                reps: 2,
                metrics: AnalyticMetrics {
                    bytes_read: 16_000.0,
                    bytes_written: 8_000.0,
                    flops: 2_000.0,
                },
            },
        }
    }

    #[test]
    fn bandwidth_and_flop_rate() {
        let e = entry("Stream_TRIAD", 2.0); // 1 s/rep
        assert!((e.bandwidth() - 24_000.0).abs() < 1e-9);
        assert!((e.flop_rate() - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn csv_has_one_row_per_entry() {
        let report = SuiteReport {
            variant: VariantId::BaseSeq,
            entries: vec![entry("A", 1.0), entry("B", 1.0)],
            profile: caliper::Profile::default(),
            outputs: vec![],
            sanitize: None,
            lock_order: None,
            outcomes: vec![],
        };
        assert_eq!(report.to_csv().lines().count(), 3);
        assert!(report.entry("A").is_some());
        assert!(report.entry("C").is_none());
    }

    #[test]
    fn outcome_section_lists_failures_and_retries() {
        let report = SuiteReport {
            variant: VariantId::BaseSeq,
            entries: vec![entry("A", 1.0)],
            profile: caliper::Profile::default(),
            outputs: vec![],
            sanitize: None,
            lock_order: None,
            outcomes: vec![
                OutcomeRecord {
                    kernel: "A".into(),
                    variant: VariantId::BaseSeq,
                    outcome: KernelOutcome::Passed { retries: 2 },
                },
                OutcomeRecord {
                    kernel: "B".into(),
                    variant: VariantId::BaseSeq,
                    outcome: KernelOutcome::Failed {
                        message: "boom".into(),
                        retries: 0,
                    },
                },
                OutcomeRecord {
                    kernel: "C".into(),
                    variant: VariantId::BaseSeq,
                    outcome: KernelOutcome::TimedOut {
                        limit: std::time::Duration::from_secs(1),
                    },
                },
            ],
        };
        assert!(!report.all_passed());
        assert_eq!(report.failed_count(), 2);
        assert_eq!(report.retries_total(), 2);
        assert!(matches!(
            report.outcome("C"),
            Some(KernelOutcome::TimedOut { .. })
        ));
        let text = report.render_outcomes();
        assert!(text.contains("RETRIED(2)"));
        assert!(text.contains("boom"));
        assert!(text.contains("TIMEOUT"));
        assert!(text.contains("1 passed, 2 failed"));
        assert!(text.contains("2 transient failure(s) retried"));
    }

    #[test]
    fn checksum_report_detects_failures() {
        let mut rows = BTreeMap::new();
        rows.insert(
            "K".to_string(),
            vec![
                (VariantId::BaseSeq, 1.0, CheckStatus::Pass),
                (VariantId::RajaSeq, 2.0, CheckStatus::Fail),
            ],
        );
        let cr = ChecksumReport { rows };
        assert!(!cr.all_pass());
        assert!(cr.render().contains("FAIL"));
    }

    #[test]
    fn fallback_reference_entries_are_not_failures() {
        let mut rows = BTreeMap::new();
        rows.insert(
            "DeviceOnly".to_string(),
            vec![
                (VariantId::BaseSimGpu, 3.0, CheckStatus::Reference),
                (VariantId::RajaSimGpu, 3.0, CheckStatus::Pass),
            ],
        );
        let cr = ChecksumReport { rows };
        assert!(cr.all_pass(), "a fallback reference must not fail the report");
        assert!(cr.render().contains("n/a"));
    }
}
