//! Run parameters and command-line parsing (the suite's "wide variety of
//! command line options", §II-A).

use kernels::{Feature, Group, KernelBase, KernelInfo, Tuning, VariantId};

/// Which kernels to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Every kernel in the registry.
    All,
    /// Kernels named explicitly (full `Group_KERNEL` names).
    Kernels(Vec<String>),
    /// Whole groups by name (`Stream`, `Basic`, ...).
    Groups(Vec<String>),
    /// Kernels exercising a RAJA feature (`sort`, `scan`, `reduction`,
    /// `atomic`, `view`, `workgroup`, `mpi`).
    Features(Vec<String>),
    /// Union of several selections — what `--groups Stream --kernels
    /// Basic_DAXPY` means. A kernel matched by more than one member still
    /// runs once: selection is a single filter pass over the registry, so
    /// membership, not match count, decides inclusion.
    Union(Vec<Selection>),
}

impl Selection {
    /// Whether this selection includes `info`. Registry order is preserved
    /// by the caller's filter pass; overlap across `Union` members cannot
    /// duplicate a kernel.
    fn matches(&self, info: &KernelInfo) -> bool {
        match self {
            Selection::All => true,
            Selection::Kernels(names) => names.iter().any(|n| n == info.name),
            Selection::Groups(groups) => groups
                .iter()
                .any(|g| g.eq_ignore_ascii_case(info.group.name())),
            Selection::Features(feats) => feats.iter().any(|f| {
                info.features
                    .iter()
                    .any(|kf| feature_matches(kf, &f.to_ascii_lowercase()))
            }),
            Selection::Union(parts) => parts.iter().any(|p| p.matches(info)),
        }
    }

    /// Explicitly-named kernels (recursing through `Union`) — the only way
    /// `Fixture_*` positive controls join a selection.
    fn explicit_kernel_names(&self) -> Vec<&str> {
        match self {
            Selection::Kernels(names) => names.iter().map(String::as_str).collect(),
            Selection::Union(parts) => {
                let mut out: Vec<&str> = Vec::new();
                for p in parts {
                    for n in p.explicit_kernel_names() {
                        if !out.contains(&n) {
                            out.push(n);
                        }
                    }
                }
                out
            }
            _ => Vec::new(),
        }
    }
}

/// How a ranked sweep's ranks are realized (`--rank-isolation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankIsolation {
    /// Ranks are `simcomm` worker threads in this process (the default).
    /// Cheap and deterministic, but a hard fault (abort, OOM kill) in any
    /// rank kills the whole campaign, and fault-armed/sanitize campaigns
    /// serialize cell execution because `simfault` state is process-global.
    #[default]
    Threads,
    /// Each rank is a spawned child `rajaperf` process supervised by the
    /// parent: heartbeat monitoring, exit-status decoding, bounded restart
    /// with backoff, and graceful degradation past the restart budget. A
    /// killed rank is a restarted rank, not a killed campaign, and each
    /// child owns its own `simfault` state so fault-armed campaigns run
    /// rank-parallel (no `FAULT_CELL_GATE`).
    Process,
}

impl RankIsolation {
    /// Parse a `--rank-isolation` mode name.
    pub fn parse(s: &str) -> Option<RankIsolation> {
        match s {
            "threads" | "thread" => Some(RankIsolation::Threads),
            "process" => Some(RankIsolation::Process),
            _ => None,
        }
    }

    /// The mode's canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            RankIsolation::Threads => "threads",
            RankIsolation::Process => "process",
        }
    }
}

/// Parameters of one suite run (one variant, one tuning — one profile).
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Kernel selection.
    pub selection: Selection,
    /// Kernels to exclude by name.
    pub exclude: Vec<String>,
    /// Variant to run.
    pub variant: VariantId,
    /// GPU tuning.
    pub tuning: Tuning,
    /// Multiplier on each kernel's default problem size.
    pub size_factor: f64,
    /// Overrides the per-kernel default size entirely.
    pub explicit_size: Option<usize>,
    /// Multiplier on each kernel's default repetition count.
    pub reps_factor: f64,
    /// Overrides the per-kernel default reps entirely.
    pub explicit_reps: Option<usize>,
    /// Caliper ConfigManager spec (e.g. `spot(output=run.cali.json)`).
    pub caliper_spec: Option<String>,
    /// Run the simulated-device sanitizer (`simsan`) over the selection
    /// after the timing pass and append its findings to the report.
    pub sanitize: bool,
    /// Run the batched sweep orchestrator: the full cross-product of all
    /// variants × the block-size tunings in one invocation, one profile per
    /// cell (see [`crate::sweep`]).
    pub sweep: bool,
    /// Block-size tunings for `--sweep`; empty means "just the single
    /// `--gpu-block-size` tuning".
    pub sweep_block_sizes: Vec<usize>,
    /// Output directory for sweep profiles, cell caches, and the manifest.
    pub sweep_dir: Option<std::path::PathBuf>,
    /// Number of simulated ranks to shard the sweep's cell grid across
    /// (`--ranks`, default 1). Ranks are `simcomm` worker threads with
    /// cell-granularity work stealing; results are gathered over `simcomm`
    /// messages and the manifest is byte-identical to a `--ranks 1` run.
    pub ranks: usize,
    /// How ranks are realized (`--rank-isolation`, default `threads`):
    /// `simcomm` worker threads in-process, or supervised child `rajaperf`
    /// processes with crash isolation and restart (see
    /// [`crate::sweep::process`]).
    pub rank_isolation: RankIsolation,
    /// Restart budget per child rank in a process-isolated campaign
    /// (`--rank-restarts`, default 2): how many times the supervisor
    /// respawns a dead rank before retiring it as a casualty and
    /// redistributing its cells to the survivors.
    pub rank_restarts: u32,
    /// Internal: this invocation *is* a child rank worker — `(rank,
    /// nranks)` from the hidden `--rank-worker R/N` flag the supervisor
    /// appends when spawning children. The binary enters the worker loop
    /// ([`crate::run_rank_worker`]) instead of running a sweep.
    pub rank_worker: Option<(usize, usize)>,
    /// Rank identity of the *current* `run_suite` call inside a ranked
    /// sweep: `(rank, nranks)`. Set internally by the sweep orchestrator —
    /// not a CLI flag — so Caliper profiles carry `mpi.rank` metadata.
    pub rank_context: Option<(usize, usize)>,
    /// Record an event trace of the run and write it as Chrome Trace Event
    /// JSON to this path (loadable in `chrome://tracing` / Perfetto).
    pub trace: Option<std::path::PathBuf>,
    /// Also write the event trace as flamegraph folded stacks to this path.
    pub trace_folded: Option<std::path::PathBuf>,
    /// Deterministic fault-injection spec (`--faults` / `SIMFAULT`), e.g.
    /// `gpusim.launch=err:0.05,seed=42`. Installed (counters reset) at the
    /// start of every [`crate::run_suite`] call, so each sweep cell replays
    /// the same fault sequence whether or not the sweep was interrupted.
    pub faults: Option<String>,
    /// Run with the lock-order deadlock analyzer recording every shim mutex
    /// acquisition (`--lock-order`): potential-deadlock cycles across the
    /// pool/trace/fault-scope locks are reported after the run with both
    /// acquisition stacks and Caliper region attribution. Diagnostic mode —
    /// a backtrace is captured per acquisition, so timings are not
    /// measurement-grade.
    pub lock_order: bool,
    /// Watchdog deadline per kernel-variant execution attempt (`--timeout`).
    pub timeout: Option<std::time::Duration>,
    /// Retries allowed per kernel for *transient* failures (`--retries`).
    pub max_retries: u32,
    /// Base linear backoff between retries (`--retry-backoff-ms`).
    pub retry_backoff: std::time::Duration,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            selection: Selection::All,
            exclude: Vec::new(),
            variant: VariantId::BaseSeq,
            tuning: Tuning::default(),
            size_factor: 1.0,
            explicit_size: None,
            reps_factor: 1.0,
            explicit_reps: None,
            caliper_spec: None,
            sanitize: false,
            sweep: false,
            sweep_block_sizes: Vec::new(),
            sweep_dir: None,
            ranks: 1,
            rank_isolation: RankIsolation::Threads,
            rank_restarts: 2,
            rank_worker: None,
            rank_context: None,
            trace: None,
            trace_folded: None,
            faults: None,
            lock_order: false,
            timeout: None,
            max_retries: 0,
            retry_backoff: std::time::Duration::from_millis(50),
        }
    }
}

/// The faulty positive-control fixtures, boxed once so selection can hand
/// out `&'static` references like the registry does.
fn faulty_fixtures() -> &'static [Box<dyn KernelBase>] {
    static FIXTURES: std::sync::OnceLock<Vec<Box<dyn KernelBase>>> = std::sync::OnceLock::new();
    FIXTURES.get_or_init(kernels::faulty::all)
}

/// Upper bound on `--ranks`: each rank is an OS thread holding a full
/// suite execution context, so this caps runaway requests (the paper's
/// largest campaign is 112 ranks).
pub const MAX_RANKS: usize = 256;

/// Upper bound on `--rank-restarts`: each restart respawns a full child
/// process after backoff, so an unbounded budget could retry a
/// deterministically-crashing rank for hours.
pub const MAX_RANK_RESTARTS: u32 = 16;

/// Feature names accepted by `--features`, matching [`feature_matches`].
const FEATURE_NAMES: &[&str] = &[
    "sort",
    "scan",
    "reduction",
    "atomic",
    "view",
    "forall",
    "kernel",
    "workgroup",
    "mpi",
];

/// Strict at the CLI: a typoed kernel, group, or feature name must not
/// silently select nothing (the same policy `--faults` applies to
/// failpoint names).
fn validate_selection(sel: &Selection) -> Result<(), String> {
    match sel {
        Selection::All => Ok(()),
        Selection::Kernels(names) => {
            for n in names {
                let known = kernels::find(n).is_some()
                    || faulty_fixtures().iter().any(|k| k.info().name == n.as_str());
                if !known {
                    return Err(format!("unknown kernel '{n}' (try --list)"));
                }
            }
            Ok(())
        }
        Selection::Groups(groups) => {
            for g in groups {
                if !Group::all().iter().any(|kg| kg.name().eq_ignore_ascii_case(g)) {
                    let known: Vec<&str> = Group::all().iter().map(|kg| kg.name()).collect();
                    return Err(format!("unknown group '{g}'; known: {}", known.join(", ")));
                }
            }
            Ok(())
        }
        Selection::Features(feats) => {
            for f in feats {
                if !FEATURE_NAMES.contains(&f.to_ascii_lowercase().as_str()) {
                    return Err(format!(
                        "unknown feature '{f}'; known: {}",
                        FEATURE_NAMES.join(" ")
                    ));
                }
            }
            Ok(())
        }
        Selection::Union(parts) => parts.iter().try_for_each(validate_selection),
    }
}

fn feature_matches(f: &Feature, name: &str) -> bool {
    matches!(
        (f, name),
        (Feature::Sort, "sort")
            | (Feature::Scan, "scan")
            | (Feature::Reduction, "reduction")
            | (Feature::Atomic, "atomic")
            | (Feature::View, "view")
            | (Feature::Forall, "forall")
            | (Feature::Kernel, "kernel")
            | (Feature::Workgroup, "workgroup")
            | (Feature::Mpi, "mpi")
    )
}

impl RunParams {
    /// Kernels matched by the selection, in registry (Table I) order.
    /// Borrows from the static registry: selection is a filter pass, not a
    /// rebuild of 76 boxed kernels.
    ///
    /// `Fixture_*` kernels (the sanitizer and fault-tolerance positive
    /// controls, deliberately outside the registry) join the selection only
    /// when named explicitly via `Selection::Kernels` — never through
    /// `All`, groups, or features — so `--kernels Fixture_PANIC,Basic_DAXPY`
    /// can exercise the isolation layer without the fixtures ever running
    /// by accident.
    pub fn selected_kernels(&self) -> Vec<&'static dyn KernelBase> {
        let mut selected: Vec<&'static dyn KernelBase> = kernels::registry()
            .iter()
            .map(|k| k.as_ref())
            .filter(|k| {
                let info = k.info();
                self.selection.matches(&info) && !self.exclude.iter().any(|n| n == info.name)
            })
            .collect();
        let explicit = self.selection.explicit_kernel_names();
        if !explicit.is_empty() {
            selected.extend(
                faulty_fixtures()
                    .iter()
                    .map(|k| k.as_ref())
                    .filter(|k| {
                        let name = k.info().name;
                        explicit.contains(&name)
                            && !self.exclude.iter().any(|n| n == name)
                    }),
            );
        }
        selected
    }

    /// Problem size for a kernel under these parameters.
    pub fn problem_size(&self, info: &KernelInfo) -> usize {
        match self.explicit_size {
            Some(n) => n,
            None => ((info.default_size as f64) * self.size_factor).max(1.0) as usize,
        }
    }

    /// Repetition count for a kernel under these parameters.
    pub fn reps(&self, info: &KernelInfo) -> usize {
        match self.explicit_reps {
            Some(r) => r.max(1),
            None => ((info.default_reps as f64) * self.reps_factor).max(1.0) as usize,
        }
    }

    /// Parse RAJAPerf-style command-line arguments.
    ///
    /// Supported options:
    /// `--kernels k1,k2` · `--groups g1,g2` · `--features f1,f2` ·
    /// `--exclude-kernels k1,k2` · `--variant NAME` · `--gpu-block-size N` ·
    /// `--size N` · `--size-factor X` · `--reps N` · `--reps-factor X` ·
    /// `--caliper SPEC`.
    pub fn parse(args: &[String]) -> Result<RunParams, String> {
        let mut p = RunParams::default();
        // Selection flags accumulate across the whole command line:
        // `--groups Stream --kernels Basic_DAXPY` is a union (the old
        // behavior silently kept only the last flag), and names dedupe
        // order-preservingly so `--kernels a,a` or an overlap between
        // repeated flags cannot select a name twice.
        let mut kernel_names: Vec<String> = Vec::new();
        let mut group_names: Vec<String> = Vec::new();
        let mut feature_names: Vec<String> = Vec::new();
        fn push_unique(acc: &mut Vec<String>, csv: &str, fold_case: bool) -> bool {
            let mut saw_name = false;
            for part in csv.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                saw_name = true;
                let dup = acc.iter().any(|p| {
                    if fold_case {
                        p.eq_ignore_ascii_case(part)
                    } else {
                        p == part
                    }
                });
                if !dup {
                    acc.push(part.to_string());
                }
            }
            saw_name
        }
        let mut saw_rank_restarts = false;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--kernels" => {
                    if !push_unique(&mut kernel_names, &value("--kernels")?, false) {
                        return Err("--kernels requires at least one kernel name".to_string());
                    }
                }
                "--groups" => {
                    if !push_unique(&mut group_names, &value("--groups")?, true) {
                        return Err("--groups requires at least one group name".to_string());
                    }
                }
                "--features" => {
                    if !push_unique(&mut feature_names, &value("--features")?, true) {
                        return Err("--features requires at least one feature name".to_string());
                    }
                }
                "--exclude-kernels" => {
                    p.exclude = value("--exclude-kernels")?
                        .split(',')
                        .map(str::to_string)
                        .collect()
                }
                "--variant" | "--variants" => {
                    let v = value("--variant")?;
                    p.variant = VariantId::parse(&v)
                        .ok_or_else(|| format!("unknown variant '{v}'"))?;
                }
                "--gpu-block-size" => {
                    p.tuning.gpu_block_size = value("--gpu-block-size")?
                        .parse()
                        .map_err(|e| format!("bad block size: {e}"))?;
                }
                "--size" => {
                    p.explicit_size =
                        Some(value("--size")?.parse().map_err(|e| format!("bad size: {e}"))?)
                }
                "--size-factor" => {
                    p.size_factor = value("--size-factor")?
                        .parse()
                        .map_err(|e| format!("bad size factor: {e}"))?
                }
                "--reps" => {
                    p.explicit_reps =
                        Some(value("--reps")?.parse().map_err(|e| format!("bad reps: {e}"))?)
                }
                "--reps-factor" => {
                    p.reps_factor = value("--reps-factor")?
                        .parse()
                        .map_err(|e| format!("bad reps factor: {e}"))?
                }
                "--caliper" => p.caliper_spec = Some(value("--caliper")?),
                "--sanitize" => p.sanitize = true,
                "--sweep" => p.sweep = true,
                "--sweep-block-sizes" => {
                    p.sweep_block_sizes = value("--sweep-block-sizes")?
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<usize>()
                                .map_err(|e| format!("bad sweep block size '{s}': {e}"))
                        })
                        .collect::<Result<_, _>>()?
                }
                "--sweep-dir" => {
                    p.sweep_dir = Some(std::path::PathBuf::from(value("--sweep-dir")?))
                }
                "--ranks" => {
                    let v = value("--ranks")?;
                    p.ranks = v
                        .parse::<usize>()
                        .map_err(|e| format!("bad rank count '{v}': {e}"))?;
                }
                arg if arg == "--rank-isolation" || arg.starts_with("--rank-isolation=") => {
                    let v = match arg.strip_prefix("--rank-isolation=") {
                        Some(v) => v.to_string(),
                        None => value("--rank-isolation")?,
                    };
                    p.rank_isolation = RankIsolation::parse(&v).ok_or_else(|| {
                        format!("unknown rank isolation mode '{v}'; known: threads, process")
                    })?;
                }
                arg if arg == "--rank-restarts" || arg.starts_with("--rank-restarts=") => {
                    let v = match arg.strip_prefix("--rank-restarts=") {
                        Some(v) => v.to_string(),
                        None => value("--rank-restarts")?,
                    };
                    p.rank_restarts = v
                        .parse::<u32>()
                        .map_err(|e| format!("bad restart budget '{v}': {e}"))?;
                    saw_rank_restarts = true;
                }
                // Internal: appended by the process-mode supervisor when
                // spawning child ranks; not in the usage text.
                "--rank-worker" => {
                    let v = value("--rank-worker")?;
                    let parsed = v.split_once('/').and_then(|(r, n)| {
                        Some((r.parse::<usize>().ok()?, n.parse::<usize>().ok()?))
                    });
                    p.rank_worker = Some(
                        parsed.ok_or_else(|| format!("bad --rank-worker '{v}' (want R/N)"))?,
                    );
                }
                "--trace" => p.trace = Some(std::path::PathBuf::from(value("--trace")?)),
                "--trace-folded" => {
                    p.trace_folded = Some(std::path::PathBuf::from(value("--trace-folded")?))
                }
                "--faults" => p.faults = Some(value("--faults")?),
                "--lock-order" => p.lock_order = true,
                "--timeout" => {
                    let secs: f64 = value("--timeout")?
                        .parse()
                        .map_err(|e| format!("bad timeout: {e}"))?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err("--timeout must be a positive number of seconds".to_string());
                    }
                    p.timeout = Some(std::time::Duration::from_secs_f64(secs));
                }
                "--retries" => {
                    p.max_retries = value("--retries")?
                        .parse()
                        .map_err(|e| format!("bad retries: {e}"))?
                }
                "--retry-backoff-ms" => {
                    let ms: u64 = value("--retry-backoff-ms")?
                        .parse()
                        .map_err(|e| format!("bad retry backoff: {e}"))?;
                    p.retry_backoff = std::time::Duration::from_millis(ms);
                }
                other => return Err(format!("unknown option '{other}' (try --help)")),
            }
        }
        let mut parts: Vec<Selection> = Vec::new();
        if !kernel_names.is_empty() {
            parts.push(Selection::Kernels(kernel_names));
        }
        if !group_names.is_empty() {
            parts.push(Selection::Groups(group_names));
        }
        if !feature_names.is_empty() {
            parts.push(Selection::Features(feature_names));
        }
        p.selection = match parts.len() {
            0 => Selection::All,
            1 => parts.remove(0),
            _ => Selection::Union(parts),
        };
        if saw_rank_restarts && p.rank_isolation != RankIsolation::Process {
            return Err(
                "--rank-restarts budgets child-process respawns; it requires \
                 --rank-isolation process"
                    .to_string(),
            );
        }
        p.validate()?;
        Ok(p)
    }

    /// Reject parameter combinations that would panic deeper in the stack
    /// or produce meaningless output (a zero block size trips the launch
    /// config assert; a zero size runs and prints an all-zero row).
    fn validate(&self) -> Result<(), String> {
        validate_selection(&self.selection)?;
        if self.tuning.gpu_block_size == 0 {
            return Err("--gpu-block-size must be >= 1".to_string());
        }
        if self.explicit_size == Some(0) {
            return Err("--size must be >= 1".to_string());
        }
        if self.explicit_reps == Some(0) {
            return Err("--reps must be >= 1".to_string());
        }
        if !(self.size_factor > 0.0 && self.size_factor.is_finite()) {
            return Err("--size-factor must be a positive number".to_string());
        }
        if !(self.reps_factor > 0.0 && self.reps_factor.is_finite()) {
            return Err("--reps-factor must be a positive number".to_string());
        }
        if self.sweep_block_sizes.contains(&0) {
            return Err("--sweep-block-sizes entries must be >= 1".to_string());
        }
        if !self.sweep_block_sizes.is_empty() && !self.sweep {
            return Err("--sweep-block-sizes requires --sweep".to_string());
        }
        if self.sweep && self.caliper_spec.is_some() {
            return Err(
                "--sweep manages its own Caliper outputs; do not combine with --caliper"
                    .to_string(),
            );
        }
        if self.sweep && (self.trace.is_some() || self.trace_folded.is_some()) {
            return Err(
                "--trace records a single run's timeline; do not combine with --sweep"
                    .to_string(),
            );
        }
        if self.trace_folded.is_some() && self.trace.is_none() {
            return Err("--trace-folded requires --trace".to_string());
        }
        if self.sweep && self.lock_order {
            return Err(
                "--lock-order analyzes a single run; do not combine with --sweep".to_string(),
            );
        }
        if self.ranks == 0 {
            return Err("--ranks must be >= 1".to_string());
        }
        if self.ranks > MAX_RANKS {
            return Err(format!("--ranks must be <= {MAX_RANKS}"));
        }
        if self.ranks > 1 && !self.sweep {
            return Err("--ranks shards a sweep's cell grid; it requires --sweep".to_string());
        }
        if self.rank_isolation == RankIsolation::Process && !self.sweep {
            return Err(
                "--rank-isolation configures a sweep campaign's ranks; it requires --sweep"
                    .to_string(),
            );
        }
        if self.rank_restarts > MAX_RANK_RESTARTS {
            return Err(format!("--rank-restarts must be <= {MAX_RANK_RESTARTS}"));
        }
        if let Some((r, n)) = self.rank_worker {
            // Internal flag, but validated like any other: a worker outside
            // a sweep (or claiming a rank beyond the campaign width) is a
            // malformed spawn, and the supervisor maps the child's usage
            // exit back to a parent usage error.
            if !self.sweep {
                return Err("--rank-worker is internal to --sweep campaigns".to_string());
            }
            if n == 0 || n > MAX_RANKS || r >= n {
                return Err(format!("--rank-worker {r}/{n} is out of range"));
            }
        }
        if let Some(spec) = &self.faults {
            // Strict at the CLI: a typoed failpoint name must not silently
            // inject nothing.
            let cfg = simfault::FaultConfig::parse(spec)
                .map_err(|e| format!("--faults: {e}"))?;
            let unknown = cfg.unknown_points();
            if !unknown.is_empty() {
                let known: Vec<&str> =
                    simfault::KNOWN_POINTS.iter().map(|(p, _)| *p).collect();
                return Err(format!(
                    "--faults names unknown failpoint(s) {unknown:?}; known: {}",
                    known.join(", ")
                ));
            }
            if self.sanitize {
                return Err(
                    "--sanitize expects hazard-free execution; do not combine with --faults"
                        .to_string(),
                );
            }
        }
        Ok(())
    }

    /// Re-serialize these parameters as the CLI argv that parses back to
    /// them — how the process-mode supervisor hands a child rank exactly
    /// the campaign configuration it is itself running.
    ///
    /// Supervisor-only fields are deliberately absent: `rank_isolation` and
    /// `rank_restarts` (a child must never recurse into supervising its own
    /// children) and the internal `rank_worker`/`rank_context` (the
    /// supervisor appends `--rank-worker R/N` itself).
    pub fn to_argv(&self) -> Vec<String> {
        fn selection_argv(sel: &Selection, out: &mut Vec<String>) {
            match sel {
                Selection::All => {}
                Selection::Kernels(names) => {
                    out.push("--kernels".into());
                    out.push(names.join(","));
                }
                Selection::Groups(names) => {
                    out.push("--groups".into());
                    out.push(names.join(","));
                }
                Selection::Features(names) => {
                    out.push("--features".into());
                    out.push(names.join(","));
                }
                Selection::Union(parts) => {
                    for p in parts {
                        selection_argv(p, out);
                    }
                }
            }
        }
        let defaults = RunParams::default();
        let mut out = Vec::new();
        selection_argv(&self.selection, &mut out);
        if !self.exclude.is_empty() {
            out.push("--exclude-kernels".into());
            out.push(self.exclude.join(","));
        }
        out.push("--variant".into());
        out.push(self.variant.name().into());
        out.push("--gpu-block-size".into());
        out.push(self.tuning.gpu_block_size.to_string());
        if let Some(n) = self.explicit_size {
            out.push("--size".into());
            out.push(n.to_string());
        }
        if self.size_factor != defaults.size_factor {
            out.push("--size-factor".into());
            out.push(self.size_factor.to_string());
        }
        if let Some(r) = self.explicit_reps {
            out.push("--reps".into());
            out.push(r.to_string());
        }
        if self.reps_factor != defaults.reps_factor {
            out.push("--reps-factor".into());
            out.push(self.reps_factor.to_string());
        }
        if let Some(spec) = &self.caliper_spec {
            out.push("--caliper".into());
            out.push(spec.clone());
        }
        if self.sanitize {
            out.push("--sanitize".into());
        }
        if self.sweep {
            out.push("--sweep".into());
        }
        if !self.sweep_block_sizes.is_empty() {
            out.push("--sweep-block-sizes".into());
            out.push(
                self.sweep_block_sizes
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        if let Some(dir) = &self.sweep_dir {
            out.push("--sweep-dir".into());
            out.push(dir.display().to_string());
        }
        if self.ranks != defaults.ranks {
            out.push("--ranks".into());
            out.push(self.ranks.to_string());
        }
        if let Some(t) = &self.trace {
            out.push("--trace".into());
            out.push(t.display().to_string());
        }
        if let Some(t) = &self.trace_folded {
            out.push("--trace-folded".into());
            out.push(t.display().to_string());
        }
        if let Some(spec) = &self.faults {
            out.push("--faults".into());
            out.push(spec.clone());
        }
        if self.lock_order {
            out.push("--lock-order".into());
        }
        if let Some(d) = self.timeout {
            out.push("--timeout".into());
            // `{}` on f64 prints the shortest representation that parses
            // back to the same value, so the child's watchdog deadline is
            // bit-identical to the parent's.
            out.push(d.as_secs_f64().to_string());
        }
        if self.max_retries != defaults.max_retries {
            out.push("--retries".into());
            out.push(self.max_retries.to_string());
        }
        if self.retry_backoff != defaults.retry_backoff {
            out.push("--retry-backoff-ms".into());
            out.push(self.retry_backoff.as_millis().to_string());
        }
        out
    }

    /// Usage text for the CLI.
    pub fn usage() -> &'static str {
        "rajaperf [options]\n\
         \n\
         Kernel selection:\n\
           --kernels NAME[,NAME...]     run specific kernels (Group_KERNEL names)\n\
           --groups NAME[,NAME...]      run whole groups (Stream, Basic, Lcals, ...)\n\
           --features F[,F...]          run kernels using a RAJA feature\n\
                                        (sort scan reduction atomic view workgroup mpi)\n\
           --exclude-kernels NAME[,..]  exclude kernels by name\n\
           (selection flags combine as a union and dedupe repeated names;\n\
           unknown kernel/group/feature names are usage errors)\n\
         \n\
         Execution:\n\
           --variant NAME               Base_Seq | RAJA_Seq | Base_Par | RAJA_Par |\n\
                                        Base_SimGpu | RAJA_SimGpu   (default Base_Seq)\n\
           --gpu-block-size N           device block-size tuning, N >= 1 (default 256)\n\
           --size N                     problem size for every kernel (N >= 1)\n\
           --size-factor X              scale each kernel's default size\n\
           --reps N / --reps-factor X   repetition control (N >= 1)\n\
         \n\
         Sweep:\n\
           --sweep                      run the full cross-product of all variants\n\
                                        x block-size tunings in one invocation: one\n\
                                        profile per (variant, tuning) cell, a sweep\n\
                                        manifest JSON, and per-cell caching so an\n\
                                        interrupted sweep reuses finished cells\n\
           --sweep-block-sizes N[,N..]  block-size tunings to sweep (default: just\n\
                                        --gpu-block-size)\n\
           --sweep-dir DIR              sweep output directory\n\
                                        (default target/sweep)\n\
           --ranks N                    shard the sweep's cell grid across N\n\
                                        simulated ranks (simcomm worker threads\n\
                                        with cell work stealing); the manifest is\n\
                                        byte-identical to --ranks 1 (default 1)\n\
           --rank-isolation MODE        threads (default): ranks are worker\n\
                                        threads in this process; process: each\n\
                                        rank is a supervised child rajaperf\n\
                                        process — a crashed rank is restarted\n\
                                        (with backoff, under --rank-restarts)\n\
                                        and past its budget its cells\n\
                                        redistribute to surviving ranks, with\n\
                                        a per-rank casualty report; fault-armed\n\
                                        and sanitize campaigns run rank-parallel\n\
                                        (each child owns its own fault state)\n\
           --rank-restarts N            respawn budget per child rank before it\n\
                                        is retired as a casualty (default 2,\n\
                                        max 16; requires --rank-isolation\n\
                                        process)\n\
         \n\
         Output:\n\
           --caliper SPEC               e.g. 'runtime-report,output=stdout' or\n\
                                        'spot(output=run.cali.json)' or\n\
                                        'trace(output=run.trace.json)'\n\
           --trace FILE                 record an event trace (per-kernel regions,\n\
                                        per-worker lanes, device launch/block\n\
                                        events) and write Chrome Trace Event JSON\n\
                                        loadable in chrome://tracing or Perfetto;\n\
                                        zero overhead when not passed\n\
           --trace-folded FILE          also write the trace as flamegraph folded\n\
                                        stacks (requires --trace)\n\
           --checksums                  run every variant and print the\n\
                                        cross-variant checksum report\n\
           --sanitize                   run the simulated-device sanitizer\n\
                                        (simsan) over the selection and print\n\
                                        its hazard report\n\
           --list                       list kernels and exit\n\
         \n\
         Fault tolerance:\n\
           --faults SPEC                arm deterministic fault injection, e.g.\n\
                                        'gpusim.launch=err:0.05,seed=42' or\n\
                                        'suite.kernel@Stream_TRIAD=panic:1.0'\n\
                                        (points: gpusim.launch gpusim.ecc\n\
                                        suite.kernel io.write fixture.flaky;\n\
                                        modes: panic err stall[(ms)] flip\n\
                                        truncate; rate defaults to 1.0; zero\n\
                                        overhead when not armed)\n\
           --timeout SECS               watchdog deadline per kernel execution;\n\
                                        a kernel exceeding it is recorded as\n\
                                        TIMEOUT and the run continues\n\
           --retries N                  retries for transient (injected) kernel\n\
                                        failures (default 0)\n\
           --retry-backoff-ms MS        base linear backoff between retries\n\
                                        (default 50)\n\
         \n\
         Diagnostics:\n\
           --lock-order                 record the lock-acquisition order graph\n\
                                        across the pool, trace, and fault-scope\n\
                                        locks and report potential-deadlock\n\
                                        cycles (both acquisition stacks, kernel\n\
                                        region attribution) after the run;\n\
                                        captures a backtrace per acquisition, so\n\
                                        do not combine with timing measurements\n\
         \n\
         Exit codes:\n\
           0 success | 1 internal error | 2 usage | 3 checksum failure |\n\
           4 sanitizer findings | 5 kernel failures (partial failure: the\n\
           rest of the selection completed and reported) | 6 unavailable\n\
           (daemon queue full or shutting down)\n\
         \n\
         Environment:\n\
           RAYON_NUM_THREADS            thread-pool width for Par variants and\n\
                                        simulated-GPU block scheduling (positive\n\
                                        integer; default: available parallelism;\n\
                                        1 = fully sequential, bitwise-deterministic)\n\
           SIMFAULT                     fault spec used when --faults is absent\n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_selection_options() {
        let p = RunParams::parse(&args("--kernels Stream_TRIAD,Basic_DAXPY")).unwrap();
        assert_eq!(p.selected_kernels().len(), 2);
        let p = RunParams::parse(&args("--groups Stream")).unwrap();
        assert_eq!(p.selected_kernels().len(), 5);
        let p = RunParams::parse(&args("--features sort")).unwrap();
        assert_eq!(p.selected_kernels().len(), 2, "SORT and SORTPAIRS");
    }

    #[test]
    fn parse_execution_options() {
        let p = RunParams::parse(&args(
            "--variant RAJA_SimGpu --gpu-block-size 128 --size 5000 --reps 3",
        ))
        .unwrap();
        assert_eq!(p.variant, VariantId::RajaSimGpu);
        assert_eq!(p.tuning.gpu_block_size, 128);
        let info = kernels::find("Stream_ADD").unwrap().info();
        assert_eq!(p.problem_size(&info), 5000);
        assert_eq!(p.reps(&info), 3);
    }

    #[test]
    fn size_and_reps_factors_scale_defaults() {
        let p = RunParams::parse(&args("--size-factor 0.5 --reps-factor 2")).unwrap();
        let info = kernels::find("Stream_ADD").unwrap().info();
        assert_eq!(p.problem_size(&info), info.default_size / 2);
        assert_eq!(p.reps(&info), info.default_reps * 2);
    }

    #[test]
    fn exclusion_removes_kernels() {
        let p = RunParams::parse(&args("--groups Stream --exclude-kernels Stream_DOT")).unwrap();
        assert_eq!(p.selected_kernels().len(), 4);
    }

    #[test]
    fn sanitize_flag_parses() {
        assert!(!RunParams::default().sanitize);
        let p = RunParams::parse(&args("--sanitize --groups Stream")).unwrap();
        assert!(p.sanitize);
        assert_eq!(p.selected_kernels().len(), 5);
    }

    #[test]
    fn bad_options_are_reported() {
        assert!(RunParams::parse(&args("--variant Nope")).is_err());
        assert!(RunParams::parse(&args("--bogus")).is_err());
        assert!(RunParams::parse(&args("--size")).is_err());
    }

    #[test]
    fn zero_and_degenerate_values_are_rejected() {
        // Regression: `--gpu-block-size 0` used to panic in
        // `LaunchConfig::linear` instead of failing parse.
        let err = RunParams::parse(&args("--gpu-block-size 0")).unwrap_err();
        assert!(err.contains("--gpu-block-size"), "{err}");
        // Regression: `--size 0` used to run and print a meaningless row.
        assert!(RunParams::parse(&args("--size 0")).is_err());
        assert!(RunParams::parse(&args("--reps 0")).is_err());
        assert!(RunParams::parse(&args("--size-factor 0")).is_err());
        assert!(RunParams::parse(&args("--size-factor -1.5")).is_err());
        assert!(RunParams::parse(&args("--reps-factor 0")).is_err());
        // The boundary values stay accepted.
        assert!(RunParams::parse(&args("--gpu-block-size 1 --size 1 --reps 1")).is_ok());
    }

    #[test]
    fn sweep_flags_parse_and_validate() {
        let p = RunParams::parse(&args(
            "--sweep --groups Stream --sweep-block-sizes 128,256 --sweep-dir target/sw",
        ))
        .unwrap();
        assert!(p.sweep);
        assert_eq!(p.sweep_block_sizes, vec![128, 256]);
        assert_eq!(p.sweep_dir.as_deref(), Some(std::path::Path::new("target/sw")));
        assert!(RunParams::parse(&args("--sweep --sweep-block-sizes 0")).is_err());
        assert!(RunParams::parse(&args("--sweep-block-sizes 128")).is_err());
        assert!(
            RunParams::parse(&args("--sweep --caliper runtime-report")).is_err(),
            "sweep owns its Caliper outputs"
        );
    }

    #[test]
    fn ranks_flag_parses_and_validates() {
        assert_eq!(RunParams::default().ranks, 1);
        let p = RunParams::parse(&args("--sweep --ranks 4")).unwrap();
        assert_eq!(p.ranks, 4);
        assert!(p.rank_context.is_none(), "rank_context is not a CLI flag");
        assert!(
            RunParams::parse(&args("--ranks 4")).is_err(),
            "--ranks shards a sweep, so it requires --sweep"
        );
        assert!(RunParams::parse(&args("--sweep --ranks 0")).is_err());
        assert!(RunParams::parse(&args("--sweep --ranks 9999")).is_err());
        assert!(RunParams::parse(&args("--sweep --ranks nope")).is_err());
        // --ranks 1 without --sweep is the implicit default; allowed.
        assert!(RunParams::parse(&args("--ranks 1")).is_ok());
    }

    #[test]
    fn rank_isolation_flag_parses_and_validates() {
        assert_eq!(RunParams::default().rank_isolation, RankIsolation::Threads);
        // Both `--rank-isolation process` and `--rank-isolation=process`.
        let p = RunParams::parse(&args("--sweep --ranks 4 --rank-isolation process")).unwrap();
        assert_eq!(p.rank_isolation, RankIsolation::Process);
        let p = RunParams::parse(&args("--sweep --ranks 4 --rank-isolation=process")).unwrap();
        assert_eq!(p.rank_isolation, RankIsolation::Process);
        let p = RunParams::parse(&args("--sweep --rank-isolation=threads")).unwrap();
        assert_eq!(p.rank_isolation, RankIsolation::Threads);
        // Process isolation of a single rank is still isolation; allowed.
        assert!(RunParams::parse(&args("--sweep --rank-isolation process")).is_ok());

        let err = RunParams::parse(&args("--sweep --rank-isolation=container")).unwrap_err();
        assert!(err.contains("unknown rank isolation mode"), "{err}");
        assert!(err.contains("process"), "lists the modes: {err}");
        let err = RunParams::parse(&args("--rank-isolation=process")).unwrap_err();
        assert!(err.contains("--sweep"), "non-sweep use is a usage error: {err}");
    }

    #[test]
    fn rank_restarts_flag_parses_and_validates() {
        assert_eq!(RunParams::default().rank_restarts, 2);
        let p = RunParams::parse(&args(
            "--sweep --ranks 2 --rank-isolation=process --rank-restarts 5",
        ))
        .unwrap();
        assert_eq!(p.rank_restarts, 5);
        let p = RunParams::parse(&args(
            "--sweep --rank-isolation=process --rank-restarts=0",
        ))
        .unwrap();
        assert_eq!(p.rank_restarts, 0, "a zero budget means no respawns");
        // The budget only means something when there are child processes.
        let err = RunParams::parse(&args("--sweep --rank-restarts 3")).unwrap_err();
        assert!(err.contains("--rank-isolation process"), "{err}");
        assert!(RunParams::parse(&args("--rank-restarts 3")).is_err());
        let err = RunParams::parse(&args(
            "--sweep --rank-isolation=process --rank-restarts 999",
        ))
        .unwrap_err();
        assert!(err.contains("<="), "budget is capped: {err}");
        assert!(RunParams::parse(&args(
            "--sweep --rank-isolation=process --rank-restarts nope"
        ))
        .is_err());
    }

    #[test]
    fn rank_worker_flag_is_internal_but_validated() {
        let p = RunParams::parse(&args("--sweep --ranks 4 --rank-worker 2/4")).unwrap();
        assert_eq!(p.rank_worker, Some((2, 4)));
        assert!(
            RunParams::parse(&args("--rank-worker 0/2")).is_err(),
            "worker mode outside a sweep is a malformed spawn"
        );
        assert!(RunParams::parse(&args("--sweep --rank-worker 4/4")).is_err());
        assert!(RunParams::parse(&args("--sweep --rank-worker 0/0")).is_err());
        assert!(RunParams::parse(&args("--sweep --rank-worker nope")).is_err());
        assert!(
            !RunParams::usage().contains("--rank-worker"),
            "internal flags stay out of the usage text"
        );
    }

    #[test]
    fn to_argv_roundtrips_through_parse() {
        // The supervisor respawns children from to_argv(); if any field is
        // dropped or mis-serialized, a child computes different cells than
        // its parent planned. Round-trip a spread of configurations and
        // require a fixed point: parse(to_argv(p)) serializes identically.
        let cases = [
            "",
            "--kernels Stream_TRIAD,Basic_DAXPY --size 1000 --reps 2",
            "--groups Stream --kernels Basic_DAXPY --exclude-kernels Stream_DOT",
            "--features sort --variant RAJA_Par --gpu-block-size 128",
            "--sweep --sweep-block-sizes 128,256 --sweep-dir target/sw --ranks 4",
            "--sweep --ranks 2 --faults suite.kernel=panic:0.5,seed=7 \
             --timeout 2.5 --retries 3 --retry-backoff-ms 10",
            "--size-factor 0.5 --reps-factor 2 --sanitize",
        ];
        for case in cases {
            let p = RunParams::parse(&args(case)).unwrap();
            let argv = p.to_argv();
            let reparsed = RunParams::parse(&argv).unwrap_or_else(|e| {
                panic!("to_argv of '{case}' must reparse, got {e}: {argv:?}")
            });
            assert_eq!(reparsed.to_argv(), argv, "fixed point for '{case}'");
            assert_eq!(reparsed.selection, p.selection, "{case}");
            assert_eq!(reparsed.faults, p.faults, "{case}");
            assert_eq!(reparsed.timeout, p.timeout, "{case}");
        }
        // Supervisor-only fields must never leak into a child's argv.
        let p = RunParams::parse(&args(
            "--sweep --ranks 2 --rank-isolation=process --rank-restarts 1",
        ))
        .unwrap();
        let argv = p.to_argv();
        assert!(
            !argv.iter().any(|a| a.contains("rank-isolation") || a.contains("rank-restarts")),
            "{argv:?}"
        );
    }

    #[test]
    fn trace_flags_parse_and_validate() {
        let p = RunParams::parse(&args(
            "--kernels Stream_TRIAD --trace out.trace.json --trace-folded out.folded",
        ))
        .unwrap();
        assert_eq!(p.trace.as_deref(), Some(std::path::Path::new("out.trace.json")));
        assert_eq!(p.trace_folded.as_deref(), Some(std::path::Path::new("out.folded")));
        assert!(
            RunParams::parse(&args("--trace-folded out.folded")).is_err(),
            "--trace-folded alone has no trace to fold"
        );
        assert!(
            RunParams::parse(&args("--sweep --trace out.trace.json")).is_err(),
            "a sweep is many runs; a trace is one run's timeline"
        );
    }

    #[test]
    fn lock_order_flag_parses_and_rejects_sweep() {
        assert!(!RunParams::default().lock_order);
        let p = RunParams::parse(&args("--lock-order")).unwrap();
        assert!(p.lock_order);
        assert!(
            RunParams::parse(&args("--sweep --lock-order")).is_err(),
            "a sweep is many runs; lock-order analysis reports one run"
        );
    }

    #[test]
    fn all_selection_covers_registry() {
        let p = RunParams::default();
        assert_eq!(p.selected_kernels().len(), 76);
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let p = RunParams::parse(&args(
            "--faults gpusim.launch=err:0.05,seed=42 --timeout 2.5 --retries 3 --retry-backoff-ms 10",
        ))
        .unwrap();
        assert_eq!(p.faults.as_deref(), Some("gpusim.launch=err:0.05,seed=42"));
        assert_eq!(p.timeout, Some(std::time::Duration::from_secs_f64(2.5)));
        assert_eq!(p.max_retries, 3);
        assert_eq!(p.retry_backoff, std::time::Duration::from_millis(10));

        // Strictness: a typoed failpoint or malformed spec fails parse.
        let err = RunParams::parse(&args("--faults gpusim.lanuch=err")).unwrap_err();
        assert!(err.contains("unknown failpoint"), "{err}");
        assert!(err.contains("gpusim.launch"), "lists the registry: {err}");
        assert!(RunParams::parse(&args("--faults gpusim.launch=warp")).is_err());
        assert!(RunParams::parse(&args("--timeout 0")).is_err());
        assert!(RunParams::parse(&args("--timeout -1")).is_err());
        // Sanitizer expects hazard-free execution; injection contradicts it.
        assert!(RunParams::parse(&args("--sanitize --faults gpusim.launch=err")).is_err());
    }

    #[test]
    fn duplicate_and_overlapping_selections_dedupe() {
        // Regression: `--kernels X,X` kept the duplicate name, and a later
        // selection flag silently replaced an earlier one.
        let p = RunParams::parse(&args("--kernels Stream_TRIAD,Stream_TRIAD")).unwrap();
        assert_eq!(p.selection, Selection::Kernels(vec!["Stream_TRIAD".to_string()]));
        assert_eq!(p.selected_kernels().len(), 1);
        // Repeated flags merge (order-preserving) instead of replacing.
        let p = RunParams::parse(&args(
            "--kernels Stream_TRIAD --kernels Stream_TRIAD,Basic_DAXPY",
        ))
        .unwrap();
        assert_eq!(
            p.selection,
            Selection::Kernels(vec!["Stream_TRIAD".to_string(), "Basic_DAXPY".to_string()])
        );
        // Overlapping --groups + --kernels union; the overlap (Stream_TRIAD
        // is in group Stream) still runs once.
        let p = RunParams::parse(&args("--groups Stream --kernels Stream_TRIAD,Basic_DAXPY"))
            .unwrap();
        let names: Vec<&str> = p.selected_kernels().iter().map(|k| k.info().name).collect();
        assert_eq!(
            names.iter().filter(|n| **n == "Stream_TRIAD").count(),
            1,
            "overlap must not double-run: {names:?}"
        );
        assert_eq!(names.len(), 6, "5 Stream kernels + Basic_DAXPY: {names:?}");
        // Group dedupe folds case, matching group matching.
        let p = RunParams::parse(&args("--groups stream,Stream")).unwrap();
        assert_eq!(p.selected_kernels().len(), 5);
    }

    #[test]
    fn unknown_selection_names_are_rejected() {
        let err = RunParams::parse(&args("--kernels Stream_TRAID")).unwrap_err();
        assert!(err.contains("unknown kernel"), "{err}");
        let err = RunParams::parse(&args("--groups Steam")).unwrap_err();
        assert!(err.contains("unknown group"), "{err}");
        assert!(err.contains("Stream"), "lists the groups: {err}");
        let err = RunParams::parse(&args("--features sorting")).unwrap_err();
        assert!(err.contains("unknown feature"), "{err}");
        // Fixtures stay addressable by their explicit names.
        assert!(RunParams::parse(&args("--kernels Fixture_PANIC")).is_ok());
    }

    #[test]
    fn union_selection_keeps_fixtures_explicit_only() {
        let p = RunParams::parse(&args("--groups Stream --kernels Fixture_PANIC")).unwrap();
        let names: Vec<&str> = p.selected_kernels().iter().map(|k| k.info().name).collect();
        assert!(names.contains(&"Fixture_PANIC"), "{names:?}");
        assert_eq!(names.len(), 6, "5 Stream kernels + the named fixture");
    }

    #[test]
    fn fixtures_selectable_only_by_explicit_name() {
        let by_name = RunParams::parse(&args("--kernels Fixture_PANIC,Basic_DAXPY")).unwrap();
        let names: Vec<&str> = by_name
            .selected_kernels()
            .iter()
            .map(|k| k.info().name)
            .collect();
        assert_eq!(names, vec!["Basic_DAXPY", "Fixture_PANIC"]);
        // Fixtures share the Basic group but must not join group selections.
        let by_group = RunParams::parse(&args("--groups Basic")).unwrap();
        assert!(by_group
            .selected_kernels()
            .iter()
            .all(|k| !k.info().name.starts_with("Fixture_")));
        // --exclude-kernels applies to fixtures too.
        let excluded =
            RunParams::parse(&args("--kernels Fixture_PANIC --exclude-kernels Fixture_PANIC"))
                .unwrap();
        assert!(excluded.selected_kernels().is_empty());
    }
}
